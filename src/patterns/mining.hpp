// Frequent-pattern mining over session clusters. The paper validates
// that the expert-selected clusters carry semantic meaning by mining
// frequent patterns per cluster ("one of them includes all the sessions
// with actions to unlock user's access..., another includes all
// modifications of roles", §IV-B). Two miners are provided:
//
//   * frequent action-sets (Eclat-style vertical mining, order-agnostic),
//   * frequent contiguous subsequences (the workflow n-grams that make
//     cluster grammars visible).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sessions/session.hpp"
#include "sessions/vocab.hpp"

namespace misuse::patterns {

struct ItemsetPattern {
  std::vector<int> actions;  // sorted action ids
  std::size_t support = 0;   // number of sessions containing all of them

  double support_fraction(std::size_t total) const {
    return total == 0 ? 0.0 : static_cast<double>(support) / static_cast<double>(total);
  }
};

struct SequencePattern {
  std::vector<int> actions;  // contiguous subsequence
  std::size_t support = 0;   // number of sessions containing it
};

struct MiningConfig {
  double min_support = 0.3;      // fraction of sessions
  std::size_t max_pattern = 4;   // maximum pattern length
  std::size_t max_results = 64;  // cap, highest-support first
};

/// Frequent action-sets across the given sessions (each session counted
/// once per pattern regardless of repetitions).
std::vector<ItemsetPattern> mine_frequent_itemsets(std::span<const Session* const> sessions,
                                                   const MiningConfig& config);

/// Frequent contiguous subsequences (n-grams over actions, n >= 2).
std::vector<SequencePattern> mine_frequent_subsequences(std::span<const Session* const> sessions,
                                                        const MiningConfig& config);

/// Characteristic actions of a cluster: actions whose within-cluster
/// session frequency exceeds their overall frequency the most (lift).
/// Used to produce the human-readable cluster descriptions of §IV-B.
struct CharacteristicAction {
  int action = 0;
  double cluster_frequency = 0.0;  // fraction of cluster sessions containing it
  double global_frequency = 0.0;   // fraction of all sessions containing it
  double lift = 0.0;
};

std::vector<CharacteristicAction> characteristic_actions(
    std::span<const Session* const> cluster, std::span<const Session* const> corpus,
    std::size_t top_n);

/// Renders "name(support%)" summaries for reports.
std::string describe_itemsets(const std::vector<ItemsetPattern>& patterns,
                              const ActionVocab& vocab, std::size_t total_sessions,
                              std::size_t max_items = 5);

}  // namespace misuse::patterns

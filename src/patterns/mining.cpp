#include "patterns/mining.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace misuse::patterns {

namespace {
/// Transaction id lists per action (the vertical representation Eclat
/// intersects).
using TidList = std::vector<std::size_t>;

TidList intersect(const TidList& a, const TidList& b) {
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

void eclat_extend(const std::vector<std::pair<int, TidList>>& frontier, std::size_t min_count,
                  std::size_t max_pattern, std::vector<int>& prefix,
                  std::vector<ItemsetPattern>& out) {
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto& [action, tids] = frontier[i];
    prefix.push_back(action);
    out.push_back({prefix, tids.size()});
    if (prefix.size() < max_pattern) {
      std::vector<std::pair<int, TidList>> next;
      for (std::size_t j = i + 1; j < frontier.size(); ++j) {
        TidList joint = intersect(tids, frontier[j].second);
        if (joint.size() >= min_count) next.emplace_back(frontier[j].first, std::move(joint));
      }
      if (!next.empty()) eclat_extend(next, min_count, max_pattern, prefix, out);
    }
    prefix.pop_back();
  }
}
}  // namespace

std::vector<ItemsetPattern> mine_frequent_itemsets(std::span<const Session* const> sessions,
                                                   const MiningConfig& config) {
  assert(config.min_support > 0.0 && config.min_support <= 1.0);
  const std::size_t n = sessions.size();
  const auto min_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config.min_support * static_cast<double>(n))));

  // Vertical tid-lists of single actions.
  std::map<int, TidList> tid_lists;
  for (std::size_t t = 0; t < n; ++t) {
    std::set<int> distinct(sessions[t]->actions.begin(), sessions[t]->actions.end());
    for (int a : distinct) tid_lists[a].push_back(t);
  }

  std::vector<std::pair<int, TidList>> frontier;
  for (auto& [action, tids] : tid_lists) {
    if (tids.size() >= min_count) frontier.emplace_back(action, std::move(tids));
  }

  std::vector<ItemsetPattern> out;
  std::vector<int> prefix;
  eclat_extend(frontier, min_count, config.max_pattern, prefix, out);

  std::stable_sort(out.begin(), out.end(), [](const ItemsetPattern& a, const ItemsetPattern& b) {
    if (a.support != b.support) return a.support > b.support;
    return a.actions.size() > b.actions.size();
  });
  if (out.size() > config.max_results) out.resize(config.max_results);
  return out;
}

std::vector<SequencePattern> mine_frequent_subsequences(std::span<const Session* const> sessions,
                                                        const MiningConfig& config) {
  const std::size_t n = sessions.size();
  const auto min_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config.min_support * static_cast<double>(n))));

  // Level-wise: count n-grams of increasing length; a (k+1)-gram can only
  // be frequent if its k-prefix is (apriori property over contiguity).
  std::vector<SequencePattern> out;
  std::set<std::vector<int>> previous_level;  // frequent grams of length k

  for (std::size_t k = 2; k <= config.max_pattern; ++k) {
    std::map<std::vector<int>, std::set<std::size_t>> counts;
    for (std::size_t t = 0; t < n; ++t) {
      const auto& acts = sessions[t]->actions;
      if (acts.size() < k) continue;
      for (std::size_t i = 0; i + k <= acts.size(); ++i) {
        std::vector<int> gram(acts.begin() + static_cast<std::ptrdiff_t>(i),
                              acts.begin() + static_cast<std::ptrdiff_t>(i + k));
        if (k > 2) {
          std::vector<int> head(gram.begin(), gram.end() - 1);
          if (!previous_level.count(head)) continue;
        }
        counts[std::move(gram)].insert(t);
      }
    }
    std::set<std::vector<int>> this_level;
    for (auto& [gram, tids] : counts) {
      if (tids.size() >= min_count) {
        out.push_back({gram, tids.size()});
        this_level.insert(gram);
      }
    }
    if (this_level.empty()) break;
    previous_level = std::move(this_level);
  }

  std::stable_sort(out.begin(), out.end(), [](const SequencePattern& a, const SequencePattern& b) {
    if (a.support != b.support) return a.support > b.support;
    return a.actions.size() > b.actions.size();
  });
  if (out.size() > config.max_results) out.resize(config.max_results);
  return out;
}

std::vector<CharacteristicAction> characteristic_actions(
    std::span<const Session* const> cluster, std::span<const Session* const> corpus,
    std::size_t top_n) {
  const auto frequency = [](std::span<const Session* const> sessions) {
    std::unordered_map<int, std::size_t> counts;
    for (const Session* s : sessions) {
      std::set<int> distinct(s->actions.begin(), s->actions.end());
      for (int a : distinct) ++counts[a];
    }
    return counts;
  };
  const auto cluster_counts = frequency(cluster);
  const auto corpus_counts = frequency(corpus);

  std::vector<CharacteristicAction> out;
  for (const auto& [action, count] : cluster_counts) {
    CharacteristicAction c;
    c.action = action;
    c.cluster_frequency = static_cast<double>(count) / static_cast<double>(cluster.size());
    const auto it = corpus_counts.find(action);
    c.global_frequency = it == corpus_counts.end()
                             ? 0.0
                             : static_cast<double>(it->second) / static_cast<double>(corpus.size());
    c.lift = c.global_frequency > 0.0 ? c.cluster_frequency / c.global_frequency : 0.0;
    out.push_back(c);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    // Rank by lift, but only among actions that actually dominate the
    // cluster; rare one-off actions with infinite-ish lift are noise.
    const double score_a = a.lift * a.cluster_frequency;
    const double score_b = b.lift * b.cluster_frequency;
    return score_a > score_b;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::string describe_itemsets(const std::vector<ItemsetPattern>& patterns,
                              const ActionVocab& vocab, std::size_t total_sessions,
                              std::size_t max_items) {
  std::ostringstream out;
  std::size_t emitted = 0;
  for (const auto& p : patterns) {
    if (emitted >= max_items) break;
    if (emitted > 0) out << "; ";
    out << "{";
    for (std::size_t i = 0; i < p.actions.size(); ++i) {
      if (i > 0) out << ",";
      out << vocab.name(p.actions[i]);
    }
    out << "} " << static_cast<int>(100.0 * p.support_fraction(total_sessions) + 0.5) << "%";
    ++emitted;
  }
  return out.str();
}

}  // namespace misuse::patterns

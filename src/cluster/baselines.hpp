// Cluster-assignment baselines the paper explicitly considered before
// choosing OC-SVMs (§II): "There are various approaches for performing
// this, e.g., simply finding the closest mean to a new sequence or K
// nearest neighbors. We preferred an approach that allows generalization
// and comparatively fast prediction — one class support vector machine."
//
// Implemented so the choice is an *ablation* instead of an assertion
// (bench/abl_assignment_methods): nearest-centroid and k-NN over the same
// session features as the OC-SVM assigner.
#pragma once

#include <span>
#include <vector>

#include "ocsvm/features.hpp"

namespace misuse::cluster {

/// Closest-mean assignment: one centroid per cluster in feature space.
class NearestCentroidAssigner {
 public:
  /// cluster_sessions[c] holds the training action sequences of cluster c.
  static NearestCentroidAssigner train(
      const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
      const ocsvm::FeaturizerConfig& features);

  std::size_t cluster_count() const { return centroids_.size(); }

  /// Negated squared Euclidean distances to each centroid (so that, like
  /// the OC-SVM scores, higher = better match).
  std::vector<double> scores(std::span<const int> actions) const;
  std::size_t assign(std::span<const int> actions) const;

 private:
  explicit NearestCentroidAssigner(const ocsvm::FeaturizerConfig& features)
      : featurizer_(features) {}
  ocsvm::SessionFeaturizer featurizer_;
  std::vector<std::vector<float>> centroids_;
};

/// k-nearest-neighbor assignment over the training feature vectors.
class KnnAssigner {
 public:
  static KnnAssigner train(
      const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
      const ocsvm::FeaturizerConfig& features, std::size_t k);

  std::size_t cluster_count() const { return clusters_; }
  std::size_t k() const { return k_; }
  std::size_t training_points() const { return points_.size(); }

  /// Per-cluster vote fractions among the k nearest training sessions.
  std::vector<double> scores(std::span<const int> actions) const;
  std::size_t assign(std::span<const int> actions) const;

 private:
  KnnAssigner(const ocsvm::FeaturizerConfig& features, std::size_t k)
      : featurizer_(features), k_(k) {}
  ocsvm::SessionFeaturizer featurizer_;
  std::size_t k_ = 5;
  std::size_t clusters_ = 0;
  std::vector<std::vector<float>> points_;
  std::vector<std::size_t> labels_;
};

}  // namespace misuse::cluster

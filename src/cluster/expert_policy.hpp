// Headless expert: replays the documented procedure the security experts
// perform in the interactive visual interface (§II-III) to turn an LDA
// ensemble into k semantically meaningful behavior clusters.
//
// The interface shows (1) a t-SNE projection of topics where experts
// brush groups of similar topics, (2) the topic-action matrix where they
// judge representativeness, and (3) a chord diagram of shared actions
// used to merge near-duplicate topics. The policy automates exactly those
// judgments:
//
//   1. group pooled topics by agglomerative (average-linkage) clustering
//      on topic-action cosine distance — the algorithmic analogue of
//      brushing nearby points in the projection view;
//   2. pick each group's medoid topic as its representative — the topic
//      the interface highlights for inspection;
//   3. induce session clusters by routing every session to the selected
//      topic with the highest document weight;
//   4. enforce coverage: clusters smaller than a minimum session count
//      are judged non-representative and merged into the most similar
//      surviving cluster (experts "add or remove topics based on their
//      judgment on whether they are representative or not").
//
// The output contract matches the interface's: a partition of the
// historical sessions H into k clusters (union = H, §III).
#pragma once

#include <string>
#include <vector>

#include "topics/ensemble.hpp"

namespace misuse::cluster {

struct ExpertPolicyConfig {
  /// Number of clusters the expert aims for (the paper's dataset: 13).
  std::size_t target_clusters = 13;
  /// Clusters owning fewer sessions than this are merged away.
  std::size_t min_cluster_sessions = 20;
};

struct ClusteringResult {
  /// clusters[c] = indices of the sessions assigned to cluster c.
  std::vector<std::vector<std::size_t>> clusters;
  /// session_cluster[d] = cluster index of session d.
  std::vector<std::size_t> session_cluster;
  /// Pooled-topic index selected as each cluster's representative.
  std::vector<std::size_t> representative_topics;

  std::size_t cluster_count() const { return clusters.size(); }
};

/// Agglomerative average-linkage clustering of items given a symmetric
/// similarity matrix; returns item -> group (groups numbered from 0).
/// Exposed for reuse and direct testing.
std::vector<std::size_t> agglomerate_by_similarity(const Matrix& similarity,
                                                   std::size_t target_groups);

class ExpertPolicy {
 public:
  explicit ExpertPolicy(const ExpertPolicyConfig& config) : config_(config) {}

  /// Runs the full procedure on a fitted ensemble.
  ClusteringResult run(const topics::LdaEnsemble& ensemble) const;

 private:
  ExpertPolicyConfig config_;
};

}  // namespace misuse::cluster

#include "cluster/assigner.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse::cluster {

ClusterAssigner ClusterAssigner::train(
    const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
    const AssignerConfig& config) {
  assert(!cluster_sessions.empty());
  Span train_span("ocsvm.train");
  ClusterAssigner assigner(config);
  // Clusters are independent: each task featurizes and trains one OC-SVM
  // with a seed derived from the cluster index, then lands in its slot —
  // results match the serial loop bit for bit.
  std::vector<std::optional<ocsvm::OneClassSvm>> trained(cluster_sessions.size());
  global_pool().parallel_for(0, cluster_sessions.size(), [&](std::size_t c) {
    Span cluster_span("ocsvm.cluster_fit");
    assert(!cluster_sessions[c].empty());
    std::vector<std::vector<float>> features;
    features.reserve(cluster_sessions[c].size());
    for (const auto& actions : cluster_sessions[c]) {
      features.push_back(assigner.featurizer_.featurize(actions));
    }
    ocsvm::OcSvmConfig svm_config = config.svm;
    svm_config.seed = config.svm.seed + c;  // independent subsampling per cluster
    trained[c] = ocsvm::OneClassSvm::train(features, svm_config);
  });
  assigner.svms_.reserve(trained.size());
  for (auto& svm : trained) assigner.svms_.push_back(std::move(*svm));
  return assigner;
}

ClusterAssigner ClusterAssigner::refit(
    const ClusterAssigner& parent,
    const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
    std::size_t min_sessions) {
  assert(cluster_sessions.size() == parent.cluster_count());
  Span refit_span("ocsvm.refit");
  ClusterAssigner assigner(parent.config_);
  std::vector<std::optional<ocsvm::OneClassSvm>> refitted(cluster_sessions.size());
  global_pool().parallel_for(0, cluster_sessions.size(), [&](std::size_t c) {
    if (cluster_sessions[c].size() < std::max<std::size_t>(1, min_sessions)) return;
    std::vector<std::vector<float>> features;
    features.reserve(cluster_sessions[c].size());
    for (const auto& actions : cluster_sessions[c]) {
      features.push_back(assigner.featurizer_.featurize(actions));
    }
    ocsvm::OcSvmConfig svm_config = parent.config_.svm;
    svm_config.seed = parent.config_.svm.seed + c;
    refitted[c] = ocsvm::OneClassSvm::train(features, svm_config);
  });
  assigner.svms_.reserve(refitted.size());
  for (std::size_t c = 0; c < refitted.size(); ++c) {
    assigner.svms_.push_back(refitted[c] ? std::move(*refitted[c]) : parent.svms_[c]);
  }
  return assigner;
}

std::vector<double> ClusterAssigner::scores(std::span<const int> actions) const {
  const std::vector<float> f = featurizer_.featurize(actions);
  std::vector<double> out(svms_.size());
  for (std::size_t c = 0; c < svms_.size(); ++c) out[c] = svms_[c].score(f);
  return out;
}

std::size_t ClusterAssigner::assign(std::span<const int> actions) const {
  const auto s = scores(actions);
  return static_cast<std::size_t>(std::max_element(s.begin(), s.end()) - s.begin());
}

ClusterAssigner::OnlineAssignment::OnlineAssignment(const ClusterAssigner& parent)
    : parent_(parent),
      featurizer_state_(parent.featurizer_),
      votes_(parent.cluster_count(), 0) {}

std::vector<double> ClusterAssigner::OnlineAssignment::push(int action) {
  const std::vector<float> f = featurizer_state_.push(action);
  std::vector<double> scores(parent_.svms_.size());
  for (std::size_t c = 0; c < scores.size(); ++c) scores[c] = parent_.svms_[c].score(f);
  current_argmax_ =
      static_cast<std::size_t>(std::max_element(scores.begin(), scores.end()) - scores.begin());
  if (featurizer_state_.length() <= parent_.config_.vote_actions) {
    ++votes_[current_argmax_];
  }
  return scores;
}

void ClusterAssigner::OnlineAssignment::reset() {
  featurizer_state_.reset();
  std::fill(votes_.begin(), votes_.end(), std::size_t{0});
  current_argmax_ = 0;
}

std::size_t ClusterAssigner::OnlineAssignment::voted_cluster() const {
  // While the vote window is still open the cluster is "checked" per step
  // (§IV-C): follow the current argmax. Once the window closes, freeze on
  // the majority of the first `vote_actions` per-step assignments.
  if (featurizer_state_.length() < parent_.config_.vote_actions) return current_argmax_;
  const auto it = std::max_element(votes_.begin(), votes_.end());
  if (*it == 0) return current_argmax_;
  return static_cast<std::size_t>(it - votes_.begin());
}

namespace {
constexpr std::uint32_t kAssignerMagic = 0x4e475341u;  // "ASGN"
constexpr std::uint32_t kAssignerVersion = 1;
}  // namespace

void ClusterAssigner::save(BinaryWriter& w) const {
  w.write_magic(kAssignerMagic, kAssignerVersion);
  w.write<std::uint64_t>(config_.vote_actions);
  w.write<std::uint64_t>(config_.features.vocab);
  w.write<std::uint8_t>(config_.features.normalize ? 1 : 0);
  w.write<double>(config_.features.length_feature_weight);
  w.write<std::uint64_t>(svms_.size());
  for (const auto& svm : svms_) svm.save(w);
}

ClusterAssigner ClusterAssigner::load(BinaryReader& r) {
  r.read_magic(kAssignerMagic);
  AssignerConfig config;
  config.vote_actions = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.features.vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.features.normalize = r.read<std::uint8_t>() != 0;
  config.features.length_feature_weight = r.read<double>();
  ClusterAssigner assigner(config);
  const auto n = static_cast<std::size_t>(r.read<std::uint64_t>());
  assigner.svms_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) assigner.svms_.push_back(ocsvm::OneClassSvm::load(r));
  return assigner;
}

}  // namespace misuse::cluster

// Cluster assignment service: one OC-SVM per behavior cluster; a session
// (or prefix) is routed to the cluster whose OC-SVM scores it highest
// (§III). Includes the paper's online fix (§IV-C): because OC-SVM scores
// collapse on sessions longer than the average, the cluster is voted on
// during the first `vote_actions` actions (15 = the dataset's average
// session length) and then frozen.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ocsvm/features.hpp"
#include "ocsvm/ocsvm.hpp"
#include "util/serialize.hpp"

namespace misuse::cluster {

struct AssignerConfig {
  ocsvm::OcSvmConfig svm;
  ocsvm::FeaturizerConfig features;
  /// Number of initial actions whose per-step votes decide the frozen
  /// cluster in the online regime.
  std::size_t vote_actions = 15;
};

class ClusterAssigner {
 public:
  /// Trains one OC-SVM per cluster. `cluster_sessions[c]` holds the
  /// action sequences of cluster c's training sessions.
  static ClusterAssigner train(
      const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
      const AssignerConfig& config);

  /// Warm refit for continuous learning: clusters with at least
  /// `min_sessions` fresh sessions get a freshly trained OC-SVM (same
  /// per-cluster seed derivation as train(), so a refit is as
  /// deterministic as the original fit); clusters with too little recent
  /// data keep `parent`'s boundary verbatim. `cluster_sessions` must have
  /// one entry per parent cluster.
  static ClusterAssigner refit(
      const ClusterAssigner& parent,
      const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
      std::size_t min_sessions);

  std::size_t cluster_count() const { return svms_.size(); }

  /// Scores of every cluster's OC-SVM on a full session.
  std::vector<double> scores(std::span<const int> actions) const;

  /// argmax-score cluster for a full session.
  std::size_t assign(std::span<const int> actions) const;

  /// Online scorer over a growing prefix. Tracks both the per-step argmax
  /// and the first-`vote_actions` majority vote.
  class OnlineAssignment {
   public:
    OnlineAssignment(const ClusterAssigner& parent);
    /// Observes the next action; returns the per-step scores.
    std::vector<double> push(int action);
    /// Cluster by the current step's argmax.
    std::size_t current_argmax() const { return current_argmax_; }
    /// Cluster by majority vote over the first `vote_actions` steps
    /// (falls back to current argmax before any step).
    std::size_t voted_cluster() const;
    std::size_t steps() const { return featurizer_state_.length(); }
    /// Clears all state for a new session.
    void reset();

   private:
    const ClusterAssigner& parent_;
    ocsvm::SessionFeaturizer::Incremental featurizer_state_;
    std::vector<std::size_t> votes_;
    std::size_t current_argmax_ = 0;
  };

  OnlineAssignment start_online() const { return OnlineAssignment(*this); }

  const AssignerConfig& config() const { return config_; }
  const ocsvm::OneClassSvm& svm(std::size_t c) const { return svms_.at(c); }

  void save(BinaryWriter& w) const;
  static ClusterAssigner load(BinaryReader& r);

 private:
  explicit ClusterAssigner(const AssignerConfig& config)
      : config_(config), featurizer_(config.features) {}

  AssignerConfig config_;
  ocsvm::SessionFeaturizer featurizer_;
  std::vector<ocsvm::OneClassSvm> svms_;
};

}  // namespace misuse::cluster

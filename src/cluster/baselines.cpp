#include "cluster/baselines.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace misuse::cluster {

namespace {
double squared_distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}
}  // namespace

NearestCentroidAssigner NearestCentroidAssigner::train(
    const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
    const ocsvm::FeaturizerConfig& features) {
  assert(!cluster_sessions.empty());
  NearestCentroidAssigner assigner(features);
  for (const auto& sessions : cluster_sessions) {
    assert(!sessions.empty());
    std::vector<float> centroid(assigner.featurizer_.dim(), 0.0f);
    for (const auto& actions : sessions) {
      const auto f = assigner.featurizer_.featurize(actions);
      for (std::size_t i = 0; i < centroid.size(); ++i) centroid[i] += f[i];
    }
    const float inv = 1.0f / static_cast<float>(sessions.size());
    for (auto& v : centroid) v *= inv;
    assigner.centroids_.push_back(std::move(centroid));
  }
  return assigner;
}

std::vector<double> NearestCentroidAssigner::scores(std::span<const int> actions) const {
  const auto f = featurizer_.featurize(actions);
  std::vector<double> out(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    out[c] = -squared_distance(f, centroids_[c]);
  }
  return out;
}

std::size_t NearestCentroidAssigner::assign(std::span<const int> actions) const {
  const auto s = scores(actions);
  return static_cast<std::size_t>(std::max_element(s.begin(), s.end()) - s.begin());
}

KnnAssigner KnnAssigner::train(
    const std::vector<std::vector<std::span<const int>>>& cluster_sessions,
    const ocsvm::FeaturizerConfig& features, std::size_t k) {
  assert(!cluster_sessions.empty());
  assert(k > 0);
  KnnAssigner assigner(features, k);
  assigner.clusters_ = cluster_sessions.size();
  for (std::size_t c = 0; c < cluster_sessions.size(); ++c) {
    for (const auto& actions : cluster_sessions[c]) {
      assigner.points_.push_back(assigner.featurizer_.featurize(actions));
      assigner.labels_.push_back(c);
    }
  }
  assert(!assigner.points_.empty());
  return assigner;
}

std::vector<double> KnnAssigner::scores(std::span<const int> actions) const {
  const auto f = featurizer_.featurize(actions);
  // Partial sort of (distance, label) pairs for the k nearest.
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    distances.emplace_back(squared_distance(f, points_[i]), labels_[i]);
  }
  const std::size_t take = std::min(k_, distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(take),
                    distances.end());
  std::vector<double> votes(clusters_, 0.0);
  for (std::size_t i = 0; i < take; ++i) votes[distances[i].second] += 1.0;
  for (auto& v : votes) v /= static_cast<double>(take);
  return votes;
}

std::size_t KnnAssigner::assign(std::span<const int> actions) const {
  const auto s = scores(actions);
  return static_cast<std::size_t>(std::max_element(s.begin(), s.end()) - s.begin());
}

}  // namespace misuse::cluster

#include "cluster/expert_policy.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace misuse::cluster {

std::vector<std::size_t> agglomerate_by_similarity(const Matrix& similarity,
                                                   std::size_t target_groups) {
  const std::size_t n = similarity.rows();
  assert(similarity.cols() == n);
  assert(target_groups >= 1);

  // Each item starts as its own group; repeatedly merge the pair of
  // groups with the highest average inter-group similarity.
  std::vector<std::vector<std::size_t>> groups(n);
  for (std::size_t i = 0; i < n; ++i) groups[i] = {i};

  const auto average_link = [&](const std::vector<std::size_t>& a,
                                const std::vector<std::size_t>& b) {
    double sum = 0.0;
    for (std::size_t i : a) {
      for (std::size_t j : b) sum += similarity(i, j);
    }
    return sum / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
  };

  while (groups.size() > target_groups) {
    std::size_t best_a = 0, best_b = 1;
    double best_sim = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < groups.size(); ++a) {
      for (std::size_t b = a + 1; b < groups.size(); ++b) {
        const double s = average_link(groups[a], groups[b]);
        if (s > best_sim) {
          best_sim = s;
          best_a = a;
          best_b = b;
        }
      }
    }
    groups[best_a].insert(groups[best_a].end(), groups[best_b].begin(), groups[best_b].end());
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(best_b));
  }

  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t i : groups[g]) assignment[i] = g;
  }
  return assignment;
}

ClusteringResult ExpertPolicy::run(const topics::LdaEnsemble& ensemble) const {
  const std::size_t n_topics = ensemble.topic_count();
  assert(n_topics > 0);
  const std::size_t k = std::min(config_.target_clusters, n_topics);

  // Step 1: brush groups of similar topics.
  const Matrix similarity = ensemble.pairwise_similarity();
  const std::vector<std::size_t> topic_group = agglomerate_by_similarity(similarity, k);

  // Step 2: per group, pick the medoid topic (max average similarity to
  // the rest of its group).
  std::vector<std::size_t> representative(k, 0);
  {
    std::vector<std::vector<std::size_t>> members(k);
    for (std::size_t t = 0; t < n_topics; ++t) members[topic_group[t]].push_back(t);
    for (std::size_t g = 0; g < k; ++g) {
      assert(!members[g].empty());
      double best_score = -std::numeric_limits<double>::infinity();
      for (std::size_t candidate : members[g]) {
        double score = 0.0;
        for (std::size_t other : members[g]) score += similarity(candidate, other);
        if (score > best_score) {
          best_score = score;
          representative[g] = candidate;
        }
      }
    }
  }

  // Step 3: induce session clusters from the selected topics.
  std::vector<std::size_t> session_cluster = ensemble.assign_documents(representative);

  // Step 4: representativeness check — merge undersized clusters into the
  // most similar surviving representative, then compact indices.
  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t c : session_cluster) ++sizes[c];
  std::vector<bool> alive(k, true);
  for (std::size_t c = 0; c < k; ++c) {
    if (sizes[c] >= config_.min_cluster_sessions) continue;
    // Keep at least one cluster alive.
    if (std::count(alive.begin(), alive.end(), true) <= 1) break;
    alive[c] = false;
    // Route this cluster's sessions to the most similar live cluster.
    std::size_t target = k;
    double best_sim = -std::numeric_limits<double>::infinity();
    for (std::size_t other = 0; other < k; ++other) {
      if (other == c || !alive[other]) continue;
      const double s = similarity(representative[c], representative[other]);
      if (s > best_sim) {
        best_sim = s;
        target = other;
      }
    }
    assert(target < k);
    for (auto& sc : session_cluster) {
      if (sc == c) sc = target;
    }
    sizes[target] += sizes[c];
    sizes[c] = 0;
  }

  // Compact cluster ids to 0..k'-1.
  std::vector<std::size_t> remap(k, 0);
  ClusteringResult result;
  for (std::size_t c = 0; c < k; ++c) {
    if (alive[c]) {
      remap[c] = result.clusters.size();
      result.clusters.emplace_back();
      result.representative_topics.push_back(representative[c]);
    }
  }
  result.session_cluster.resize(session_cluster.size());
  for (std::size_t d = 0; d < session_cluster.size(); ++d) {
    const std::size_t c = remap[session_cluster[d]];
    result.session_cluster[d] = c;
    result.clusters[c].push_back(d);
  }
  return result;
}

}  // namespace misuse::cluster

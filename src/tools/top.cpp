// misusedet_top: console dashboard over a serve node's admin plane.
// Polls /statusz (flat JSON) and /metrics (Prometheus text) at a fixed
// interval and renders a refreshing view: health, model versions,
// per-shard queue/session table, interval actions/sec, alarm rate, and
// p50/p99 step latency computed from histogram bucket *deltas* (so the
// percentiles describe the last interval, not the process lifetime).
//
//   misusedet_top --port=PORT [--host=H] [--interval=SECONDS]
//       [--iterations=N] [--plain] [--dump=ENDPOINT]
//
// --dump fetches one endpoint once and prints the raw body (exit status
// reflects the HTTP status), which makes scripts independent of curl:
//   misusedet_top --port=9100 --dump=healthz
//
// Cluster mode (--ports=A,B,C — each entry PORT or HOST:PORT) scrapes
// every node's admin plane per frame and renders a per-node table plus
// cluster totals: counters and gauges sum across nodes, and the
// cluster-wide p50/p99 come from summing the histogram *bucket deltas*
// before interpolating (quantiles over the merged distribution — never
// an average of per-node quantiles, which is meaningless):
//   misusedet_top --ports=9101,9102,9103 --interval=2
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/line_io.hpp"
#include "util/metrics.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"

namespace misuse::tools {
namespace {

struct HttpResponse {
  int code = 0;
  std::string body;
};

/// One-shot HTTP/1.0 GET; throws std::runtime_error when the connection
/// fails outright, returns code 0 when the peer closes before a status
/// line (the admin.respond failpoint does exactly that).
HttpResponse http_get(const std::string& host, std::uint16_t port, const std::string& path) {
  TcpStream stream = tcp_connect(host, port);
  stream.io() << "GET " << path << " HTTP/1.0\r\nHost: " << host << "\r\nConnection: close\r\n\r\n";
  stream.io().flush();
  stream.shutdown_write();

  HttpResponse response;
  std::string line;
  if (!std::getline(stream.io(), line)) return response;  // dropped reply
  std::istringstream status(line);
  std::string version;
  status >> version >> response.code;
  while (std::getline(stream.io(), line)) {  // headers, up to the blank line
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.pop_back();
    if (line.empty()) break;
  }
  std::ostringstream body;
  body << stream.io().rdbuf();
  response.body = body.str();
  return response;
}

HttpResponse http_get_retry(const std::string& host, std::uint16_t port, const std::string& path,
                            int attempts = 3) {
  HttpResponse response;
  for (int i = 0; i < attempts; ++i) {
    response = http_get(host, port, path);
    if (response.code != 0) return response;  // any HTTP answer counts
  }
  return response;
}

double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool parse_number(const std::string& text, double& out) {
  if (text == "+Inf" || text == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Parses Prometheus text exposition into a MetricsSnapshot keyed by the
/// wire names: counters keep their `_total` suffix, histograms are keyed
/// by the family base name (`..._bucket`/`_sum`/`_count` folded in), and
/// everything else lands in gauges. The `<name>_summary` companion
/// families the server exports are skipped — top recomputes interval
/// quantiles from bucket deltas instead of trusting lifetime summaries.
MetricsSnapshot parse_prometheus(const std::string& text) {
  MetricsSnapshot snapshot;
  snapshot.at_seconds = steady_seconds();
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // <name>{labels} <value> — labels optional, value is the last token.
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    double value = 0.0;
    if (!parse_number(line.substr(space + 1), value)) continue;
    std::string name = line.substr(0, space);
    std::string labels;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      labels = name.substr(brace);
      name = name.substr(0, brace);
    }
    if (labels.find("quantile=") != std::string::npos || ends_with(name, "_summary_sum") ||
        ends_with(name, "_summary_count")) {
      continue;  // summary companion family
    }
    if (ends_with(name, "_bucket")) {
      const std::size_t le = labels.find("le=\"");
      if (le == std::string::npos) continue;
      const std::size_t start = le + 4;
      const std::size_t end = labels.find('"', start);
      double bound = 0.0;
      if (end == std::string::npos || !parse_number(labels.substr(start, end - start), bound)) {
        continue;
      }
      snapshot.histograms[name.substr(0, name.size() - 7)].cumulative.emplace_back(bound, value);
    } else if (ends_with(name, "_sum") &&
               snapshot.histograms.count(name.substr(0, name.size() - 4)) > 0) {
      snapshot.histograms[name.substr(0, name.size() - 4)].sum = value;
    } else if (ends_with(name, "_count") &&
               snapshot.histograms.count(name.substr(0, name.size() - 6)) > 0) {
      snapshot.histograms[name.substr(0, name.size() - 6)].count = value;
    } else if (ends_with(name, "_total")) {
      snapshot.counters[name] = value;
    } else {
      snapshot.gauges[name] = value;
    }
  }
  return snapshot;
}

std::string fmt(double v, int precision = 1) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string fmt_latency(double seconds) {
  if (seconds <= 0.0) return "-";
  if (seconds < 1e-3) return fmt(seconds * 1e6, 1) + "us";
  if (seconds < 1.0) return fmt(seconds * 1e3, 2) + "ms";
  return fmt(seconds, 3) + "s";
}

std::optional<double> field_number(const std::vector<JsonField>& fields, const std::string& key) {
  return get_number(fields, key);
}

int dump_endpoint(const std::string& host, std::uint16_t port, const std::string& what) {
  std::string path;
  if (what == "metrics" || what == "healthz" || what == "statusz" || what == "tracez") {
    path = "/" + what;
  } else if (what == "tracez.ndjson") {
    path = "/tracez?format=ndjson";
  } else {
    std::cerr << "unknown --dump endpoint '" << what
              << "' (metrics | healthz | statusz | tracez | tracez.ndjson)\n";
    return 2;
  }
  try {
    const HttpResponse response = http_get_retry(host, port, path);
    if (response.code == 0) {
      std::cerr << "no response from " << host << ":" << port << path << "\n";
      return 1;
    }
    std::cout << response.body;
    return response.code == 200 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fetch failed: " << e.what() << "\n";
    return 1;
  }
}

void render(const std::string& host, std::uint16_t port, const std::vector<JsonField>& statusz,
            const std::string& health, const MetricsSnapshot& now,
            const std::optional<MetricsSnapshot>& before, bool plain, std::ostream& out) {
  if (!plain) out << "\x1b[H\x1b[2J";  // home + clear: flicker-free refresh

  const double uptime = field_number(statusz, "uptime_seconds").value_or(0.0);
  const std::string model = get_string(statusz, "model_version").value_or("");
  const std::string canary = get_string(statusz, "canary_version").value_or("");
  const std::string kernel = get_string(statusz, "infer_kernel").value_or("?");
  out << "misusedet_top — " << host << ":" << port << "   up " << fmt(uptime) << "s   model "
      << (model.empty() ? "(unversioned)" : model)
      << (canary.empty() ? "" : "  canary " + canary) << "   kernel " << kernel << "\n";

  const double sessions = field_number(statusz, "sessions_active").value_or(0);
  const double limit = field_number(statusz, "sessions_limit").value_or(0);
  const double queued = field_number(statusz, "queued_events").value_or(0);
  const double wal_lag = field_number(statusz, "wal_watermark_lag").value_or(0);
  out << "health " << health << "   sessions " << fmt(sessions, 0) << "/" << fmt(limit, 0)
      << "   queued " << fmt(queued, 0) << "   wal lag " << fmt(wal_lag, 0) << " events\n";

  if (before) {
    MetricsDelta delta(*before, now);
    const double steps = delta.counter_delta("misusedet_serve_steps_total");
    const double alarms = delta.counter_delta("misusedet_serve_alarms_total");
    out << "actions/sec " << fmt(delta.rate("misusedet_serve_steps_total"))
        << "   alarm rate " << fmt(steps > 0 ? alarms / steps : 0.0, 4)
        << "   drops/sec " << fmt(delta.rate("misusedet_serve_dropped_events_total"))
        << "   p50 " << fmt_latency(delta.histogram_quantile("misusedet_serve_step_seconds", 0.5))
        << "   p99 " << fmt_latency(delta.histogram_quantile("misusedet_serve_step_seconds", 0.99))
        << "   (over " << fmt(delta.seconds()) << "s)\n";
  } else {
    out << "collecting a second sample for rates...\n";
  }

  // Continuous-learning plane, when a learn loop runs beside this node
  // (/statusz re-emits its LEARN_STATUS with a learn_ prefix).
  const std::string learn_phase = get_string(statusz, "learn_phase").value_or("");
  if (!learn_phase.empty()) {
    const double candidate = field_number(statusz, "learn_candidate").value_or(0);
    const double flip_rate = field_number(statusz, "learn_flip_rate").value_or(0);
    const std::string decision = get_string(statusz, "learn_decision").value_or("none");
    const std::string reason = get_string(statusz, "learn_reason").value_or("");
    out << "LEARN phase " << learn_phase << "   candidate "
        << (candidate > 0 ? "v" + fmt(candidate, 0) : "-") << "   shadow flip rate "
        << fmt(flip_rate, 4) << "   last decision " << decision
        << (reason.empty() ? "" : " (" + reason + ")") << "\n";
  }

  const double shards = field_number(statusz, "shards").value_or(0);
  Table table({"shard", "queue", "high_water", "sessions", "applied_seq"});
  for (std::size_t s = 0; s < static_cast<std::size_t>(shards); ++s) {
    const std::string prefix = "shard." + std::to_string(s) + ".";
    table.add_row({std::to_string(s),
                   fmt(field_number(statusz, prefix + "queue_depth").value_or(0), 0),
                   fmt(field_number(statusz, prefix + "queue_high_water").value_or(0), 0),
                   fmt(field_number(statusz, prefix + "sessions").value_or(0), 0),
                   fmt(field_number(statusz, prefix + "last_applied_seq").value_or(0), 0)});
  }
  table.print(out);
  out.flush();
}

/// Element-wise sum of node snapshots: counters and gauges add, and
/// histograms merge by summing cumulative counts at matching bounds (all
/// nodes export the same registry layout, so bounds line up; a node with
/// a different layout contributes only the bounds it has).
MetricsSnapshot aggregate_snapshots(const std::vector<MetricsSnapshot>& nodes) {
  MetricsSnapshot total;
  total.at_seconds = nodes.empty() ? steady_seconds() : nodes.front().at_seconds;
  for (const MetricsSnapshot& node : nodes) {
    for (const auto& [name, value] : node.counters) total.counters[name] += value;
    for (const auto& [name, value] : node.gauges) total.gauges[name] += value;
    for (const auto& [name, hist] : node.histograms) {
      MetricsSnapshot::Histogram& merged = total.histograms[name];
      merged.count += hist.count;
      merged.sum += hist.sum;
      if (merged.cumulative.empty()) {
        merged.cumulative = hist.cumulative;
      } else {
        for (const auto& [bound, count] : hist.cumulative) {
          bool found = false;
          for (auto& [mbound, mcount] : merged.cumulative) {
            if (mbound == bound) {
              mcount += count;
              found = true;
              break;
            }
          }
          if (!found) merged.cumulative.emplace_back(bound, count);
        }
      }
    }
  }
  for (auto& [name, hist] : total.histograms) {
    std::sort(hist.cumulative.begin(), hist.cumulative.end());
  }
  return total;
}

struct ClusterTarget {
  std::string host;
  std::uint16_t port = 0;
  std::string label() const { return host + ":" + std::to_string(port); }
};

/// One node's scrape for a cluster frame.
struct NodeSample {
  bool reachable = false;
  std::string health = "down";
  double sessions = 0.0;
  MetricsSnapshot snapshot;
};

NodeSample scrape_node(const ClusterTarget& target) {
  NodeSample sample;
  try {
    const HttpResponse metrics_response = http_get_retry(target.host, target.port, "/metrics");
    if (metrics_response.code == 0) return sample;
    sample.snapshot = parse_prometheus(metrics_response.body);
    sample.reachable = true;
    const HttpResponse health_response = http_get_retry(target.host, target.port, "/healthz");
    std::string health_line = health_response.body;
    while (!health_line.empty() && (health_line.back() == '\n' || health_line.back() == '\r')) {
      health_line.pop_back();
    }
    std::vector<JsonField> fields;
    std::string error;
    sample.health = "?";
    if (parse_flat_json(health_line, fields, error)) {
      sample.health = get_string(fields, "status").value_or("?");
    }
    sample.sessions =
        sample.snapshot.gauges.count("misusedet_serve_sessions_active") > 0
            ? sample.snapshot.gauges.at("misusedet_serve_sessions_active")
            : 0.0;
  } catch (const std::exception&) {
    // unreachable node: rendered as down, aggregation skips it
  }
  return sample;
}

void render_cluster(const std::vector<ClusterTarget>& targets,
                    const std::vector<NodeSample>& samples,
                    const std::vector<std::optional<MetricsSnapshot>>& node_before,
                    const MetricsSnapshot& total,
                    const std::optional<MetricsSnapshot>& total_before, bool plain,
                    std::ostream& out) {
  if (!plain) out << "\x1b[H\x1b[2J";
  std::size_t up = 0;
  for (const NodeSample& s : samples) up += s.reachable ? 1 : 0;
  out << "misusedet_top — cluster of " << targets.size() << " node(s), " << up << " up\n";

  Table table({"node", "health", "sessions", "actions/sec", "alarms/sec", "p50", "p99"});
  for (std::size_t n = 0; n < targets.size(); ++n) {
    const NodeSample& sample = samples[n];
    std::string rate = "-";
    std::string alarms = "-";
    std::string p50 = "-";
    std::string p99 = "-";
    if (sample.reachable && node_before[n]) {
      MetricsDelta delta(*node_before[n], sample.snapshot);
      rate = fmt(delta.rate("misusedet_serve_steps_total"));
      alarms = fmt(delta.rate("misusedet_serve_alarms_total"));
      p50 = fmt_latency(delta.histogram_quantile("misusedet_serve_step_seconds", 0.5));
      p99 = fmt_latency(delta.histogram_quantile("misusedet_serve_step_seconds", 0.99));
    }
    table.add_row({targets[n].label(), sample.health, fmt(sample.sessions, 0), rate, alarms,
                   p50, p99});
  }
  double total_sessions = 0.0;
  for (const NodeSample& s : samples) total_sessions += s.sessions;
  if (total_before) {
    MetricsDelta delta(*total_before, total);
    table.add_row({"TOTAL", up == targets.size() ? "ok" : "degraded", fmt(total_sessions, 0),
                   fmt(delta.rate("misusedet_serve_steps_total")),
                   fmt(delta.rate("misusedet_serve_alarms_total")),
                   fmt_latency(delta.histogram_quantile("misusedet_serve_step_seconds", 0.5)),
                   fmt_latency(delta.histogram_quantile("misusedet_serve_step_seconds", 0.99))});
  } else {
    table.add_row({"TOTAL", up == targets.size() ? "ok" : "degraded", fmt(total_sessions, 0),
                   "-", "-", "-", "-"});
  }
  table.print(out);
  if (!total_before) out << "collecting a second sample for rates...\n";
  out.flush();
}

int cluster_main(const CliArgs& args) {
  const std::string default_host = args.str("host", "127.0.0.1");
  std::vector<ClusterTarget> targets;
  std::stringstream list(args.str("ports"));
  std::string entry;
  while (std::getline(list, entry, ',')) {
    if (entry.empty()) continue;
    ClusterTarget target;
    const std::size_t colon = entry.rfind(':');
    try {
      if (colon == std::string::npos) {
        target.host = default_host;
        target.port = static_cast<std::uint16_t>(std::stoul(entry));
      } else {
        target.host = entry.substr(0, colon);
        target.port = static_cast<std::uint16_t>(std::stoul(entry.substr(colon + 1)));
      }
    } catch (const std::exception&) {
      std::cerr << "bad --ports entry '" << entry << "' (want PORT or HOST:PORT)\n";
      return 2;
    }
    targets.push_back(std::move(target));
  }
  if (targets.empty()) {
    std::cerr << "--ports needs at least one PORT or HOST:PORT entry\n";
    return 2;
  }

  const double interval = args.real("interval", 2.0);
  const std::int64_t iterations = args.integer("iterations", 0);
  const bool plain = args.flag("plain");

  std::vector<std::optional<MetricsSnapshot>> node_before(targets.size());
  std::optional<MetricsSnapshot> total_before;
  for (std::int64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    if (frame > 0) std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    std::vector<NodeSample> samples;
    samples.reserve(targets.size());
    std::vector<MetricsSnapshot> reachable;
    for (const ClusterTarget& target : targets) {
      samples.push_back(scrape_node(target));
      if (samples.back().reachable) reachable.push_back(samples.back().snapshot);
    }
    const MetricsSnapshot total = aggregate_snapshots(reachable);
    render_cluster(targets, samples, node_before, total, total_before, plain, std::cout);
    for (std::size_t n = 0; n < targets.size(); ++n) {
      if (samples[n].reachable) node_before[n] = samples[n].snapshot;
    }
    total_before = total;
  }
  return 0;
}

int top_main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("ports")) return cluster_main(args);
  if (args.flag("help") || !args.has("port")) {
    std::cout << "usage: " << args.program() << " --port=PORT [options]\n"
              << "  --port=PORT         serve node's --admin-port\n"
              << "  --host=HOST         admin host (default 127.0.0.1)\n"
              << "  --interval=SECONDS  poll interval (default 2.0)\n"
              << "  --iterations=N      stop after N frames (default 0 = run until ^C)\n"
              << "  --plain             no ANSI clear; append frames (logs, CI)\n"
              << "  --dump=ENDPOINT     print one raw endpoint body and exit:\n"
              << "                      metrics | healthz | statusz | tracez | tracez.ndjson\n"
              << "  --ports=A,B,C       cluster mode: scrape several nodes (PORT or HOST:PORT\n"
              << "                      entries) and render per-node rows plus summed totals\n";
    return args.flag("help") ? 0 : 2;
  }
  const std::string host = args.str("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.integer("port", 0));
  if (args.has("dump")) return dump_endpoint(host, port, args.str("dump"));

  const double interval = args.real("interval", 2.0);
  const std::int64_t iterations = args.integer("iterations", 0);
  const bool plain = args.flag("plain");

  std::optional<MetricsSnapshot> before;
  for (std::int64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
    try {
      const HttpResponse status_response = http_get_retry(host, port, "/statusz");
      const HttpResponse metrics_response = http_get_retry(host, port, "/metrics");
      const HttpResponse health_response = http_get_retry(host, port, "/healthz");
      if (status_response.code == 0 || metrics_response.code == 0) {
        std::cerr << "no response from " << host << ":" << port << " (retrying)\n";
        continue;
      }
      std::vector<JsonField> statusz;
      std::string error;
      std::string status_line = status_response.body;
      while (!status_line.empty() && (status_line.back() == '\n' || status_line.back() == '\r')) {
        status_line.pop_back();
      }
      if (!parse_flat_json(status_line, statusz, error)) {
        std::cerr << "bad /statusz payload: " << error << "\n";
        continue;
      }
      std::vector<JsonField> health_fields;
      std::string health = "?";
      std::string health_line = health_response.body;
      while (!health_line.empty() && (health_line.back() == '\n' || health_line.back() == '\r')) {
        health_line.pop_back();
      }
      if (parse_flat_json(health_line, health_fields, error)) {
        health = get_string(health_fields, "status").value_or("?");
        const auto reasons = get_string(health_fields, "reasons").value_or("");
        if (!reasons.empty()) health += " (" + reasons + ")";
      }
      const MetricsSnapshot now = parse_prometheus(metrics_response.body);
      render(host, port, statusz, health, now, before, plain, std::cout);
      before = now;
    } catch (const std::exception& e) {
      std::cerr << "scrape failed: " << e.what() << " (retrying)\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace misuse::tools

int main(int argc, char** argv) { return misuse::tools::top_main(argc, argv); }

#include "tsne/tsne.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace misuse::tsne {

namespace {
constexpr double kTinyProb = 1e-12;

/// Unnormalized Student-t similarities q_ij = 1 / (1 + ||y_i - y_j||^2)
/// and their sum; diagonal is zero.
double student_t_affinities(const Matrix& y, Matrix& q_num) {
  const std::size_t n = y.rows();
  q_num.resize(n, n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = static_cast<double>(y(i, 0)) - y(j, 0);
      const double dy = static_cast<double>(y(i, 1)) - y(j, 1);
      const double q = 1.0 / (1.0 + dx * dx + dy * dy);
      q_num(i, j) = static_cast<float>(q);
      q_num(j, i) = static_cast<float>(q);
      total += 2.0 * q;
    }
  }
  return std::max(total, kTinyProb);
}
}  // namespace

Matrix pairwise_squared_distances(const Matrix& points) {
  const std::size_t n = points.rows();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < points.cols(); ++c) {
        const double diff = static_cast<double>(points(i, c)) - points(j, c);
        acc += diff * diff;
      }
      d(i, j) = static_cast<float>(acc);
      d(j, i) = static_cast<float>(acc);
    }
  }
  return d;
}

Matrix calibrated_joint_affinities(const Matrix& squared_distances, double perplexity) {
  const std::size_t n = squared_distances.rows();
  assert(squared_distances.cols() == n);
  assert(perplexity > 0.0);
  // Perplexity cannot exceed the number of neighbours.
  const double target_entropy = std::log(std::min(perplexity, static_cast<double>(n - 1)));

  Matrix p_cond(n, n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Binary search the precision (1 / 2sigma^2) for this row.
    double beta = 1.0, beta_lo = 0.0, beta_hi = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = (j == i) ? 0.0 : std::exp(-beta * static_cast<double>(squared_distances(i, j)));
        sum += row[j];
      }
      sum = std::max(sum, kTinyProb);
      // Shannon entropy of the conditional distribution.
      double entropy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (row[j] > 0.0) {
          const double p = row[j] / sum;
          entropy -= p * std::log(std::max(p, kTinyProb));
        }
      }
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = std::isinf(beta_hi) ? beta * 2.0 : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = beta_lo == 0.0 ? beta / 2.0 : 0.5 * (beta + beta_lo);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = (j == i) ? 0.0 : std::exp(-beta * static_cast<double>(squared_distances(i, j)));
      sum += row[j];
    }
    sum = std::max(sum, kTinyProb);
    for (std::size_t j = 0; j < n; ++j) {
      p_cond(i, j) = static_cast<float>(row[j] / sum);
    }
  }

  // Symmetrize into the joint distribution P = (P_cond + P_cond^T) / 2n.
  Matrix joint(n, n);
  const auto inv_2n = static_cast<float>(1.0 / (2.0 * static_cast<double>(n)));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      joint(i, j) = (p_cond(i, j) + p_cond(j, i)) * inv_2n;
    }
  }
  return joint;
}

double kl_divergence(const Matrix& joint_p, const Matrix& embedding) {
  Matrix q_num;
  const double q_total = student_t_affinities(embedding, q_num);
  double kl = 0.0;
  const std::size_t n = joint_p.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double p = std::max(static_cast<double>(joint_p(i, j)), kTinyProb);
      const double q = std::max(static_cast<double>(q_num(i, j)) / q_total, kTinyProb);
      kl += p * std::log(p / q);
    }
  }
  return kl;
}

TsneResult run_tsne(const Matrix& points, const TsneConfig& config) {
  const std::size_t n = points.rows();
  assert(n >= 2);
  const Matrix sq = pairwise_squared_distances(points);
  const Matrix joint = calibrated_joint_affinities(sq, config.perplexity);

  Rng rng(config.seed);
  Matrix y(n, 2);
  y.init_gaussian(rng, 1e-2f);
  Matrix velocity(n, 2);
  Matrix gains(n, 2, 1.0f);
  Matrix grad(n, 2);
  Matrix q_num;

  TsneResult result;
  result.kl_history.reserve(config.iterations);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iterations ? config.early_exaggeration : 1.0;
    const double q_total = student_t_affinities(y, q_num);

    grad.zero();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double p = exaggeration * static_cast<double>(joint(i, j));
        const double qn = static_cast<double>(q_num(i, j));
        const double q = qn / q_total;
        const double mult = 4.0 * (p - q) * qn;
        grad(i, 0) += static_cast<float>(mult * (static_cast<double>(y(i, 0)) - y(j, 0)));
        grad(i, 1) += static_cast<float>(mult * (static_cast<double>(y(i, 1)) - y(j, 1)));
      }
    }

    const double momentum =
        iter < config.momentum_switch_iter ? config.momentum_initial : config.momentum_final;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < 2; ++c) {
        // Jacobs-style adaptive gains (standard t-SNE trick).
        const bool same_sign = (grad(i, c) > 0.0f) == (velocity(i, c) > 0.0f);
        gains(i, c) = std::max(same_sign ? gains(i, c) * 0.8f : gains(i, c) + 0.2f, 0.01f);
        velocity(i, c) = static_cast<float>(momentum * velocity(i, c) -
                                            config.learning_rate * gains(i, c) * grad(i, c));
        y(i, c) += velocity(i, c);
      }
    }

    // Re-center to keep the embedding from drifting.
    for (std::size_t c = 0; c < 2; ++c) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y(i, c);
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y(i, c) -= static_cast<float>(mean);
    }

    result.kl_history.push_back(kl_divergence(joint, y));
  }

  result.embedding = std::move(y);
  return result;
}

}  // namespace misuse::tsne

// t-SNE (van der Maaten & Hinton 2008), exact O(n^2) formulation. The
// paper's visual interface projects LDA-ensemble topics to 2-D with t-SNE
// so experts can see and brush clusters of similar topics (Fig. 1, top
// left). Topic counts are small (tens to low hundreds), so the exact
// gradient is the right tool — no Barnes-Hut approximation needed.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace misuse::tsne {

struct TsneConfig {
  double perplexity = 10.0;
  std::size_t iterations = 400;
  double learning_rate = 50.0;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  std::size_t momentum_switch_iter = 100;
  double early_exaggeration = 4.0;
  std::size_t exaggeration_iterations = 80;
  std::uint64_t seed = 3;
};

struct TsneResult {
  /// n x 2 embedding coordinates.
  Matrix embedding;
  /// KL(P || Q) after each iteration (without the exaggeration factor),
  /// recorded so convergence is observable and testable.
  std::vector<double> kl_history;
};

/// Pairwise squared Euclidean distances between rows of `points`.
Matrix pairwise_squared_distances(const Matrix& points);

/// Row-conditional Gaussian affinities with per-point bandwidths found by
/// binary search so each row's perplexity matches `perplexity`; then
/// symmetrized and normalized to a joint distribution P.
Matrix calibrated_joint_affinities(const Matrix& squared_distances, double perplexity);

/// Embeds the rows of `points` (n x d) into 2-D.
TsneResult run_tsne(const Matrix& points, const TsneConfig& config);

/// KL(P || Q) for an embedding; exposed for tests and diagnostics.
double kl_divergence(const Matrix& joint_p, const Matrix& embedding);

}  // namespace misuse::tsne

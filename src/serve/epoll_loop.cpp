#include "serve/epoll_loop.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"

namespace misuse::serve {

namespace {

constexpr std::size_t kReadChunk = 1 << 14;

}  // namespace

EpollLoop::EpollLoop(EpollConfig config, EpollHandlers handlers)
    : config_(std::move(config)),
      handlers_(std::move(handlers)),
      listener_(TcpListener::bind(config_.port, config_.host)) {
  if (!handlers_.on_line) throw std::runtime_error("EpollLoop needs an on_line handler");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  set_nonblocking(listener_.fd());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // id 0 = the listener
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.u64 = UINT64_MAX;  // id MAX = the wake eventfd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake);
}

EpollLoop::~EpollLoop() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  conns_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EpollLoop::post(std::uint64_t conn, std::string data) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    if (live_ids_.count(conn) == 0) return false;  // unknown or retired
    posted_.emplace_back(conn, std::move(data));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  return true;
}

void EpollLoop::update_interest(std::uint64_t id, Conn& conn, bool want_write) {
  if (conn.want_write == want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EpollLoop::retire(std::uint64_t id, Conn& conn) {
  if (conn.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
  }
  if (handlers_.on_close) handlers_.on_close(id);
  conns_.erase(id);
  std::lock_guard<std::mutex> lock(posted_mutex_);
  live_ids_.erase(id);
}

void EpollLoop::accept_ready() {
  while (true) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion: log once per burst and let level-
        // triggered epoll re-report the pending accept next iteration
        // (after some connection retires and frees an fd).
        log_warn() << "accept: out of file descriptors; deferring new connections";
        return;
      }
      return;  // listener shut down or fatal — run() notices via stop_
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    {
      std::lock_guard<std::mutex> lock(posted_mutex_);
      live_ids_.insert(id);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool EpollLoop::consume_lines(std::uint64_t id, Conn& conn) {
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = conn.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::size_t end = nl;
    if (end > start && conn.in[end - 1] == '\r') --end;  // CRLF == LF
    handlers_.on_line(id, std::string_view(conn.in).substr(start, end - start), conn.out);
    start = nl + 1;
  }
  if (start > 0) conn.in.erase(0, start);
  if (conn.in.size() > config_.max_line_bytes) {
    // Same contract as LineReader::truncated(): an unbounded line is a
    // protocol violation, and the stream it arrived on is abandoned.
    overflowed_.fetch_add(1, std::memory_order_relaxed);
    log_warn() << "connection " << id << " exceeded the " << config_.max_line_bytes
               << "-byte line cap; closing";
    return false;
  }
  return true;
}

void EpollLoop::conn_readable(std::uint64_t id, Conn& conn) {
  char buf[kReadChunk];
  while (true) {
    std::size_t n = 0;
    const IoStatus status = read_some(conn.fd, buf, sizeof(buf), n);
    if (status == IoStatus::kOk) {
      conn.in.append(buf, n);
      if (!consume_lines(id, conn)) {
        retire(id, conn);
        return;
      }
      // A producer whose replies we cannot drain must not grow the
      // output buffer without bound: cut the slow consumer loose.
      if (conn.out.size() - conn.out_off > config_.max_output_bytes) {
        overflowed_.fetch_add(1, std::memory_order_relaxed);
        log_warn() << "connection " << id << " exceeded the output backlog cap; closing";
        retire(id, conn);
        return;
      }
      continue;  // level-triggered, but draining now saves a wakeup
    }
    if (status == IoStatus::kWouldBlock) break;
    if (status == IoStatus::kEof) {
      // Half-close: deliver a final unterminated line (LineReader
      // parity), flush what we owe, then retire.
      conn.peer_eof = true;
      if (!conn.in.empty()) {
        std::string line = std::move(conn.in);
        conn.in.clear();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        handlers_.on_line(id, line, conn.out);
      }
      break;
    }
    retire(id, conn);  // kError: peer reset
    return;
  }
  if (!flush_conn(id, conn)) return;
  if (conn.peer_eof && conn.out_off == conn.out.size()) retire(id, conn);
}

bool EpollLoop::flush_conn(std::uint64_t id, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    std::size_t n = 0;
    const IoStatus status =
        write_some(conn.fd, conn.out.data() + conn.out_off, conn.out.size() - conn.out_off, n);
    if (status == IoStatus::kOk) {
      conn.out_off += n;
      continue;
    }
    if (status == IoStatus::kWouldBlock) {
      // The retry is epoll's job: arm EPOLLOUT and hand control back.
      update_interest(id, conn, true);
      return true;
    }
    retire(id, conn);  // kError: EPIPE/ECONNRESET under SIGPIPE-ignored
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  update_interest(id, conn, false);
  return true;
}

void EpollLoop::drain_posted() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& [id, data] : batch) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    conn.out += data;
    // Posted output obeys the same slow-consumer cap as on_line replies:
    // in the router every verdict arrives via post(), so this is the
    // path a client that stops reading would otherwise grow unbounded.
    if (conn.out.size() - conn.out_off > config_.max_output_bytes) {
      overflowed_.fetch_add(1, std::memory_order_relaxed);
      log_warn() << "connection " << id << " exceeded the output backlog cap; closing";
      retire(id, conn);
      continue;
    }
    if (!flush_conn(id, conn)) continue;
    if (conn.peer_eof && conn.out_off == conn.out.size()) {
      retire(id, conn);
    }
  }
}

void EpollLoop::run() {
  const int tick_ms =
      config_.tick_seconds > 0.0 ? static_cast<int>(config_.tick_seconds * 1000.0) : 500;
  std::vector<epoll_event> events(256);
  auto last_tick = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      log_error() << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == 0) {
        accept_ready();
        continue;
      }
      if (id == UINT64_MAX) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        drain_posted();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // retired earlier this batch
      Conn& conn = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 && (events[i].events & EPOLLIN) == 0) {
        retire(id, conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush_conn(id, conn)) continue;
        if (conn.peer_eof && conn.out_off == conn.out.size()) {
          retire(id, conn);
          continue;
        }
      }
      if ((events[i].events & EPOLLIN) != 0) conn_readable(id, conn);
    }
    drain_posted();
    const auto now = std::chrono::steady_clock::now();
    if (handlers_.on_tick &&
        std::chrono::duration<double>(now - last_tick).count() >= config_.tick_seconds) {
      last_tick = now;
      handlers_.on_tick();
    }
  }
  // Shutdown: one best-effort flush per connection, then close them all.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    if (!flush_conn(id, it->second)) continue;
    const auto again = conns_.find(id);
    if (again != conns_.end()) retire(id, again->second);
  }
  listener_.close();
}

}  // namespace misuse::serve

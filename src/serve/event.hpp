// Wire format of the streaming scoring server (misusedet_serve): one
// flat JSON object per line in, one per line out.
//
// Input event:
//   {"user_id": "u17", "session_id": "s3", "action": "ActionSearchUser",
//    "timestamp": 1722945600.25}
//   * user_id / session_id: opaque identifiers (string or number).
//   * action: either the action *name* (resolved through the detector's
//     vocabulary) or a non-negative integer action id.
//   * timestamp: seconds as a JSON number; optional. Event time drives
//     idle eviction so replayed traces evict deterministically.
//
// Output records (discriminated by "type"):
//   * "step": the per-action verdict (OnlineMonitor::StepResult),
//   * "session_report": end-of-session summary with an eviction reason,
//   * "error": a rejected input line with the parse/validation message.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/monitor.hpp"
#include "sessions/vocab.hpp"

namespace misuse::serve {

struct Event {
  std::string user_id;
  std::string session_id;
  std::string action;      // name or decimal id, as received
  double timestamp = 0.0;  // seconds; 0 when the producer sent none
  bool has_timestamp = false;
};

/// Parses one NDJSON event line. Returns false and fills `error` on
/// malformed JSON or missing user_id/session_id/action.
bool parse_event(std::string_view line, Event& event, std::string& error);

/// The session key used for sharding and the session table: user and
/// session ids joined with an unambiguous separator, so ("a","b:c") and
/// ("a:b","c") cannot collide.
std::string session_key(const Event& event);
std::string session_key(std::string_view user_id, std::string_view session_id);

/// Stable 64-bit FNV-1a over the session key — *not* std::hash, so shard
/// assignment (and therefore per-shard processing order) is identical
/// across platforms and standard libraries.
std::uint64_t session_shard_hash(std::string_view key);

/// Why a session report was emitted.
enum class ReportReason {
  kIdleEviction,     // TTL sweep found the session idle
  kCapacityEviction, // session table was full, LRU entry evicted
  kShutdown,         // graceful drain at end of stream / signal
  kModelSwap,        // finished at a vocab-changing hot-swap barrier
};
std::string_view report_reason_name(ReportReason reason);

/// Resolves an action string to a vocabulary id: name lookup first, then
/// a decimal-id fallback for producers that pre-encode; -1 when unknown.
int resolve_action_id(const ActionVocab& vocab, std::string_view action);

/// Renders a "step" record (one line, no trailing newline).
std::string render_step_record(const Event& event,
                               const core::OnlineMonitor::StepResult& step);

/// Renders a "session_report" record (one line, no trailing newline).
/// `model_version` stamps the registry version the session was scored
/// under ("v3"); the empty string omits the field entirely, keeping the
/// record byte-identical with pre-registry builds (WAL replay and the
/// offline/online equivalence tests depend on that).
std::string render_report_record(std::string_view user_id, std::string_view session_id,
                                 ReportReason reason, const core::SessionMonitorReport& report,
                                 std::string_view model_version = {});

/// Renders an "error" record for a rejected input line.
std::string render_error_record(std::string_view message, std::string_view line);

}  // namespace misuse::serve

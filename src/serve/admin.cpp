#include "serve/admin.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "serve/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/line_io.hpp"
#include "util/hostinfo.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace misuse::serve {

namespace {

const char* status_reason(int code) {
  switch (code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

AdminServer::AdminServer(ScoringServer& server, AdminConfig config, AdminHooks hooks)
    : server_(server),
      config_(std::move(config)),
      hooks_(std::move(hooks)),
      start_nanos_(trace_now_nanos()),
      listener_(TcpListener::bind(config_.port, config_.host)),
      port_(listener_.port()) {
  thread_ = std::thread([this] { serve_loop(); });
  log_info() << "admin endpoint on port " << port_ << " (/metrics /healthz /statusz /tracez)";
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::stop() {
  if (stopped_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  listener_.close();
  if (thread_.joinable()) thread_.join();
}

void AdminServer::serve_loop() {
  while (!stopped_.load(std::memory_order_relaxed)) {
    std::optional<TcpStream> stream = listener_.accept();
    if (!stream) break;  // listener closed (stop) or fatal accept error
    try {
      handle(std::move(*stream));
    } catch (const std::exception&) {
      // A broken scrape must never take the listener down; count it and
      // answer the next connection.
      serve_metrics().admin_errors.inc();
    }
  }
}

void AdminServer::handle(TcpStream stream) {
  stream.set_read_timeout(config_.read_timeout_seconds);
  std::string request;
  if (!std::getline(stream.io(), request)) return;  // stalled or empty connection
  while (!request.empty() && (request.back() == '\r' || request.back() == '\n')) {
    request.pop_back();
  }
  // Drain (and ignore) the header block; HTTP/1.0 GETs carry no body.
  std::string header;
  while (std::getline(stream.io(), header)) {
    while (!header.empty() && (header.back() == '\r' || header.back() == '\n')) {
      header.pop_back();
    }
    if (header.empty()) break;
  }

  std::istringstream parts(request);
  std::string method;
  std::string target;
  parts >> method >> target;
  std::string path = target;
  std::string query;
  const std::size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }

  int code = 200;
  std::string body;
  std::string type = "application/json";
  if (method != "GET") {
    code = 405;
    type = "text/plain";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    type = "text/plain; version=0.0.4";
    body = render_metrics();
  } else if (path == "/healthz") {
    body = render_healthz(&code);
  } else if (path == "/statusz") {
    body = render_statusz();
  } else if (path == "/tracez") {
    const bool ndjson = query.find("format=ndjson") != std::string::npos;
    type = ndjson ? "application/x-ndjson" : "application/json";
    body = render_tracez(ndjson);
  } else {
    code = 404;
    type = "text/plain";
    body = "not found\n";
  }

  // Injected dead scraper: the reply is dropped on the floor. The caller
  // sees a closed connection and retries; the listener must stay up.
  if (MISUSEDET_FAILPOINT("admin.respond")) {
    serve_metrics().admin_errors.inc();
    return;
  }

  std::ostream& out = stream.io();
  out << "HTTP/1.0 " << code << ' ' << status_reason(code) << "\r\n"
      << "Content-Type: " << type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  out.flush();
  if (out.good()) {
    serve_metrics().admin_scrapes.inc();
  } else {
    serve_metrics().admin_errors.inc();
  }
}

std::string AdminServer::render_metrics() const {
  std::ostringstream out;
  metrics().write_prometheus(out);
  return out.str();
}

std::string AdminServer::render_healthz(int* http_status) const {
  const std::vector<ScoringServer::ShardStatus> shards = server_.shard_status();
  double max_saturation = 0.0;
  std::size_t shards_at_capacity = 0;
  for (const auto& shard : shards) {
    if (shard.queue_capacity == 0) continue;
    const double saturation =
        static_cast<double>(shard.queue_depth) / static_cast<double>(shard.queue_capacity);
    max_saturation = std::max(max_saturation, saturation);
    if (shard.queue_depth >= shard.queue_capacity) ++shards_at_capacity;
  }
  const ServeMetrics& sm = serve_metrics();
  const std::int64_t degraded_clusters = sm.degraded_clusters.value();
  const std::int64_t reload_streak = sm.reload_failure_streak.value();
  const std::uint64_t wal_lag = server_.events_since_checkpoint();
  const ServeConfig& cfg = server_.config();
  const bool wal_failed = server_.wal_enabled() && !server_.wal_ok();
  const bool wal_lagging =
      server_.wal_enabled() && cfg.snapshot_every > 0 && wal_lag >= 2 * cfg.snapshot_every;

  // degraded = still scoring correctly but something needs attention;
  // unhealthy = correctness or durability is actually compromised (503,
  // so orchestrators route around the node).
  std::vector<std::string> reasons;
  if (degraded_clusters > 0) reasons.push_back("degraded_clusters");
  if (max_saturation >= 0.9) reasons.push_back("queue_pressure");
  if (wal_lagging) reasons.push_back("wal_lag");
  if (reload_streak > 0) reasons.push_back("reload_failures");
  std::string status = reasons.empty() ? "ok" : "degraded";
  if (wal_failed) {
    reasons.push_back("wal_failed");
    status = "unhealthy";
  }
  if (!shards.empty() && shards_at_capacity == shards.size()) {
    reasons.push_back("queues_full");
    status = "unhealthy";
  }
  if (reload_streak >= 3) status = "unhealthy";
  if (http_status != nullptr) *http_status = status == "unhealthy" ? 503 : 200;

  std::string joined;
  for (const std::string& reason : reasons) {
    if (!joined.empty()) joined += ";";
    joined += reason;
  }
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("status", status);
    json.member("reasons", joined);
    json.member("queue_saturation", max_saturation);
    json.member("shards_at_capacity", shards_at_capacity);
    json.member("degraded_clusters", static_cast<long long>(degraded_clusters));
    json.member("wal_lag_events", wal_lag);
    json.member("reload_failure_streak", static_cast<long long>(reload_streak));
    json.end_object();
  }
  out << "\n";
  return out.str();
}

std::string AdminServer::render_statusz() const {
  const std::vector<ScoringServer::ShardStatus> shards = server_.shard_status();
  std::size_t queued = 0;
  std::uint64_t min_watermark = UINT64_MAX;
  for (const auto& shard : shards) {
    queued += shard.queue_depth;
    min_watermark = std::min(min_watermark, shard.last_applied_seq);
  }
  if (min_watermark == UINT64_MAX) min_watermark = 0;
  const std::uint64_t next_seq = server_.next_seq();
  const std::uint64_t assigned = next_seq > 0 ? next_seq - 1 : 0;
  const ServeConfig& cfg = server_.config();

  // One *flat* single-line JSON object: misusedet_top (and any script)
  // parses this with util/line_io's parse_flat_json, so no nesting.
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("uptime_seconds", static_cast<double>(trace_now_nanos() - start_nanos_) / 1e9);
    json.member("model_version",
                hooks_.model_version ? hooks_.model_version() : server_.current_model().version);
    json.member("canary_version", hooks_.canary_version ? hooks_.canary_version() : "");
    json.member("infer_kernel", config_.infer_kernel);
    json.member("host_cores", host_info().cores);
    json.member("shards", shards.size());
    json.member("sessions_active", server_.active_sessions());
    json.member("sessions_limit", cfg.max_sessions);
    json.member("queued_events", queued);
    json.member("queue_capacity_per_shard", cfg.queue_capacity);
    json.member("backpressure",
                cfg.backpressure == BackpressurePolicy::kBlock ? "block" : "drop_oldest");
    json.member("event_clock", server_.event_clock());
    json.member("next_seq", next_seq);
    json.member("wal_enabled", server_.wal_enabled());
    json.member("wal_ok", server_.wal_ok());
    json.member("events_since_checkpoint", server_.events_since_checkpoint());
    json.member("snapshot_every", cfg.snapshot_every);
    // How far the durable watermark trails the stream head: an upper
    // bound on the replay a crash right now would need.
    json.member("wal_watermark_lag", assigned > min_watermark ? assigned - min_watermark : 0);
    json.member("trace_enabled", trace_events().enabled());
    json.member("trace_events_dropped", trace_events().dropped());
    // Shadow scorer evidence (serve/shadow.cpp) — what the learn loop's
    // promotion guardrails read live off this node.
    const ServeMetrics& sm = serve_metrics();
    const std::uint64_t shadow_steps = sm.shadow_steps.value();
    json.member("shadow_steps", shadow_steps);
    json.member("shadow_verdict_flips", sm.shadow_verdict_flips.value());
    json.member("shadow_flip_rate",
                shadow_steps > 0 ? static_cast<double>(sm.shadow_verdict_flips.value()) /
                                       static_cast<double>(shadow_steps)
                                 : 0.0);
    json.member("shadow_loss_delta_mean",
                sm.shadow_loss_delta.count() > 0
                    ? sm.shadow_loss_delta.sum() / static_cast<double>(sm.shadow_loss_delta.count())
                    : 0.0);
    // Continuous-learning state, re-emitted flat with a learn_ prefix
    // (strings stay strings, numbers stay raw) so the object stays
    // parse_flat_json-clean.
    if (hooks_.learn_status) {
      const std::string learn = hooks_.learn_status();
      std::vector<JsonField> fields;
      std::string error;
      if (!learn.empty() && parse_flat_json(learn, fields, error)) {
        for (const auto& field : fields) {
          json.key("learn_" + field.key);
          if (field.is_string) {
            json.value(field.value);
          } else {
            json.raw_value(field.value);
          }
        }
      }
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const std::string prefix = "shard." + std::to_string(s) + ".";
      json.member(prefix + "queue_depth", shards[s].queue_depth);
      json.member(prefix + "queue_high_water", static_cast<long long>(shards[s].queue_high_water));
      json.member(prefix + "sessions", shards[s].sessions);
      json.member(prefix + "max_sessions", shards[s].max_sessions);
      json.member(prefix + "last_applied_seq", shards[s].last_applied_seq);
    }
    json.end_object();
  }
  out << "\n";
  return out.str();
}

std::string AdminServer::render_tracez(bool ndjson) const {
  const std::vector<TraceEvent> events = trace_events().snapshot();
  std::ostringstream out;
  if (ndjson) {
    write_trace_events_ndjson(out, events);
  } else {
    write_chrome_trace(out, events);
    out << "\n";
  }
  return out.str();
}

}  // namespace misuse::serve

// Instrument panel of the streaming scoring server. Same pattern as
// core::MonitorMetrics: one process-wide bundle of registry-owned
// instruments, resolved once and shared by every shard. All updates are
// relaxed atomics, so shards record concurrently without coordination.
#pragma once

#include "util/metrics.hpp"

namespace misuse::serve {

struct ServeMetrics {
  Counter& events;             // serve.events — accepted input events
  Counter& steps;              // serve.steps — scored actions
  Counter& alarms;             // serve.alarms — steps that alarmed
  Counter& parse_errors;       // serve.parse_errors — rejected lines
  Counter& dropped_events;     // serve.dropped_events — drop-oldest backpressure
  Counter& sessions_opened;    // serve.sessions_opened
  Counter& sessions_evicted;   // serve.sessions_evicted — TTL + capacity
  Counter& sessions_finished;  // serve.sessions_finished — all report emissions
  Gauge& sessions_active;      // serve.sessions_active (+ high-water mark)
  Gauge& queue_depth;          // serve.queue_depth — events queued across shards
  HistogramMetric& step_seconds;  // serve.step_seconds — per-event shard latency

  // Fault tolerance (see DESIGN.md "Fault tolerance").
  Counter& wal_appends;         // serve.wal_appends — records written to shard WALs
  Counter& wal_torn_records;    // serve.wal_torn_records — torn tails dropped at recovery
  Counter& snapshot_failures;   // serve.snapshot_failures — checkpoint snapshots that failed
  Counter& recovered_events;    // serve.recovered_events — WAL events replayed at startup
  Counter& recovered_sessions;  // serve.recovered_sessions — sessions restored from snapshots
  Counter& replay_skipped;      // serve.replay_skipped — resume-replay duplicates dropped
  Gauge& degraded_clusters;     // serve.degraded_clusters — clusters on Markov fallback

  // Model lifecycle (see DESIGN.md "Model lifecycle").
  Counter& swaps;                     // serve.swaps — completed hot-swaps
  Counter& swap_sessions_rolled;      // serve.swap_sessions_rolled — sessions finished at a
                                      // vocab-changing swap barrier
  Gauge& model_version;               // serve.model_version — numeric active registry version
  HistogramMetric& swap_pause_seconds;  // serve.swap_pause_seconds — barrier pause per swap
  Gauge& drift_micronats;             // serve.drift_micronats — JS divergence vs training, 1e-6 nats

  // Operations plane (see DESIGN.md "Operations plane").
  Counter& reload_failures;       // serve.reload_failures — registry reloads that threw
  Gauge& reload_failure_streak;   // serve.reload_failure_streak — consecutive failures (0 = ok)
  Counter& admin_scrapes;         // serve.admin.scrapes — admin requests answered
  Counter& admin_errors;          // serve.admin.errors — admin connections that failed mid-reply

  // Shadow / canary scoring (candidate model alongside the active one).
  Counter& shadow_steps;            // serve.shadow.steps — actions scored by the candidate
  Counter& shadow_sessions;         // serve.shadow.sessions — candidate sessions finished
  Counter& shadow_verdict_flips;    // serve.shadow.verdict_flips — alarm disagreements
  Counter& shadow_unknown_actions;  // serve.shadow.unknown_actions — unresolvable under candidate
  HistogramMetric& shadow_loss_delta;  // serve.shadow.loss_delta — |candidate - active| step loss
};

/// The shared bundle; registers the instruments on first call.
ServeMetrics& serve_metrics();

}  // namespace misuse::serve

#include "serve/shadow.hpp"

#include <cmath>

#include "serve/metrics.hpp"

namespace misuse::serve {

bool ShadowScorer::selected(std::string_view key) const {
  if (plan_.fraction >= 1.0) return true;
  if (plan_.fraction <= 0.0) return false;
  // Re-mix the shard hash (splitmix64 finalizer) so canary selection is
  // independent of shard assignment — otherwise fraction 1/shards would
  // mirror whole shards instead of a spread of sessions.
  std::uint64_t h = session_shard_hash(key);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return unit < plan_.fraction;
}

void ShadowScorer::observe(const Event& event,
                           const core::OnlineMonitor::StepResult& active_step) {
  const std::string key = session_key(event);
  if (!selected(key)) return;
  ServeMetrics& sm = serve_metrics();
  // The candidate resolves the raw action under its own vocabulary — the
  // whole point of shadowing is that the two models may disagree on it.
  const int action = resolve_action_id(plan_.detector->vocab(), event.action);
  if (action < 0) {
    sm.shadow_unknown_actions.inc();
    return;
  }
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    it = sessions_.try_emplace(key, *plan_.detector, plan_.monitor).first;
  }
  const core::OnlineMonitor::StepResult step = it->second.observe(action);
  sm.shadow_steps.inc();
  if (step.alarm != active_step.alarm) sm.shadow_verdict_flips.inc();
  if (step.likelihood_voted && active_step.likelihood_voted) {
    const double candidate_loss = -std::log(std::max(*step.likelihood_voted, 1e-12));
    const double active_loss = -std::log(std::max(*active_step.likelihood_voted, 1e-12));
    sm.shadow_loss_delta.record(std::abs(candidate_loss - active_loss));
  }
}

void ShadowScorer::finish(std::string_view user_id, std::string_view session_id) {
  if (sessions_.erase(session_key(user_id, session_id)) > 0) {
    serve_metrics().shadow_sessions.inc();
  }
}

void ShadowScorer::finish_all() {
  serve_metrics().shadow_sessions.inc(sessions_.size());
  sessions_.clear();
}

}  // namespace misuse::serve

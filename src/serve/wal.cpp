#include "serve/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "serve/metrics.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace misuse::serve {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x504e5357u;  // "WSNP"
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr std::uint32_t kManifestMagic = 0x4e414d57u;  // "WMAN"
constexpr std::uint32_t kManifestVersion = 1;
/// A WAL record is one event (a few short strings); anything past this
/// length is framing corruption, not data.
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

// Encoding appends straight into a std::string (same byte layout as
// BinaryWriter: host little-endian scalars, u64-length-prefixed strings).
// This sits on the per-event hot path, so no ostringstream round-trips.
template <typename T>
void put(std::string& out, T value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void put_string(std::string& out, const std::string& s) {
  put<std::uint64_t>(out, s.size());
  out.append(s);
}

std::string frame(const std::string& payload) {
  std::string framed;
  framed.reserve(payload.size() + 2 * sizeof(std::uint32_t));
  put<std::uint32_t>(framed, static_cast<std::uint32_t>(payload.size()));
  framed.append(payload);
  put<std::uint32_t>(framed, crc32(payload));
  return framed;
}

/// Decodes one CRC-verified frame payload. False on a malformed payload
/// (unknown type or truncated fields) — framing corruption, not data.
bool decode_payload(std::string_view payload, WalRecord& record) {
  std::istringstream payload_in{std::string(payload), std::ios::binary};
  BinaryReader r(payload_in);
  try {
    record.type = r.read<std::uint8_t>();
    record.seq = r.read<std::uint64_t>();
    if (record.type == WalRecord::kEvent) {
      record.event.user_id = r.read_string();
      record.event.session_id = r.read_string();
      record.event.action = r.read_string();
      record.event.has_timestamp = r.read<std::uint8_t>() != 0;
      record.event.timestamp = r.read<double>();
    } else if (record.type == WalRecord::kSweep) {
      record.sweep_now = r.read<double>();
    } else {
      return false;
    }
  } catch (const SerializeError&) {
    return false;
  }
  return true;
}

/// Scans `bytes` from offset 0 for complete, CRC-intact frames, appending
/// the decoded records. Returns the number of bytes covered by complete
/// frames — the only bytes a cursor may advance past; anything after is a
/// (possibly still-being-written) tail.
std::size_t scan_frames(std::string_view bytes, std::vector<WalRecord>& records) {
  std::size_t pos = 0;
  while (pos + 8 <= bytes.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    if (len > kMaxRecordBytes || pos + 8 + len > bytes.size()) break;
    const std::string_view payload(bytes.data() + pos + 4, len);
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + pos + 4 + len, sizeof(stored));
    if (crc32(payload) != stored) break;
    WalRecord record;
    if (!decode_payload(payload, record)) break;
    records.push_back(std::move(record));
    pos += 8 + len;
  }
  return pos;
}

}  // namespace

std::string encode_event_record(const Event& event, std::uint64_t seq) {
  std::string payload;
  payload.reserve(4 * sizeof(std::uint64_t) + 2 + event.user_id.size() +
                  event.session_id.size() + event.action.size() + sizeof(double));
  put<std::uint8_t>(payload, WalRecord::kEvent);
  put<std::uint64_t>(payload, seq);
  put_string(payload, event.user_id);
  put_string(payload, event.session_id);
  put_string(payload, event.action);
  put<std::uint8_t>(payload, event.has_timestamp ? 1 : 0);
  put<double>(payload, event.timestamp);
  return frame(payload);
}

std::string encode_sweep_record(double now, std::uint64_t seq) {
  std::string payload;
  put<std::uint8_t>(payload, WalRecord::kSweep);
  put<std::uint64_t>(payload, seq);
  put<double>(payload, now);
  return frame(payload);
}

WalWriter::WalWriter(std::string path, std::size_t sync_every)
    : path_(std::move(path)), sync_every_(std::max<std::size_t>(1, sync_every)) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    log_warn() << "cannot open WAL " << path_ << ": " << std::strerror(errno)
               << "; continuing without durability for this shard";
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    flush();
    ::fsync(fd_);
    ::close(fd_);
  }
}

bool WalWriter::append(const std::string& framed) {
  if (fd_ < 0) return false;
  if (MISUSEDET_FAILPOINT("wal.append")) {
    log_warn() << "WAL append failed on " << path_ << "; record not durable";
    return false;
  }
  buffer_.append(framed);
  serve_metrics().wal_appends.inc();
  bool ok = true;
  // Cap the group-commit buffer so a huge drain cannot hold an unbounded
  // backlog of unlogged-but-applied records in user space.
  if (buffer_.size() >= (std::size_t{256} << 10)) ok = flush();
  if (++appends_since_sync_ >= sync_every_) sync();
  return ok;
}

bool WalWriter::flush() {
  if (buffer_.empty()) return true;
  if (fd_ < 0) {
    buffer_.clear();
    return false;
  }
  const bool ok = write_fully(fd_, buffer_.data(), buffer_.size());
  if (!ok) log_warn() << "WAL write failed on " << path_ << "; records not durable";
  buffer_.clear();
  return ok;
}

void WalWriter::sync() {
  appends_since_sync_ = 0;
  flush();
  if (fd_ < 0) return;
  if (MISUSEDET_FAILPOINT("wal.fsync")) {
    log_warn() << "WAL fsync skipped on " << path_ << " (injected failure)";
    return;
  }
  ::fsync(fd_);
}

void WalWriter::reset() {
  appends_since_sync_ = 0;
  buffer_.clear();
  if (fd_ < 0) return;
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    log_warn() << "cannot truncate WAL " << path_ << ": " << std::strerror(errno);
  }
}

std::vector<WalRecord> read_wal(const std::string& path) {
  std::vector<WalRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = raw.str();

  const std::size_t pos = scan_frames(bytes, records);
  if (pos < bytes.size()) {
    serve_metrics().wal_torn_records.inc();
    log_warn() << "WAL " << path << ": torn tail after " << records.size()
               << " intact records (" << (bytes.size() - pos) << " trailing bytes dropped)";
  }
  return records;
}

WalTailer::WalTailer(std::string dir) : dir_(std::move(dir)) {}

std::size_t WalTailer::poll(std::vector<WalRecord>& out) {
  const auto shards = read_manifest(dir_);
  if (!shards || *shards == 0) return 0;  // server not started yet — retry later
  if (offsets_.size() != *shards) {
    // First poll, or the server restarted with a different shard layout.
    // Cursors restart at 0; the new shards' watermarks seed from the
    // global high-water mark so a recovery replay (which re-logs records
    // under their original seqs) is not re-delivered.
    offsets_.assign(*shards, 0);
    watermarks_.assign(*shards, last_seq_);
  }

  std::vector<WalRecord> fresh;
  for (std::size_t k = 0; k < *shards; ++k) {
    std::ifstream in(wal_path(dir_, k), std::ios::binary);
    if (!in) continue;
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end < 0) continue;
    const auto size = static_cast<std::uint64_t>(end);
    // Shrunk file = a checkpoint truncated the log. Everything it covered
    // was polled before the truncation; restart from the top and let the
    // shard's seq watermark drop any overlap.
    if (size < offsets_[k]) offsets_[k] = 0;
    if (size == offsets_[k]) continue;
    in.seekg(static_cast<std::streamoff>(offsets_[k]));
    std::string bytes(static_cast<std::size_t>(size - offsets_[k]), '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    bytes.resize(static_cast<std::size_t>(in.gcount()));

    std::vector<WalRecord> shard_records;
    // Only complete, intact frames advance the cursor: a torn tail (the
    // writer mid-append) stays in place and is retried whole next poll.
    offsets_[k] += scan_frames(bytes, shard_records);
    // Dedup is per shard — each shard's log is seq-ascending, but the
    // shards flush independently, so a *global* watermark could drop a
    // lagging shard's records that are merely younger on disk.
    for (auto& record : shard_records) {
      if (record.seq > watermarks_[k]) {
        watermarks_[k] = record.seq;
        fresh.push_back(std::move(record));
      }
    }
  }
  if (fresh.empty()) return 0;
  // Each shard's log is seq-ascending (events apply in arrival order), so
  // a stable sort merges the shard streams into global input order.
  std::stable_sort(fresh.begin(), fresh.end(),
                   [](const WalRecord& a, const WalRecord& b) { return a.seq < b.seq; });
  for (const auto& record : fresh) last_seq_ = std::max(last_seq_, record.seq);
  const std::size_t added = fresh.size();
  out.insert(out.end(), std::make_move_iterator(fresh.begin()),
             std::make_move_iterator(fresh.end()));
  return added;
}

bool write_snapshot(const std::string& path, const ShardSnapshot& snapshot) {
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter w(buffer);
  w.begin_crc();
  w.write_magic(kSnapshotMagic, kSnapshotVersion);
  w.write<std::uint64_t>(snapshot.watermark);
  w.write<double>(snapshot.clock);
  w.write<std::uint64_t>(snapshot.sessions.size());
  for (const auto& session : snapshot.sessions) {
    w.write_string(session.user_id);
    w.write_string(session.session_id);
    w.write_vector(std::span<const int>(session.actions));
    w.write<double>(session.last_seen);
  }
  const std::uint32_t crc = w.crc();
  w.write<std::uint32_t>(crc);
  if (MISUSEDET_FAILPOINT("wal.snapshot") || !write_file_atomic(path, buffer.str())) {
    serve_metrics().snapshot_failures.inc();
    log_warn() << "snapshot write failed: " << path;
    return false;
  }
  return true;
}

std::optional<ShardSnapshot> read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    BinaryReader r(in);
    r.begin_crc();
    r.read_magic(kSnapshotMagic);
    ShardSnapshot snapshot;
    snapshot.watermark = r.read<std::uint64_t>();
    snapshot.clock = r.read<double>();
    const auto n = r.read<std::uint64_t>();
    if (n > (1ULL << 24)) throw SerializeError("implausible snapshot session count");
    for (std::uint64_t i = 0; i < n; ++i) {
      SessionSnapshot session;
      session.user_id = r.read_string();
      session.session_id = r.read_string();
      session.actions = r.read_vector<int>();
      session.last_seen = r.read<double>();
      snapshot.sessions.push_back(std::move(session));
    }
    const std::uint32_t computed = r.crc();
    const std::uint32_t stored = r.read<std::uint32_t>();
    if (computed != stored) throw SerializeError("snapshot CRC mismatch");
    return snapshot;
  } catch (const SerializeError& e) {
    log_warn() << "snapshot " << path << " unusable (" << e.what()
               << "); falling back to WAL replay";
    return std::nullopt;
  }
}

bool write_manifest(const std::string& dir, std::size_t shards) {
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter w(buffer);
  w.write_magic(kManifestMagic, kManifestVersion);
  w.write<std::uint64_t>(shards);
  return write_file_atomic(dir + "/MANIFEST", buffer.str());
}

std::optional<std::size_t> read_manifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST", std::ios::binary);
  if (!in) return std::nullopt;
  try {
    BinaryReader r(in);
    r.read_magic(kManifestMagic);
    return static_cast<std::size_t>(r.read<std::uint64_t>());
  } catch (const SerializeError& e) {
    log_warn() << "WAL manifest unreadable (" << e.what() << ")";
    return std::nullopt;
  }
}

std::string wal_path(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

std::string snapshot_path(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".snap";
}

void remove_stale_shard_files(const std::string& dir, std::size_t shards) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    const auto dot = name.find_last_of('.');
    if (dot == std::string::npos) continue;
    const std::string ext = name.substr(dot);
    if (ext != ".wal" && ext != ".snap") continue;
    std::size_t index = 0;
    try {
      index = static_cast<std::size_t>(std::stoull(name.substr(6, dot - 6)));
    } catch (const std::exception&) {
      continue;
    }
    if (index >= shards) std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace misuse::serve

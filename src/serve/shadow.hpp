// Shadow / canary scoring: a candidate model rides alongside the active
// one so its behavior on live traffic can be judged *before* promotion.
// A configurable fraction of sessions (1.0 = full shadow mirror, less =
// canary sampling) is mirrored into OnlineMonitors on the candidate;
// each mirrored step is compared against the active model's verdict and
// the disagreement lands in the serve.shadow.* metrics (verdict flips,
// per-step |loss delta|). The shadow path writes ONLY metrics — it never
// emits output records and never touches active-session state, so active
// output stays bit-identical with shadow scoring on or off.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/detector.hpp"
#include "core/monitor.hpp"
#include "serve/event.hpp"

namespace misuse::serve {

/// What to shadow-score: the candidate model, which fraction of sessions
/// to mirror, and the monitor settings to score them with.
struct ShadowPlan {
  std::shared_ptr<const core::MisuseDetector> detector;
  std::string version;  // candidate's registry version, for logs
  /// Fraction of sessions mirrored to the candidate, in [0, 1]. Selection
  /// is a deterministic re-hash of the session key (independent of the
  /// shard hash), so the same sessions are canaried on every run and
  /// every replica.
  double fraction = 1.0;
  core::MonitorConfig monitor;
};

/// One shard's shadow scorer, driven under the owning shard's lock (so
/// it needs no locking of its own). Its session map shadows the active
/// table's lifecycle: the shard calls observe() after each applied step
/// and finish() whenever a session reports, for any reason.
class ShadowScorer {
 public:
  explicit ShadowScorer(ShadowPlan plan) : plan_(std::move(plan)) {}

  /// Mirrors one applied event; `active_step` is the active model's
  /// verdict for the same action (the disagreement baseline).
  void observe(const Event& event, const core::OnlineMonitor::StepResult& active_step);

  /// The active table finished this session — close the mirror.
  void finish(std::string_view user_id, std::string_view session_id);

  /// Closes every mirror (shadow teardown / server shutdown).
  void finish_all();

  const ShadowPlan& plan() const { return plan_; }
  std::size_t active_sessions() const { return sessions_.size(); }

  /// Whether the deterministic sampler mirrors this session key.
  bool selected(std::string_view key) const;

 private:
  ShadowPlan plan_;
  std::unordered_map<std::string, core::OnlineMonitor> sessions_;
};

}  // namespace misuse::serve

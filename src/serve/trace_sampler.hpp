// Head sampling for live trace export (--trace-sample=N): the first N
// distinct session keys the process sees get per-event TraceEvents
// (util/trace.hpp ring) spanning enqueue -> monitor step -> report;
// every other session costs one mutex-guarded set probe and nothing
// else. Head sampling (rather than rate sampling) is deliberate: the
// sampled sessions are complete, so their exported span trees show the
// full shard-enqueue/step/verdict lifecycle, not random slices.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace misuse::serve {

class SessionTraceSampler {
 public:
  explicit SessionTraceSampler(std::size_t head_count) : head_count_(head_count) {}

  /// True iff `key` is (or just became) one of the head-sampled
  /// sessions. Thread-safe: shards call in from pool workers. The probe
  /// sits on the per-event hot path, so once the head fills the key set
  /// is sealed immutable and probes skip the mutex entirely (the
  /// acquire pairs with the sealing release, publishing the final
  /// rehash); only the brief filling phase serializes.
  bool sampled(std::string_view key) {
    if (sealed_.load(std::memory_order_acquire)) {
      return keys_.find(key) != keys_.end();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (keys_.find(key) != keys_.end()) return true;
    if (keys_.size() >= head_count_) {
      sealed_.store(true, std::memory_order_release);
      return false;
    }
    keys_.emplace(key);
    if (keys_.size() >= head_count_) sealed_.store(true, std::memory_order_release);
    return true;
  }

  std::size_t sampled_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return keys_.size();
  }

  std::size_t head_count() const { return head_count_; }

 private:
  /// Heterogeneous hashing so probes never materialize a std::string.
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  const std::size_t head_count_;
  std::atomic<bool> sealed_{false};
  mutable std::mutex mutex_;
  std::unordered_set<std::string, KeyHash, std::equal_to<>> keys_;
};

}  // namespace misuse::serve

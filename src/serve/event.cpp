#include "serve/event.hpp"

#include <cctype>
#include <sstream>

#include "util/json.hpp"
#include "util/line_io.hpp"

namespace misuse::serve {

bool parse_event(std::string_view line, Event& event, std::string& error) {
  std::vector<JsonField> fields;
  if (!parse_flat_json(line, fields, error)) return false;
  const auto user = get_string(fields, "user_id");
  const auto session = get_string(fields, "session_id");
  const auto action = get_string(fields, "action");
  if (!user || user->empty()) {
    error = "missing user_id";
    return false;
  }
  if (!session || session->empty()) {
    error = "missing session_id";
    return false;
  }
  if (!action || action->empty()) {
    error = "missing action";
    return false;
  }
  event.user_id = *user;
  event.session_id = *session;
  event.action = *action;
  const auto ts = get_number(fields, "timestamp");
  event.has_timestamp = ts.has_value();
  event.timestamp = ts.value_or(0.0);
  return true;
}

std::string session_key(const Event& event) {
  return session_key(event.user_id, event.session_id);
}

std::string session_key(std::string_view user_id, std::string_view session_id) {
  std::string key;
  key.reserve(user_id.size() + session_id.size() + 1);
  key += user_id;
  key += '\x1f';  // ASCII unit separator: cannot appear via JSON text unescaped ids in practice
  key += session_id;
  return key;
}

std::uint64_t session_shard_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string_view report_reason_name(ReportReason reason) {
  switch (reason) {
    case ReportReason::kIdleEviction: return "idle_eviction";
    case ReportReason::kCapacityEviction: return "capacity_eviction";
    case ReportReason::kShutdown: return "shutdown";
    case ReportReason::kModelSwap: return "model_swap";
  }
  return "unknown";
}

int resolve_action_id(const ActionVocab& vocab, std::string_view action) {
  if (const auto id = vocab.find(action)) return *id;
  if (action.empty()) return -1;
  int value = 0;
  for (const char c : action) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return -1;
    if (value > static_cast<int>(vocab.size())) return -1;  // overflow guard
    value = value * 10 + (c - '0');
  }
  return value < static_cast<int>(vocab.size()) ? value : -1;
}

namespace {

void write_ids(JsonWriter& json, std::string_view user_id, std::string_view session_id) {
  json.member("user_id", user_id);
  json.member("session_id", session_id);
}

}  // namespace

std::string render_step_record(const Event& event,
                               const core::OnlineMonitor::StepResult& step) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("type", "step");
    write_ids(json, event.user_id, event.session_id);
    json.member("step", step.step);
    json.member("cluster", step.cluster_voted);
    json.member("cluster_argmax", step.cluster_argmax);
    json.key("likelihood");
    if (step.likelihood_voted) {
      json.value(*step.likelihood_voted);
    } else {
      json.null();
    }
    json.member("alarm", step.alarm);
    json.member("trend_alarm", step.trend_alarm);
    // Only rendered when true so healthy deployments keep byte-identical
    // output with pre-degraded-mode builds.
    if (step.degraded) json.member("degraded", true);
    if (!step.expected.empty()) {
      json.key("expected");
      json.begin_array();
      for (const auto& e : step.expected) {
        json.begin_object();
        json.member("action", e.action);
        json.member("p", e.probability);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  }
  return out.str();
}

std::string render_report_record(std::string_view user_id, std::string_view session_id,
                                 ReportReason reason, const core::SessionMonitorReport& report,
                                 std::string_view model_version) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("type", "session_report");
    write_ids(json, user_id, session_id);
    json.member("reason", report_reason_name(reason));
    json.member("steps", report.steps);
    json.member("alarms", report.alarms);
    json.member("trend_alarms", report.trend_alarms);
    json.member("disagree_steps", report.disagree_steps);
    json.key("first_alarm_step");
    if (report.first_alarm_step) {
      json.value(*report.first_alarm_step);
    } else {
      json.null();
    }
    json.member("voted_cluster", report.voted_cluster);
    json.member("avg_likelihood", report.avg_likelihood_voted);
    if (report.degraded) json.member("degraded", true);
    // Omitted (not null) when unset — see the header note on byte-compat.
    if (!model_version.empty()) json.member("model_version", model_version);
    json.end_object();
  }
  return out.str();
}

std::string render_error_record(std::string_view message, std::string_view line) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("type", "error");
    json.member("error", message);
    json.member("line", line);
    json.end_object();
  }
  return out.str();
}

}  // namespace misuse::serve

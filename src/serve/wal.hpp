// Crash safety for the streaming scoring server (see DESIGN.md "Fault
// tolerance"). Two artifacts per shard, both living in --wal-dir:
//
//   * shard-<k>.wal — a write-ahead log of the *applied* event stream.
//     Every record is framed [u32 len][payload][u32 crc32(payload)], so a
//     torn tail (crash mid-append) is detected and dropped at recovery
//     instead of poisoning the replay. Events are logged immediately
//     before they are applied to the session table, so the WAL is exactly
//     the sequence of scored actions; events that were queued but never
//     pumped are the (documented) at-most-once durability boundary.
//   * shard-<k>.snap — a periodic snapshot of the shard's session table:
//     per session the raw action history, from which the deterministic
//     OnlineMonitor state is rebuilt by re-feeding. The snapshot's
//     watermark is the last applied sequence number it covers; recovery
//     replays only WAL records past it.
//
// A MANIFEST file records the shard layout that wrote the files, so a
// restart with a different --shards value still recovers: old-layout
// files are read as data, merged globally by sequence number, and routed
// through the *current* sharding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/event.hpp"

namespace misuse::serve {

/// One decoded WAL record.
struct WalRecord {
  enum Type : std::uint8_t {
    kEvent = 1,  // one applied input event
    kSweep = 2,  // a TTL sweep ran at event time `sweep_now`
  };
  std::uint8_t type = kEvent;
  std::uint64_t seq = 0;
  Event event;             // kEvent only
  double sweep_now = 0.0;  // kSweep only
};

/// Encodes records into the framed wire form WalWriter appends.
std::string encode_event_record(const Event& event, std::uint64_t seq);
std::string encode_sweep_record(double now, std::uint64_t seq);

/// Appends framed records to one shard's log via a POSIX fd (O_APPEND),
/// with full-write EINTR retry and an fsync every `sync_every` appends.
/// Failpoints: "wal.append" fails the append, "wal.fsync" skips the sync.
class WalWriter {
 public:
  WalWriter(std::string path, std::size_t sync_every);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Buffers one pre-encoded record (group commit: the write syscall is
  /// deferred to flush()/sync(), which the server calls before a batch's
  /// verdicts become externally visible). Returns false (and logs) on an
  /// I/O failure — the server keeps scoring; durability degrades, not
  /// availability.
  bool append(const std::string& framed);

  /// Hands every buffered record to the OS in one write. Once written,
  /// records survive a process crash (the page cache outlives the
  /// process); sync() additionally survives a machine crash.
  bool flush();

  /// flush() plus fsync: everything appended so far is on stable storage.
  void sync();

  /// Truncates the log to empty (after a snapshot covers its contents).
  void reset();

  bool ok() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string buffer_;
  int fd_ = -1;
  std::size_t sync_every_;
  std::size_t appends_since_sync_ = 0;
};

/// Reads every intact record of one shard log; a torn or corrupt tail
/// stops the scan cleanly (counted in serve.wal_torn_records). A missing
/// file reads as empty.
std::vector<WalRecord> read_wal(const std::string& path);

/// Incremental reader over a live serve node's WAL directory — the
/// continuous-learning collector's event source. Each poll() decodes the
/// records appended to every shard log since the previous poll and
/// returns them merged ascending by sequence number. Designed to run
/// beside a writing server:
///   * per-shard byte cursors only ever advance past *complete, CRC-intact*
///     frames — a torn tail (the writer mid-append) is left in place and
///     retried whole on the next poll, never skipped;
///   * a shard file that shrank (checkpoint truncation) resets its cursor
///     to the start; records covered by the checkpoint were already
///     polled, and re-reads are dropped by the shard's seq watermark;
///   * the MANIFEST is re-read until it appears, so the tailer may start
///     before the server writes its first record.
/// Duplicate suppression is by seq watermark, so feed one tailer one
/// directory for its whole life.
class WalTailer {
 public:
  explicit WalTailer(std::string dir);

  /// Appends records not yet observed (ascending seq) to `out`; returns
  /// how many were appended.
  std::size_t poll(std::vector<WalRecord>& out);

  /// Highest sequence number observed so far.
  std::uint64_t last_seq() const { return last_seq_; }

 private:
  std::string dir_;
  std::vector<std::uint64_t> offsets_;     // per-shard byte cursor
  std::vector<std::uint64_t> watermarks_;  // per-shard max seq delivered
  std::uint64_t last_seq_ = 0;
};

/// Snapshot of one session: the raw applied action history (the
/// deterministic monitor state is rebuilt by re-feeding it) plus the
/// event-time the session was last seen.
struct SessionSnapshot {
  std::string user_id;
  std::string session_id;
  std::vector<int> actions;
  double last_seen = 0.0;
};

/// Snapshot of one shard's session table at a checkpoint.
struct ShardSnapshot {
  /// Every applied event with seq <= watermark is reflected here; WAL
  /// replay starts strictly after it.
  std::uint64_t watermark = 0;
  double clock = 0.0;  // shard event clock
  std::vector<SessionSnapshot> sessions;
};

/// Atomically writes a shard snapshot (tmp + fsync + rename) with a
/// whole-file CRC footer. Returns false on failure (counted in
/// serve.snapshot_failures); failpoint "wal.snapshot" forces one.
bool write_snapshot(const std::string& path, const ShardSnapshot& snapshot);

/// Reads a shard snapshot; nullopt when the file is missing, truncated,
/// or fails its CRC — recovery then falls back to pure WAL replay.
std::optional<ShardSnapshot> read_snapshot(const std::string& path);

/// MANIFEST: the shard count that wrote the wal/snap files in `dir`.
bool write_manifest(const std::string& dir, std::size_t shards);
std::optional<std::size_t> read_manifest(const std::string& dir);

/// Paths of one shard's artifacts inside the WAL directory.
std::string wal_path(const std::string& dir, std::size_t shard);
std::string snapshot_path(const std::string& dir, std::size_t shard);

/// Removes shard-<k>.{wal,snap} files with k >= `shards` — stale leftovers
/// after a restart shrank the shard layout.
void remove_stale_shard_files(const std::string& dir, std::size_t shards);

}  // namespace misuse::serve

// Nonblocking NDJSON front end for the serving layer: one thread, one
// level-triggered epoll set, any number of connections. Replaces the
// thread-per-connection TCP loop for deployments with many concurrent
// producers (the millions-of-sessions topology needs the router +
// node cluster in src/router, and each node needs to hold thousands of
// sockets without a thread each).
//
// Framing and hardening:
//   * per-connection input buffer accumulates partial reads until a
//     complete '\n'-terminated line is available (CRLF folded to LF, as
//     LineReader does) — a slow-loris producer dripping one byte per
//     write costs memory, never a stalled thread;
//   * per-connection output buffer holds replies a congested peer has
//     not drained; writes go through util/socket write_some, so EAGAIN
//     parks the connection on EPOLLOUT instead of busy-spinning, and a
//     consumer that stops reading past the buffer cap is disconnected;
//   * half-close (read EOF with a final unterminated line) delivers the
//     last line, flushes pending replies, then closes;
//   * lines above max_line_bytes poison the connection (an unbounded
//     line is a protocol violation or an attack, same contract as
//     LineReader).
//
// The loop owns no scoring state: the on_line handler decides what a
// line means (misusedet_serve calls ScoringServer::submit_sync — the
// same call the thread-per-connection path makes, so scored output is
// byte-identical per connection; misusedet_router forwards the line to
// a cluster node). Cross-thread writers (the router's upstream reply
// readers) inject output via post(), which wakes the loop through an
// eventfd. See DESIGN.md "Cluster serving".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/socket.hpp"

namespace misuse::serve {

struct EpollConfig {
  std::uint16_t port = 0;  // 0 binds an ephemeral port (read back via port())
  std::string host = "0.0.0.0";
  /// Input framing cap, same default as LineReader: a connection whose
  /// unterminated line exceeds this is closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Output backlog cap per connection: a peer that stops reading while
  /// this many reply bytes are pending is disconnected (slow-consumer
  /// protection; the alternative is unbounded server memory).
  std::size_t max_output_bytes = 8u << 20;
  /// on_tick cadence; also bounds stop-flag latency.
  double tick_seconds = 0.5;
};

struct EpollHandlers {
  /// One complete line (terminator stripped). Append '\n'-terminated
  /// reply lines to `replies`; they return on the same connection in
  /// call order. Required.
  std::function<void(std::uint64_t conn, std::string_view line, std::string& replies)> on_line;
  /// Periodic callback on the loop thread (TTL sweeps, checkpoints,
  /// registry reloads). Optional.
  std::function<void()> on_tick;
  /// Connection retired (peer EOF drained, error, overflow, or
  /// shutdown). Fired exactly once per connection. Optional.
  std::function<void(std::uint64_t conn)> on_close;
};

class EpollLoop {
 public:
  /// Binds the listener and creates the epoll set; throws
  /// std::runtime_error when either fails.
  EpollLoop(EpollConfig config, EpollHandlers handlers);
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Serves until request_stop(). On stop: pending replies get one
  /// best-effort flush, every connection is closed (on_close fires),
  /// and the listener is released. Call from one thread only.
  void run();

  /// Thread-safe: wakes the loop and makes run() return.
  void request_stop();

  /// Thread-safe output injection: queues `data` (already framed — the
  /// caller terminates its lines) for `conn` and wakes the loop. False
  /// when the connection is unknown or already retired; best-effort —
  /// the connection can still die before the bytes flush.
  bool post(std::uint64_t conn, std::string data);

  /// Connections currently open (loop thread's view; racy elsewhere).
  std::size_t open_connections() const { return conns_.size(); }

  /// Lifetime counters for tests and /statusz-style introspection.
  std::uint64_t accepted_total() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t overflowed_total() const { return overflowed_.load(std::memory_order_relaxed); }

 private:
  struct Conn {
    int fd = -1;
    std::string in;          // unconsumed partial frame
    std::string out;         // unflushed replies
    std::size_t out_off = 0; // flushed prefix of `out`
    bool want_write = false; // EPOLLOUT armed
    bool peer_eof = false;   // half-closed: no more input, flush then close
  };

  void accept_ready();
  void conn_readable(std::uint64_t id, Conn& conn);
  /// Flushes conn.out; arms/disarms EPOLLOUT. Returns false when the
  /// connection died (already retired).
  bool flush_conn(std::uint64_t id, Conn& conn);
  void retire(std::uint64_t id, Conn& conn);
  void drain_posted();
  void update_interest(std::uint64_t id, Conn& conn, bool want_write);
  /// Splits complete lines out of conn.in and runs on_line for each.
  /// Returns false when the connection was poisoned (line cap).
  bool consume_lines(std::uint64_t id, Conn& conn);

  EpollConfig config_;
  EpollHandlers handlers_;
  TcpListener listener_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: request_stop() and post() wakeups
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> overflowed_{0};
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;  // loop thread only

  std::mutex posted_mutex_;
  std::vector<std::pair<std::uint64_t, std::string>> posted_;
  /// Connection ids currently alive, mirrored under posted_mutex_ so
  /// post() can refuse unknown/retired targets from any thread.
  std::unordered_set<std::uint64_t> live_ids_;
};

}  // namespace misuse::serve

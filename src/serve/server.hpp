// ScoringServer: the streaming core of misusedet_serve. Consumes an
// interleaved event stream from many users, shards sessions over a set
// of SessionShards (stable FNV-1a of user_id+session_id), and scores
// each shard's backlog on the global thread pool.
//
// Architecture (see DESIGN.md "Serving"):
//   * enqueue(): parse-validated events land in a *bounded* per-shard
//     FIFO. When a queue is full the configured backpressure policy
//     applies — kBlock reports kQueueFull so the producer drains (pump)
//     before retrying, kDropOldest discards the queue head and admits
//     the new event (freshness over completeness).
//   * pump(): drains every shard concurrently via global_pool(). Shards
//     never share sessions, each session's events stay in one FIFO, and
//     OnlineMonitor is deterministic, so every per-session score stream
//     is bit-identical to the offline monitor regardless of shard count
//     or thread count. Outputs are merged by input sequence number, so
//     the emitted NDJSON order equals arrival order.
//   * sweep(): retires idle sessions by *event time* TTL.
//   * shutdown(): graceful drain — pumps the backlog, then emits an
//     end-of-session report for every open session.
//   * submit_sync(): latency-mode entry (TCP connections) that scores
//     under the shard lock immediately, bypassing the batch queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/detector.hpp"
#include "core/drift.hpp"
#include "serve/session_table.hpp"
#include "serve/shadow.hpp"
#include "util/metrics.hpp"

namespace misuse::serve {

enum class BackpressurePolicy {
  kBlock,      // producer must pump before the event is admitted
  kDropOldest, // discard the queue head to admit the new event
};

struct ServeConfig {
  std::size_t shards = 4;
  std::size_t queue_capacity = 1024;  // events per shard
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  double idle_ttl_seconds = 900.0;
  std::size_t max_sessions = 4096;  // across all shards
  bool emit_steps = true;
  core::MonitorConfig monitor;

  // -- Crash safety (serve/wal.hpp) ----------------------------------------
  /// Directory for per-shard WALs + snapshots; empty disables durability.
  std::string wal_dir;
  /// fsync each shard WAL every N appends (1 = every append). Records
  /// are handed to the OS per batch regardless (group commit), so a
  /// process crash loses nothing; fsync only narrows the *machine*-crash
  /// window, and is priced accordingly.
  std::size_t wal_sync_every = 1024;
  /// Checkpoint (snapshot + WAL truncate) every N applied events;
  /// 0 = only at shutdown.
  std::size_t snapshot_every = 4096;
  /// Arm resume-replay dedup after recovery: producers that resend the
  /// stream from origin have already-applied events silently skipped.
  bool resume_replay = false;

  // -- Drift monitoring (core/drift.hpp) -----------------------------------
  /// Watch live behavior drift against the training distribution (the
  /// reference is recovered from the model archive's Markov fallbacks).
  /// Finished sessions feed a DriftMonitor and the current JS divergence
  /// lands in the serve.drift_micronats gauge. Implies track_history.
  bool drift = false;
  core::DriftConfig drift_config;
};

class ScoringServer {
 public:
  /// Serves a caller-owned detector (no registry, no version stamps) —
  /// the embedding/test path. The detector must outlive the server.
  ScoringServer(const core::MisuseDetector& detector, const ServeConfig& config);

  /// Serves a registry-managed model: reports are stamped with
  /// `model.version` and the model can be hot-swapped.
  ScoringServer(ModelHandle model, const ServeConfig& config);

  enum class Enqueue {
    kAccepted,
    kRejected,      // invalid action — an "error" record was appended
    kQueueFull,     // kBlock policy: pump() and retry
    kDroppedOldest, // admitted after discarding the queue head
  };

  /// Validates the action against the detector vocabulary and queues the
  /// event on its shard. Error records for rejected events are appended
  /// to `out` immediately.
  Enqueue enqueue(const Event& event, std::vector<OutputRecord>& out);

  /// Drains all shard queues (concurrently when the pool has workers)
  /// and appends the resulting records to `out` in input order.
  void pump(std::vector<OutputRecord>& out);

  /// TTL sweep at the stream's current event time (or an explicit time).
  void sweep(std::vector<OutputRecord>& out) { sweep_at(event_clock(), out); }
  void sweep_at(double now, std::vector<OutputRecord>& out);

  /// Graceful shutdown: pump the backlog, then emit a report for every
  /// open session. The server stays usable afterwards (tables empty).
  /// With a WAL dir, ends with an empty checkpoint so a later restart
  /// recovers nothing.
  void shutdown(std::vector<OutputRecord>& out);

  // -- Crash recovery (serve/wal.hpp; DESIGN.md "Fault tolerance") ---------

  /// Rebuilds state left by a crashed predecessor: loads every shard
  /// snapshot the old layout wrote, replays WAL records past each
  /// snapshot's watermark globally by sequence number (re-emitting their
  /// records with the *original* seqs, so downstream consumers dedup by
  /// seq), and checkpoints the recovered state under the current layout.
  /// Works across different --shards values. Returns the number of WAL
  /// events replayed. No-op without a WAL dir.
  std::size_t recover(std::vector<OutputRecord>& out);

  /// Pumps, snapshots every shard, and truncates the WALs the snapshots
  /// now cover. A crash at any point is safe: snapshots replace
  /// atomically, and the WAL is only truncated after its snapshot landed.
  void checkpoint(std::vector<OutputRecord>& out);

  /// checkpoint() once at least `snapshot_every` events were applied
  /// since the last one. Returns true when a checkpoint ran.
  bool maybe_checkpoint(std::vector<OutputRecord>& out);

  bool wal_enabled() const { return !config_.wal_dir.empty(); }

  /// Scores one event immediately under its shard's lock (TCP path).
  /// Returns false (with an error record) when the action is invalid.
  bool submit_sync(const Event& event, std::vector<OutputRecord>& out);

  std::size_t shard_of(const Event& event) const {
    return session_shard_hash(session_key(event)) % shards_.size();
  }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t active_sessions() const;
  std::size_t queued_events() const;
  /// Largest event timestamp admitted so far.
  double event_clock() const;

  // -- Runtime introspection (serve/admin.hpp; DESIGN.md "Operations plane")

  /// Point-in-time view of one shard, taken under its lock.
  struct ShardStatus {
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    std::int64_t queue_high_water = 0;  // since process start
    std::size_t sessions = 0;
    std::size_t max_sessions = 0;  // per-shard share of the global cap
    std::uint64_t last_applied_seq = 0;
  };
  std::vector<ShardStatus> shard_status() const;

  /// Next sequence number to be assigned (1 when nothing was admitted).
  std::uint64_t next_seq() const { return seq_.load(std::memory_order_relaxed); }
  /// Events applied since the last checkpoint (WAL replay lag bound).
  std::uint64_t events_since_checkpoint() const {
    return events_since_checkpoint_.load(std::memory_order_relaxed);
  }
  /// False when any shard WAL writer has failed (durability is degraded);
  /// true when the WAL is disabled or healthy.
  bool wal_ok() const;

  /// Attaches the head sampler for live trace export (--trace-sample):
  /// enqueue/step/report events of sampled sessions land in the global
  /// trace-event ring. nullptr detaches. Set before serving.
  void set_trace_sampler(std::shared_ptr<SessionTraceSampler> sampler);

  /// Observation hooks, forwarded to every shard. Set before serving;
  /// callbacks may fire concurrently from pool workers.
  void set_step_observer(const StepObserver& observer);
  void set_report_observer(const ReportObserver& observer);

  const ServeConfig& config() const { return config_; }

  // -- Model lifecycle (DESIGN.md "Model lifecycle") -----------------------

  /// Zero-downtime hot-swap: drains the queued backlog to a barrier
  /// under the old model, then atomically repoints every shard (and the
  /// enqueue path) at `next`. Open sessions pin the model they started
  /// under, so when the vocabularies are compatible (equal fingerprints)
  /// they simply continue — each session's whole score stream still
  /// comes from exactly one version. When the vocabularies differ, every
  /// open session is finished at the barrier with a "model_swap" report
  /// (emitted, never dropped) and traffic reopens under `next`. No event
  /// is lost either way.
  struct SwapStats {
    double drain_seconds = 0.0;   // backlog pump before the barrier
    double pause_seconds = 0.0;   // all-shards-locked window
    std::size_t rolled_sessions = 0;  // sessions finished at the barrier
  };
  SwapStats swap_model(ModelHandle next, std::vector<OutputRecord>& out);

  /// The handle serving *new* sessions right now.
  ModelHandle current_model() const;

  /// Attaches a shadow/canary scorer mirroring `plan.fraction` of each
  /// shard's sessions onto the candidate model (serve.shadow.* metrics).
  /// Replaces any previous plan; clear_shadow() detaches.
  void set_shadow(const ShadowPlan& plan);
  void clear_shadow();

 private:
  struct Pending {
    Event event;
    int action = 0;
    /// Keeps the model that resolved `action` alive (and identifiable)
    /// until the event is processed, across any number of swaps.
    std::shared_ptr<const core::MisuseDetector> resolved_under;
    std::uint64_t seq = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Pending> queue;
    std::unique_ptr<SessionShard> table;
  };

  /// Emits collected eviction/shutdown reports in a globally sorted
  /// record order so output is independent of the shard count.
  void append_reports(std::vector<OutputRecord>&& reports, std::vector<OutputRecord>& out);
  void advance_clock(double t);
  void record_queue_depth() const;
  void init_drift();
  void observe_drift(const std::vector<int>& actions);

  /// Snapshots every shard + truncates covered WALs (no pump; callers
  /// hold no shard locks).
  void write_checkpoint();

  /// The model resolving actions for *new* traffic; swapped under
  /// model_mutex_ (readers take it shared — enqueue/submit_sync resolve
  /// against a stable handle without blocking each other).
  ModelHandle model_;
  mutable std::shared_mutex model_mutex_;
  ServeConfig config_;
  std::size_t shard_max_sessions_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// serve.shard.queue_depth.<k> gauges, updated under shard k's lock on
  /// every enqueue/drain so saturation is visible *before* the
  /// backpressure policy starts dropping or blocking.
  std::vector<Gauge*> shard_queue_gauges_;
  /// Events queued across all shards, maintained incrementally so the
  /// serve.queue_depth gauge costs one atomic instead of an all-shard
  /// lock sweep per enqueue.
  std::atomic<std::int64_t> queued_total_{0};
  std::shared_ptr<SessionTraceSampler> tracer_;
  std::vector<std::unique_ptr<WalWriter>> wals_;
  /// Sequence numbers start at 1: snapshot watermarks mean "replay
  /// strictly after", so 0 must stay the "nothing applied" sentinel.
  std::atomic<std::uint64_t> seq_{1};
  std::atomic<double> clock_{0.0};
  std::atomic<std::uint64_t> events_since_checkpoint_{0};

  /// Drift sink: shards report finished sessions' action histories here
  /// (possibly from pool workers, hence the mutex).
  std::mutex drift_mutex_;
  std::unique_ptr<core::DriftMonitor> drift_;
};

}  // namespace misuse::serve

// ScoringServer: the streaming core of misusedet_serve. Consumes an
// interleaved event stream from many users, shards sessions over a set
// of SessionShards (stable FNV-1a of user_id+session_id), and scores
// each shard's backlog on the global thread pool.
//
// Architecture (see DESIGN.md "Serving"):
//   * enqueue(): parse-validated events land in a *bounded* per-shard
//     FIFO. When a queue is full the configured backpressure policy
//     applies — kBlock reports kQueueFull so the producer drains (pump)
//     before retrying, kDropOldest discards the queue head and admits
//     the new event (freshness over completeness).
//   * pump(): drains every shard concurrently via global_pool(). Shards
//     never share sessions, each session's events stay in one FIFO, and
//     OnlineMonitor is deterministic, so every per-session score stream
//     is bit-identical to the offline monitor regardless of shard count
//     or thread count. Outputs are merged by input sequence number, so
//     the emitted NDJSON order equals arrival order.
//   * sweep(): retires idle sessions by *event time* TTL.
//   * shutdown(): graceful drain — pumps the backlog, then emits an
//     end-of-session report for every open session.
//   * submit_sync(): latency-mode entry (TCP connections) that scores
//     under the shard lock immediately, bypassing the batch queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/detector.hpp"
#include "serve/session_table.hpp"

namespace misuse::serve {

enum class BackpressurePolicy {
  kBlock,      // producer must pump before the event is admitted
  kDropOldest, // discard the queue head to admit the new event
};

struct ServeConfig {
  std::size_t shards = 4;
  std::size_t queue_capacity = 1024;  // events per shard
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  double idle_ttl_seconds = 900.0;
  std::size_t max_sessions = 4096;  // across all shards
  bool emit_steps = true;
  core::MonitorConfig monitor;

  // -- Crash safety (serve/wal.hpp) ----------------------------------------
  /// Directory for per-shard WALs + snapshots; empty disables durability.
  std::string wal_dir;
  /// fsync each shard WAL every N appends (1 = every append). Records
  /// are handed to the OS per batch regardless (group commit), so a
  /// process crash loses nothing; fsync only narrows the *machine*-crash
  /// window, and is priced accordingly.
  std::size_t wal_sync_every = 1024;
  /// Checkpoint (snapshot + WAL truncate) every N applied events;
  /// 0 = only at shutdown.
  std::size_t snapshot_every = 4096;
  /// Arm resume-replay dedup after recovery: producers that resend the
  /// stream from origin have already-applied events silently skipped.
  bool resume_replay = false;
};

class ScoringServer {
 public:
  ScoringServer(const core::MisuseDetector& detector, const ServeConfig& config);

  enum class Enqueue {
    kAccepted,
    kRejected,      // invalid action — an "error" record was appended
    kQueueFull,     // kBlock policy: pump() and retry
    kDroppedOldest, // admitted after discarding the queue head
  };

  /// Validates the action against the detector vocabulary and queues the
  /// event on its shard. Error records for rejected events are appended
  /// to `out` immediately.
  Enqueue enqueue(const Event& event, std::vector<OutputRecord>& out);

  /// Drains all shard queues (concurrently when the pool has workers)
  /// and appends the resulting records to `out` in input order.
  void pump(std::vector<OutputRecord>& out);

  /// TTL sweep at the stream's current event time (or an explicit time).
  void sweep(std::vector<OutputRecord>& out) { sweep_at(event_clock(), out); }
  void sweep_at(double now, std::vector<OutputRecord>& out);

  /// Graceful shutdown: pump the backlog, then emit a report for every
  /// open session. The server stays usable afterwards (tables empty).
  /// With a WAL dir, ends with an empty checkpoint so a later restart
  /// recovers nothing.
  void shutdown(std::vector<OutputRecord>& out);

  // -- Crash recovery (serve/wal.hpp; DESIGN.md "Fault tolerance") ---------

  /// Rebuilds state left by a crashed predecessor: loads every shard
  /// snapshot the old layout wrote, replays WAL records past each
  /// snapshot's watermark globally by sequence number (re-emitting their
  /// records with the *original* seqs, so downstream consumers dedup by
  /// seq), and checkpoints the recovered state under the current layout.
  /// Works across different --shards values. Returns the number of WAL
  /// events replayed. No-op without a WAL dir.
  std::size_t recover(std::vector<OutputRecord>& out);

  /// Pumps, snapshots every shard, and truncates the WALs the snapshots
  /// now cover. A crash at any point is safe: snapshots replace
  /// atomically, and the WAL is only truncated after its snapshot landed.
  void checkpoint(std::vector<OutputRecord>& out);

  /// checkpoint() once at least `snapshot_every` events were applied
  /// since the last one. Returns true when a checkpoint ran.
  bool maybe_checkpoint(std::vector<OutputRecord>& out);

  bool wal_enabled() const { return !config_.wal_dir.empty(); }

  /// Scores one event immediately under its shard's lock (TCP path).
  /// Returns false (with an error record) when the action is invalid.
  bool submit_sync(const Event& event, std::vector<OutputRecord>& out);

  std::size_t shard_of(const Event& event) const {
    return session_shard_hash(session_key(event)) % shards_.size();
  }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t active_sessions() const;
  std::size_t queued_events() const;
  /// Largest event timestamp admitted so far.
  double event_clock() const;

  /// Observation hooks, forwarded to every shard. Set before serving;
  /// callbacks may fire concurrently from pool workers.
  void set_step_observer(const StepObserver& observer);
  void set_report_observer(const ReportObserver& observer);

  const ServeConfig& config() const { return config_; }

 private:
  struct Pending {
    Event event;
    int action = 0;
    std::uint64_t seq = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::deque<Pending> queue;
    std::unique_ptr<SessionShard> table;
  };

  /// Resolves the event's action to a vocabulary id (name lookup first,
  /// then decimal id); -1 when unknown.
  int resolve_action(const Event& event) const;
  /// Emits collected eviction/shutdown reports in a globally sorted
  /// record order so output is independent of the shard count.
  void append_reports(std::vector<OutputRecord>&& reports, std::vector<OutputRecord>& out);
  void advance_clock(double t);
  void record_queue_depth() const;

  /// Snapshots every shard + truncates covered WALs (no pump; callers
  /// hold no shard locks).
  void write_checkpoint();

  const core::MisuseDetector& detector_;
  ServeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<WalWriter>> wals_;
  /// Sequence numbers start at 1: snapshot watermarks mean "replay
  /// strictly after", so 0 must stay the "nothing applied" sentinel.
  std::atomic<std::uint64_t> seq_{1};
  std::atomic<double> clock_{0.0};
  std::atomic<std::uint64_t> events_since_checkpoint_{0};
};

}  // namespace misuse::serve

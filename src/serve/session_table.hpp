// One shard of the streaming server's session table. A shard owns the
// OnlineMonitor state of every session hashed to it and is only ever
// driven by one thread at a time (the server wraps each shard in a
// mutex), so the shard itself is single-threaded and deterministic:
// events are applied in arrival order, and the per-session score stream
// is bit-identical to replaying the same actions through a standalone
// OnlineMonitor (the offline path in core/monitor.hpp).
//
// Bounds: `max_sessions` caps the map — opening a session beyond the cap
// evicts the least-recently-seen entry first (emitting its report), and
// the TTL sweep retires sessions idle longer than `idle_ttl_seconds` of
// *event time* (the timestamps in the stream), so replays evict exactly
// like live traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/monitor.hpp"
#include "serve/event.hpp"
#include "serve/trace_sampler.hpp"
#include "serve/wal.hpp"

namespace misuse::serve {

/// One rendered NDJSON output line tagged with the global input sequence
/// number of the event that produced it; the server merges shard outputs
/// by `seq`, which restores the input order deterministically.
struct OutputRecord {
  std::uint64_t seq = 0;
  std::string line;
};

/// A versioned, shared reference to a loaded detector. Every session
/// opened under a handle pins it, so a hot-swap never frees a model that
/// live sessions still score with — the old model is released when its
/// last session finishes.
struct ModelHandle {
  std::shared_ptr<const core::MisuseDetector> detector;
  std::string version;  // registry version ("v3"); empty = unversioned

  /// Wraps a caller-owned detector without taking ownership — the
  /// embedding/test path where no registry is involved. The detector
  /// must outlive every session opened under the handle.
  static ModelHandle borrowed(const core::MisuseDetector& detector) {
    return {std::shared_ptr<const core::MisuseDetector>(std::shared_ptr<void>(), &detector), {}};
  }
};

struct ShardConfig {
  core::MonitorConfig monitor;
  double idle_ttl_seconds = 900.0;
  std::size_t max_sessions = 4096;  // per shard
  bool emit_steps = true;           // emit "step" records (reports always emit)
  /// Record each session's raw applied action history (needed by WAL
  /// snapshots, resume-replay dedup, and the drift monitor).
  bool track_history = false;
};

/// Structured observation hooks, for tests and in-process embedders that
/// want StepResults without reparsing JSON. Called while the owning
/// shard is being driven — possibly from a pool worker — so the callback
/// must be thread-safe across shards.
using StepObserver =
    std::function<void(const Event&, const core::OnlineMonitor::StepResult&)>;
using ReportObserver = std::function<void(std::string_view user_id, std::string_view session_id,
                                          ReportReason, const core::SessionMonitorReport&)>;
/// Fed every finished session's applied action history (requires
/// track_history); the server's drift monitor hangs off this.
using HistoryObserver = std::function<void(const std::vector<int>& actions)>;

class ShadowScorer;

class SessionShard {
 public:
  SessionShard(ModelHandle model, const ShardConfig& config)
      : model_(std::move(model)), config_(config) {}

  /// Scores one event and appends the step record. Opens the session on
  /// first sight (pinning the shard's current model into it), evicting
  /// the least-recently-seen session first when the shard is full.
  /// `action` was resolved under `resolved_under`'s vocabulary; when the
  /// session is pinned to a *different* model (an event raced a
  /// hot-swap), the raw action string is re-resolved under the session's
  /// own vocabulary, so a stale id is never fed to the wrong model.
  void process(const Event& event, int action, const core::MisuseDetector* resolved_under,
               std::uint64_t seq, std::vector<OutputRecord>& out);

  /// One queued event, pre-resolved by the server's parse stage. The
  /// pointed-to Event must stay alive for the process_batch call.
  struct PendingEvent {
    const Event* event = nullptr;
    int action = -1;
    const core::MisuseDetector* resolved_under = nullptr;
    std::uint64_t seq = 0;
  };

  /// Applies a batch of events in arrival order, bit-identical to calling
  /// process() per event — but the model forwards of distinct sessions
  /// are fused into per-detector batched steps (the inference engine's
  /// hot path). Consecutive events of the *same* session still advance
  /// strictly in sequence: a session hit flushes the pending batch first.
  void process_batch(std::span<const PendingEvent> events, std::vector<OutputRecord>& out);

  /// Retires sessions idle past the TTL at event time `now`; reports are
  /// emitted in key order (deterministic across runs and platforms).
  void sweep(double now, std::uint64_t seq, std::vector<OutputRecord>& out);

  /// Drain: emits a report for every open session (in key order) and
  /// empties the shard. Graceful shutdown by default; a vocab-changing
  /// hot-swap drains with ReportReason::kModelSwap.
  void finish_all(std::uint64_t seq, std::vector<OutputRecord>& out,
                  ReportReason reason = ReportReason::kShutdown);

  std::size_t active_sessions() const { return sessions_.size(); }

  // -- Model lifecycle (DESIGN.md "Model lifecycle") -----------------------

  /// Points *new* sessions at `model`. Open sessions keep the model they
  /// pinned at open — a session's whole score stream comes from exactly
  /// one model version (the stamping invariant).
  void set_model(ModelHandle model) { model_ = std::move(model); }
  const ModelHandle& model() const { return model_; }

  /// Attaches (or detaches, with nullptr) the shard's shadow scorer; it
  /// is driven after each active-model step and on session finish, and
  /// only ever writes metrics — never output records.
  void set_shadow(std::shared_ptr<ShadowScorer> shadow) { shadow_ = std::move(shadow); }

  void set_step_observer(StepObserver observer) { step_observer_ = std::move(observer); }
  void set_report_observer(ReportObserver observer) { report_observer_ = std::move(observer); }
  void set_history_observer(HistoryObserver observer) {
    history_observer_ = std::move(observer);
  }

  /// Attaches (or detaches, with nullptr) the head sampler for live
  /// trace export: steps and reports of sampled sessions are recorded
  /// into the global trace-event ring (util/trace.hpp). Tracing never
  /// touches output records, so scored output stays byte-identical.
  void set_trace_sampler(std::shared_ptr<SessionTraceSampler> sampler) {
    tracer_ = std::move(sampler);
  }

  // -- Crash safety (serve/wal.hpp) ----------------------------------------

  /// Attaches (or detaches, with nullptr) the shard's write-ahead log;
  /// process() then logs every event before applying it (buffered — the
  /// owning server flushes the log before emitting the batch's verdicts).
  void set_wal(WalWriter* wal) { wal_ = wal; }

  /// Largest input sequence number applied to this shard so far — the
  /// watermark a snapshot taken now covers.
  std::uint64_t last_applied_seq() const { return last_applied_seq_; }

  double clock() const { return clock_; }
  void advance_clock_to(double t) { clock_ = std::max(clock_, t); }

  /// Key-ordered snapshot of every open session (requires track_history).
  std::vector<SessionSnapshot> snapshot_sessions() const;

  /// Reinstates a snapshotted session by silently re-feeding its action
  /// history through a fresh monitor — no output records, no observers,
  /// no WAL appends; OnlineMonitor determinism makes the rebuilt state
  /// identical to the pre-crash one.
  void restore_session(const SessionSnapshot& snapshot);

  /// Arms resume-replay dedup: each open session will silently consume
  /// incoming events that match its already-applied action prefix (for
  /// producers that resend the stream from origin after a crash). A
  /// mismatching action disarms the session and scoring resumes normally.
  void arm_replay_skip();

 private:
  struct Entry {
    std::string user_id;
    std::string session_id;
    /// The model this session opened under; pinned for its whole life so
    /// every step (and the report stamp) comes from one version.
    ModelHandle model;
    std::unique_ptr<core::OnlineMonitor> monitor;
    core::SessionAccumulator acc;
    double last_seen = 0.0;
    /// Applied actions, in order (only when config_.track_history).
    std::vector<int> actions;
    /// Resume-replay dedup: actions[0..replay_pos) already consumed.
    std::vector<int> replay_skip;
    std::size_t replay_pos = 0;
    /// True while a step for this session sits in process_batch's staging
    /// area (its monitor state is about to advance).
    bool staged = false;
  };

  void finish_entry(const Entry& entry, ReportReason reason, std::uint64_t seq,
                    std::vector<OutputRecord>& out);
  void evict_lru(std::uint64_t seq, std::vector<OutputRecord>& out);

  /// Current model for *new* sessions (open ones keep their pin).
  ModelHandle model_;
  ShardConfig config_;
  std::unordered_map<std::string, Entry> sessions_;
  /// Largest event timestamp seen; stamps events that carry none, so TTL
  /// still advances on timestamp-less streams once any event has one.
  double clock_ = 0.0;
  StepObserver step_observer_;
  ReportObserver report_observer_;
  HistoryObserver history_observer_;
  std::shared_ptr<ShadowScorer> shadow_;
  std::shared_ptr<SessionTraceSampler> tracer_;
  WalWriter* wal_ = nullptr;
  std::uint64_t last_applied_seq_ = 0;
};

}  // namespace misuse::serve

#include "serve/session_table.hpp"

#include <algorithm>
#include <sstream>

#include "serve/metrics.hpp"
#include "serve/shadow.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace misuse::serve {

namespace {

// Pre-rendered flat-JSON args for sampled trace events (util/trace.hpp
// TraceEvent::args — the inner object body, without braces).
std::string strip_braces(std::string s) { return s.substr(1, s.size() - 2); }

std::string step_trace_args(const Event& event, const core::OnlineMonitor::StepResult& step) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.member("action", event.action);
  json.member("step", step.step);
  json.member("cluster", step.cluster_voted);
  json.member("alarm", step.alarm);
  if (step.likelihood_voted) json.member("likelihood", *step.likelihood_voted);
  json.end_object();
  return strip_braces(os.str());
}

std::string report_trace_args(ReportReason reason, const core::SessionMonitorReport& report) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.member("reason", report_reason_name(reason));
  json.member("steps", report.steps);
  json.member("alarms", report.alarms);
  json.end_object();
  return strip_braces(os.str());
}

}  // namespace

void SessionShard::process(const Event& event, int action,
                           const core::MisuseDetector* resolved_under, std::uint64_t seq,
                           std::vector<OutputRecord>& out) {
  const PendingEvent pending{&event, action, resolved_under, seq};
  process_batch(std::span<const PendingEvent>(&pending, 1), out);
}

void SessionShard::process_batch(std::span<const PendingEvent> events,
                                 std::vector<OutputRecord>& out) {
  const bool record = metrics_enabled();
  Timer timer;
  std::size_t scored = 0;

  // Staged steps: bookkeeping (clock, last_seen, WAL, watermark) already
  // applied in arrival order; the monitor advance is deferred so distinct
  // sessions' forwards fuse into one batched step per pinned detector.
  // Entry pointers are stable (node-based map) and no staged entry is
  // ever evicted (flush runs before evict_lru).
  struct Staged {
    const Event* event;
    Entry* entry;
    int action;
    std::uint64_t seq;
  };
  std::vector<Staged> staged;
  staged.reserve(events.size());

  std::vector<const core::MisuseDetector*> batch_models;
  std::vector<core::OnlineMonitor*> batch_monitors;
  std::vector<int> batch_actions;
  std::vector<std::size_t> batch_index;
  std::vector<core::OnlineMonitor::StepResult> results;

  const auto flush = [&] {
    if (staged.empty()) return;
    const bool tracing = tracer_ != nullptr && trace_events().enabled();
    const std::uint64_t flush_start = tracing ? trace_now_nanos() : 0;
    results.clear();
    results.resize(staged.size());
    // One fused observe_batch per distinct pinned detector (almost always
    // exactly one; more only mid-hot-swap), in first-appearance order.
    batch_models.clear();
    for (const Staged& s : staged) {
      const auto* detector = s.entry->model.detector.get();
      if (std::find(batch_models.begin(), batch_models.end(), detector) == batch_models.end()) {
        batch_models.push_back(detector);
      }
    }
    std::vector<core::OnlineMonitor::StepResult> group_results;
    for (const auto* detector : batch_models) {
      batch_monitors.clear();
      batch_actions.clear();
      batch_index.clear();
      for (std::size_t i = 0; i < staged.size(); ++i) {
        if (staged[i].entry->model.detector.get() != detector) continue;
        batch_monitors.push_back(staged[i].entry->monitor.get());
        batch_actions.push_back(staged[i].action);
        batch_index.push_back(i);
      }
      group_results.assign(batch_index.size(), {});
      core::OnlineMonitor::observe_batch(*detector, batch_monitors, batch_actions, group_results);
      for (std::size_t j = 0; j < batch_index.size(); ++j) {
        results[batch_index[j]] = std::move(group_results[j]);
      }
    }
    // Sampled tracing: the fused batch is one timed unit, so each traced
    // step gets an equal slice of the flush window — good enough to see
    // the lifecycle and ordering, which is what the export is for.
    const std::uint64_t flush_share =
        tracing ? (trace_now_nanos() - flush_start) / staged.size() : 0;
    // Post-processing replays arrival order, so records, observers, and
    // the shadow scorer see exactly the per-event sequence.
    for (std::size_t i = 0; i < staged.size(); ++i) {
      Entry& entry = *staged[i].entry;
      const Event& event = *staged[i].event;
      const core::OnlineMonitor::StepResult& step = results[i];
      if (tracing) {
        const std::string key = session_key(event);
        if (tracer_->sampled(key)) {
          trace_events().record({"monitor.step", key, flush_start + i * flush_share, flush_share,
                                 step_trace_args(event, step)});
        }
      }
      if (config_.track_history) entry.actions.push_back(staged[i].action);
      entry.acc.add(step);
      if (config_.emit_steps) out.push_back({staged[i].seq, render_step_record(event, step)});
      if (step_observer_) step_observer_(event, step);
      if (shadow_) shadow_->observe(event, step);
      entry.staged = false;
      if (record) {
        ServeMetrics& sm = serve_metrics();
        sm.events.inc();
        sm.steps.inc();
        if (step.alarm) sm.alarms.inc();
      }
    }
    scored += staged.size();
    staged.clear();
  };

  for (const PendingEvent& pending : events) {
    const Event& event = *pending.event;
    int action = pending.action;
    const std::string key = session_key(event);
    auto it = sessions_.find(key);
    // A session's actions are always interpreted under the model it
    // pinned at open. When the id was resolved under a different model
    // (the event raced a hot-swap), re-resolve the raw action string —
    // for vocab-compatible swaps this yields the same id; for
    // incompatible ones it prevents feeding a foreign id to the pinned
    // model.
    const core::MisuseDetector* pinned =
        it != sessions_.end() ? it->second.model.detector.get() : model_.detector.get();
    if (pinned != pending.resolved_under) {
      action = resolve_action_id(pinned->vocab(), event.action);
      if (action < 0) {
        serve_metrics().parse_errors.inc();
        out.push_back({pending.seq, render_error_record("unknown action", event.action)});
        continue;
      }
    }
    if (it != sessions_.end() && it->second.replay_pos < it->second.replay_skip.size()) {
      // Resume-replay dedup: the producer is resending the stream from
      // origin after a restart; events matching the session's already-
      // applied action prefix are consumed silently (no WAL append, no
      // scoring, no output) so the rebuilt state is not double-fed.
      // (A session with an armed skip list has no staged step: scoring
      // any event first clears the list.)
      Entry& entry = it->second;
      if (action == entry.replay_skip[entry.replay_pos]) {
        ++entry.replay_pos;
        if (event.has_timestamp) clock_ = std::max(clock_, event.timestamp);
        entry.last_seen = event.has_timestamp ? event.timestamp : clock_;
        serve_metrics().replay_skipped.inc();
        continue;
      }
      // The stream diverged from history — stop skipping, score normally.
      entry.replay_skip.clear();
      entry.replay_pos = 0;
    }
    if (it == sessions_.end()) {
      if (sessions_.size() >= config_.max_sessions) {
        // The LRU victim may have a staged step — settle it before the
        // eviction report, exactly as the one-by-one path would.
        flush();
        evict_lru(pending.seq, out);
      }
      Entry entry;
      entry.user_id = event.user_id;
      entry.session_id = event.session_id;
      entry.model = model_;
      entry.monitor =
          std::make_unique<core::OnlineMonitor>(*entry.model.detector, config_.monitor);
      it = sessions_.emplace(key, std::move(entry)).first;
      ServeMetrics& sm = serve_metrics();
      sm.sessions_opened.inc();
      sm.sessions_active.add(1);
    } else if (it->second.staged) {
      // Second action of one session inside the batch: its first step
      // must advance the monitor before this one stages.
      flush();
    }
    Entry& entry = it->second;
    if (event.has_timestamp) clock_ = std::max(clock_, event.timestamp);
    entry.last_seen = event.has_timestamp ? event.timestamp : clock_;

    // Log before apply (group commit: append() buffers the record; the
    // server flushes the batch to the OS before any of its verdicts
    // become externally visible, so every emitted verdict's event is
    // recoverable).
    if (wal_ != nullptr) wal_->append(encode_event_record(event, pending.seq));
    last_applied_seq_ = std::max(last_applied_seq_, pending.seq);

    entry.staged = true;
    staged.push_back({&event, &entry, action, pending.seq});
  }
  flush();

  if (record && scored > 0) {
    // The timer spans the whole batch; attribute an equal share to each
    // scored step so the histogram's count still equals the step count.
    ServeMetrics& sm = serve_metrics();
    const double share = timer.seconds() / static_cast<double>(scored);
    for (std::size_t i = 0; i < scored; ++i) sm.step_seconds.record(share);
  }
}

void SessionShard::finish_entry(const Entry& entry, ReportReason reason, std::uint64_t seq,
                                std::vector<OutputRecord>& out) {
  const core::SessionMonitorReport report = entry.acc.report();
  out.push_back({seq, render_report_record(entry.user_id, entry.session_id, reason, report,
                                           entry.model.version)});
  if (report_observer_) report_observer_(entry.user_id, entry.session_id, reason, report);
  if (tracer_ != nullptr && trace_events().enabled()) {
    const std::string key = session_key(entry.user_id, entry.session_id);
    if (tracer_->sampled(key)) {
      trace_events().record(
          {"session.report", key, trace_now_nanos(), 0, report_trace_args(reason, report)});
    }
  }
  if (history_observer_ && config_.track_history) history_observer_(entry.actions);
  if (shadow_) shadow_->finish(entry.user_id, entry.session_id);
  ServeMetrics& sm = serve_metrics();
  sm.sessions_finished.inc();
  sm.sessions_active.add(-1);
  if (reason == ReportReason::kIdleEviction || reason == ReportReason::kCapacityEviction) {
    sm.sessions_evicted.inc();
  }
}

void SessionShard::evict_lru(std::uint64_t seq, std::vector<OutputRecord>& out) {
  if (sessions_.empty()) return;
  // Oldest last_seen wins; ties break on the smaller key so the choice
  // does not depend on hash-map iteration order.
  auto victim = sessions_.begin();
  for (auto it = std::next(sessions_.begin()); it != sessions_.end(); ++it) {
    if (it->second.last_seen < victim->second.last_seen ||
        (it->second.last_seen == victim->second.last_seen && it->first < victim->first)) {
      victim = it;
    }
  }
  finish_entry(victim->second, ReportReason::kCapacityEviction, seq, out);
  sessions_.erase(victim);
}

void SessionShard::sweep(double now, std::uint64_t seq, std::vector<OutputRecord>& out) {
  last_applied_seq_ = std::max(last_applied_seq_, seq);
  std::vector<std::string> expired;
  for (const auto& [key, entry] : sessions_) {
    if (now - entry.last_seen > config_.idle_ttl_seconds) expired.push_back(key);
  }
  std::sort(expired.begin(), expired.end());
  for (const auto& key : expired) {
    const auto it = sessions_.find(key);
    finish_entry(it->second, ReportReason::kIdleEviction, seq, out);
    sessions_.erase(it);
  }
}

void SessionShard::finish_all(std::uint64_t seq, std::vector<OutputRecord>& out,
                              ReportReason reason) {
  std::vector<const std::string*> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, entry] : sessions_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) {
    finish_entry(sessions_.at(*key), reason, seq, out);
  }
  sessions_.clear();
}

std::vector<SessionSnapshot> SessionShard::snapshot_sessions() const {
  std::vector<const std::string*> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, entry] : sessions_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  std::vector<SessionSnapshot> out;
  out.reserve(keys.size());
  for (const std::string* key : keys) {
    const Entry& entry = sessions_.at(*key);
    SessionSnapshot snap;
    snap.user_id = entry.user_id;
    snap.session_id = entry.session_id;
    snap.actions = entry.actions;
    snap.last_seen = entry.last_seen;
    out.push_back(std::move(snap));
  }
  return out;
}

void SessionShard::restore_session(const SessionSnapshot& snapshot) {
  Entry entry;
  entry.user_id = snapshot.user_id;
  entry.session_id = snapshot.session_id;
  // Restored sessions re-open under the *current* model: snapshots store
  // action histories, not model pins, so after a crash the whole rebuilt
  // state is scored by the version the server booted with.
  entry.model = model_;
  entry.monitor = std::make_unique<core::OnlineMonitor>(*entry.model.detector, config_.monitor);
  for (const int action : snapshot.actions) entry.acc.add(entry.monitor->observe(action));
  if (config_.track_history) entry.actions = snapshot.actions;
  entry.last_seen = snapshot.last_seen;
  sessions_[session_key(snapshot.user_id, snapshot.session_id)] = std::move(entry);
  ServeMetrics& sm = serve_metrics();
  sm.recovered_sessions.inc();
  sm.sessions_active.add(1);
}

void SessionShard::arm_replay_skip() {
  for (auto& [key, entry] : sessions_) {
    entry.replay_skip = entry.actions;
    entry.replay_pos = 0;
  }
}

}  // namespace misuse::serve

#include "serve/server.hpp"

#include <algorithm>
#include <cctype>

#include "serve/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse::serve {

ScoringServer::ScoringServer(const core::MisuseDetector& detector, const ServeConfig& config)
    : detector_(detector), config_(config) {
  const std::size_t n = std::max<std::size_t>(1, config_.shards);
  config_.shards = n;
  ShardConfig shard_config;
  shard_config.monitor = config_.monitor;
  shard_config.idle_ttl_seconds = config_.idle_ttl_seconds;
  // Distribute the global session cap; every shard holds at least one.
  shard_config.max_sessions = std::max<std::size_t>(1, (config_.max_sessions + n - 1) / n);
  shard_config.emit_steps = config_.emit_steps;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->table = std::make_unique<SessionShard>(detector_, shard_config);
    shards_.push_back(std::move(shard));
  }
  (void)serve_metrics();  // register the panel eagerly
}

int ScoringServer::resolve_action(const Event& event) const {
  const ActionVocab& vocab = detector_.vocab();
  if (const auto id = vocab.find(event.action)) return *id;
  // Fall back to a decimal action id for producers that pre-encode.
  if (event.action.empty()) return -1;
  int value = 0;
  for (const char c : event.action) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return -1;
    if (value > static_cast<int>(vocab.size())) return -1;  // overflow guard
    value = value * 10 + (c - '0');
  }
  return value < static_cast<int>(vocab.size()) ? value : -1;
}

void ScoringServer::advance_clock(double t) {
  double seen = clock_.load(std::memory_order_relaxed);
  while (t > seen &&
         !clock_.compare_exchange_weak(seen, t, std::memory_order_relaxed)) {
  }
}

void ScoringServer::record_queue_depth() const {
  serve_metrics().queue_depth.set(static_cast<std::int64_t>(queued_events()));
}

ScoringServer::Enqueue ScoringServer::enqueue(const Event& event,
                                              std::vector<OutputRecord>& out) {
  const int action = resolve_action(event);
  if (action < 0) {
    serve_metrics().parse_errors.inc();
    out.push_back({seq_.fetch_add(1, std::memory_order_relaxed),
                   render_error_record("unknown action", event.action)});
    return Enqueue::kRejected;
  }
  Shard& shard = *shards_[shard_of(event)];
  Enqueue result = Enqueue::kAccepted;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.queue.size() >= config_.queue_capacity) {
      if (config_.backpressure == BackpressurePolicy::kBlock) return Enqueue::kQueueFull;
      shard.queue.pop_front();
      serve_metrics().dropped_events.inc();
      result = Enqueue::kDroppedOldest;
    }
    Pending pending;
    pending.event = event;
    pending.action = action;
    pending.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    shard.queue.push_back(std::move(pending));
  }
  if (event.has_timestamp) advance_clock(event.timestamp);
  record_queue_depth();
  return result;
}

void ScoringServer::pump(std::vector<OutputRecord>& out) {
  Span pump_span("serve.pump");
  std::vector<std::vector<OutputRecord>> shard_out(shards_.size());
  global_pool().parallel_for(0, shards_.size(), [&](std::size_t s) {
    Shard& shard = *shards_[s];
    std::deque<Pending> backlog;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      backlog.swap(shard.queue);
    }
    if (backlog.empty()) return;
    Span drain_span("serve.shard_drain");
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Pending& p : backlog) {
      shard.table->process(p.event, p.action, p.seq, shard_out[s]);
    }
  });
  std::size_t total = 0;
  for (const auto& records : shard_out) total += records.size();
  const std::size_t base = out.size();
  out.reserve(base + total);
  for (auto& records : shard_out) {
    for (auto& r : records) out.push_back(std::move(r));
  }
  // Unique seq tags restore the global arrival order across shards.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
            [](const OutputRecord& a, const OutputRecord& b) { return a.seq < b.seq; });
  record_queue_depth();
}

void ScoringServer::append_reports(std::vector<OutputRecord>&& reports,
                                   std::vector<OutputRecord>& out) {
  // Shard partitioning must not leak into the output stream: the same
  // sessions land on different shards at different --shards values, so
  // reports collected across shards are re-sorted into a global record
  // order (and re-tagged with emission-order seqs) before they are
  // emitted. A replayed trace then produces byte-identical output at any
  // shard count, matching the per-step determinism contract.
  std::sort(reports.begin(), reports.end(),
            [](const OutputRecord& a, const OutputRecord& b) { return a.line < b.line; });
  out.reserve(out.size() + reports.size());
  for (auto& r : reports) {
    r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    out.push_back(std::move(r));
  }
}

void ScoringServer::sweep_at(double now, std::vector<OutputRecord>& out) {
  // Serial in shard order: eviction reports are rare and cheap to render.
  std::vector<OutputRecord> reports;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->sweep(now, seq_.fetch_add(1, std::memory_order_relaxed), reports);
  }
  append_reports(std::move(reports), out);
}

void ScoringServer::shutdown(std::vector<OutputRecord>& out) {
  pump(out);
  std::vector<OutputRecord> reports;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->finish_all(seq_.fetch_add(1, std::memory_order_relaxed), reports);
  }
  append_reports(std::move(reports), out);
}

bool ScoringServer::submit_sync(const Event& event, std::vector<OutputRecord>& out) {
  const int action = resolve_action(event);
  if (action < 0) {
    serve_metrics().parse_errors.inc();
    out.push_back({seq_.fetch_add(1, std::memory_order_relaxed),
                   render_error_record("unknown action", event.action)});
    return false;
  }
  if (event.has_timestamp) advance_clock(event.timestamp);
  Shard& shard = *shards_[shard_of(event)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.table->process(event, action, seq_.fetch_add(1, std::memory_order_relaxed), out);
  return true;
}

std::size_t ScoringServer::active_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->table->active_sessions();
  }
  return total;
}

std::size_t ScoringServer::queued_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->queue.size();
  }
  return total;
}

double ScoringServer::event_clock() const { return clock_.load(std::memory_order_relaxed); }

void ScoringServer::set_step_observer(const StepObserver& observer) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_step_observer(observer);
  }
}

void ScoringServer::set_report_observer(const ReportObserver& observer) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_report_observer(observer);
  }
}

}  // namespace misuse::serve

#include "serve/server.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <filesystem>
#include <sstream>

#include "serve/metrics.hpp"
#include "util/json.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace misuse::serve {

namespace {
/// Digits of a registry version string ("v12" -> 12) for the
/// serve.model_version gauge; 0 when the version carries no number.
std::int64_t numeric_version(const std::string& version) {
  std::int64_t value = 0;
  bool any = false;
  for (const char c : version) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      value = value * 10 + (c - '0');
      any = true;
    }
  }
  return any ? value : 0;
}

std::string enqueue_trace_args(const Event& event, std::size_t shard, std::uint64_t seq) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.member("action", event.action);
  json.member("shard", shard);
  json.member("seq", seq);
  json.end_object();
  const std::string s = os.str();
  return s.substr(1, s.size() - 2);  // TraceEvent::args is the braceless body
}
}  // namespace

ScoringServer::ScoringServer(const core::MisuseDetector& detector, const ServeConfig& config)
    : ScoringServer(ModelHandle::borrowed(detector), config) {}

ScoringServer::ScoringServer(ModelHandle model, const ServeConfig& config)
    : model_(std::move(model)), config_(config) {
  const std::size_t n = std::max<std::size_t>(1, config_.shards);
  config_.shards = n;
  ShardConfig shard_config;
  shard_config.monitor = config_.monitor;
  shard_config.idle_ttl_seconds = config_.idle_ttl_seconds;
  // Distribute the global session cap; every shard holds at least one.
  shard_config.max_sessions = std::max<std::size_t>(1, (config_.max_sessions + n - 1) / n);
  shard_config.emit_steps = config_.emit_steps;
  shard_config.track_history = !config_.wal_dir.empty() || config_.drift;
  shard_max_sessions_ = shard_config.max_sessions;
  shards_.reserve(n);
  shard_queue_gauges_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->table = std::make_unique<SessionShard>(model_, shard_config);
    shards_.push_back(std::move(shard));
    shard_queue_gauges_.push_back(&metrics().gauge("serve.shard.queue_depth." + std::to_string(s)));
  }
  (void)serve_metrics();  // register the panel eagerly
  serve_metrics().degraded_clusters.set(
      static_cast<std::int64_t>(model_.detector->degraded_cluster_count()));
  serve_metrics().model_version.set(numeric_version(model_.version));
  if (config_.drift) init_drift();
  if (wal_enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.wal_dir, ec);
    // Writers open O_APPEND — a predecessor's logs survive until
    // recover()/checkpoint() decides they are covered by a snapshot.
    for (std::size_t s = 0; s < n; ++s) {
      wals_.push_back(std::make_unique<WalWriter>(wal_path(config_.wal_dir, s),
                                                  config_.wal_sync_every));
      shards_[s]->table->set_wal(wals_[s].get());
    }
    if (!read_manifest(config_.wal_dir)) write_manifest(config_.wal_dir, n);
  }
}

void ScoringServer::init_drift() {
  // Ctor-only: shards are not yet shared with other threads. The
  // observers stay installed for the server's life; swaps only replace
  // the DriftMonitor behind drift_mutex_.
  for (auto& shard : shards_) {
    shard->table->set_history_observer(
        [this](const std::vector<int>& actions) { observe_drift(actions); });
  }
  // The drift reference is recovered from the model itself (Markov
  // fallback column sums == training action distribution); v1 archives
  // carry no fallbacks, so drift silently stays off for them.
  std::vector<double> reference = model_.detector->training_action_counts();
  std::lock_guard<std::mutex> lock(drift_mutex_);
  if (reference.empty()) {
    drift_ = nullptr;
    log_warn() << "drift monitoring requested but the model archive has no "
                  "Markov fallbacks (v1?); disabled";
    return;
  }
  drift_ = std::make_unique<core::DriftMonitor>(std::move(reference), config_.drift_config);
}

void ScoringServer::observe_drift(const std::vector<int>& actions) {
  if (actions.empty()) return;
  std::lock_guard<std::mutex> lock(drift_mutex_);
  if (drift_ == nullptr) return;
  // Sessions finished under a pre-swap model may reference actions the
  // current reference distribution does not have; drop those sessions
  // rather than index out of the reference.
  for (const int a : actions) {
    if (a < 0 || static_cast<std::size_t>(a) >= drift_->dimensions()) return;
  }
  const double divergence = drift_->observe(actions);
  serve_metrics().drift_micronats.set(static_cast<std::int64_t>(divergence * 1e6));
}

void ScoringServer::advance_clock(double t) {
  double seen = clock_.load(std::memory_order_relaxed);
  while (t > seen &&
         !clock_.compare_exchange_weak(seen, t, std::memory_order_relaxed)) {
  }
}

void ScoringServer::record_queue_depth() const {
  // The gauge tracks the incrementally maintained total: exact counting
  // via queued_events() would take every shard lock per enqueue.
  serve_metrics().queue_depth.set(queued_total_.load(std::memory_order_relaxed));
}

ModelHandle ScoringServer::current_model() const {
  std::shared_lock<std::shared_mutex> lock(model_mutex_);
  return model_;
}

ScoringServer::Enqueue ScoringServer::enqueue(const Event& event,
                                              std::vector<OutputRecord>& out) {
  const bool tracing = tracer_ != nullptr && trace_events().enabled();
  const std::uint64_t trace_start = tracing ? trace_now_nanos() : 0;
  ModelHandle resolver = current_model();
  const int action = resolve_action_id(resolver.detector->vocab(), event.action);
  if (action < 0) {
    serve_metrics().parse_errors.inc();
    out.push_back({seq_.fetch_add(1, std::memory_order_relaxed),
                   render_error_record("unknown action", event.action)});
    return Enqueue::kRejected;
  }
  const std::size_t s = shard_of(event);
  Shard& shard = *shards_[s];
  Enqueue result = Enqueue::kAccepted;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Injected backpressure: exercises the producer's pump-and-retry path.
    if (MISUSEDET_FAILPOINT("serve.enqueue")) return Enqueue::kQueueFull;
    if (shard.queue.size() >= config_.queue_capacity) {
      if (config_.backpressure == BackpressurePolicy::kBlock) return Enqueue::kQueueFull;
      shard.queue.pop_front();
      serve_metrics().dropped_events.inc();
      result = Enqueue::kDroppedOldest;
    }
    Pending pending;
    pending.event = event;
    pending.action = action;
    pending.resolved_under = std::move(resolver.detector);
    seq = pending.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    shard.queue.push_back(std::move(pending));
    // Gauge updates stay inside the lock so per-shard depth transitions
    // are serialized with the queue they describe.
    if (result == Enqueue::kAccepted) queued_total_.fetch_add(1, std::memory_order_relaxed);
    shard_queue_gauges_[s]->set(static_cast<std::int64_t>(shard.queue.size()));
  }
  if (event.has_timestamp) advance_clock(event.timestamp);
  record_queue_depth();
  if (tracing) {
    const std::string key = session_key(event);
    if (tracer_->sampled(key)) {
      trace_events().record({"serve.enqueue", key, trace_start, trace_now_nanos() - trace_start,
                             enqueue_trace_args(event, s, seq)});
    }
  }
  return result;
}

void ScoringServer::pump(std::vector<OutputRecord>& out) {
  Span pump_span("serve.pump");
  std::vector<std::vector<OutputRecord>> shard_out(shards_.size());
  std::atomic<std::uint64_t> pumped{0};
  global_pool().parallel_for(0, shards_.size(), [&](std::size_t s) {
    Shard& shard = *shards_[s];
    std::deque<Pending> backlog;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      backlog.swap(shard.queue);
      queued_total_.fetch_sub(static_cast<std::int64_t>(backlog.size()),
                              std::memory_order_relaxed);
      shard_queue_gauges_[s]->set(0);
    }
    if (backlog.empty()) return;
    pumped.fetch_add(backlog.size(), std::memory_order_relaxed);
    Span drain_span("serve.shard_drain");
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Hand the whole drain to the shard as one batch: distinct sessions'
    // model forwards fuse into batched inference-engine steps, while
    // arrival order (and the output stream) stays bit-identical to the
    // per-event path.
    std::vector<SessionShard::PendingEvent> batch;
    batch.reserve(backlog.size());
    for (const Pending& p : backlog) {
      batch.push_back({&p.event, p.action, p.resolved_under.get(), p.seq});
    }
    shard.table->process_batch(batch, shard_out[s]);
    // Group commit: one write hands the whole drain's WAL records to the
    // OS before any of its verdicts become externally visible.
    if (s < wals_.size() && wals_[s] != nullptr) wals_[s]->flush();
  });
  events_since_checkpoint_.fetch_add(pumped.load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
  std::size_t total = 0;
  for (const auto& records : shard_out) total += records.size();
  const std::size_t base = out.size();
  out.reserve(base + total);
  for (auto& records : shard_out) {
    for (auto& r : records) out.push_back(std::move(r));
  }
  // Unique seq tags restore the global arrival order across shards.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
            [](const OutputRecord& a, const OutputRecord& b) { return a.seq < b.seq; });
  record_queue_depth();
}

void ScoringServer::append_reports(std::vector<OutputRecord>&& reports,
                                   std::vector<OutputRecord>& out) {
  // Shard partitioning must not leak into the output stream: the same
  // sessions land on different shards at different --shards values, so
  // reports collected across shards are re-sorted into a global record
  // order (and re-tagged with emission-order seqs) before they are
  // emitted. A replayed trace then produces byte-identical output at any
  // shard count, matching the per-step determinism contract.
  std::sort(reports.begin(), reports.end(),
            [](const OutputRecord& a, const OutputRecord& b) { return a.line < b.line; });
  out.reserve(out.size() + reports.size());
  for (auto& r : reports) {
    r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    out.push_back(std::move(r));
  }
}

void ScoringServer::sweep_at(double now, std::vector<OutputRecord>& out) {
  // Serial in shard order: eviction reports are rare and cheap to render.
  std::vector<OutputRecord> reports;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    // Sweeps mutate durable state (evictions), so they are WAL records
    // too: replay re-runs them at the same global-seq position.
    if (s < wals_.size() && wals_[s] != nullptr) {
      wals_[s]->append(encode_sweep_record(now, seq));
      wals_[s]->flush();
    }
    shard.table->sweep(now, seq, reports);
  }
  append_reports(std::move(reports), out);
}

void ScoringServer::shutdown(std::vector<OutputRecord>& out) {
  pump(out);
  std::vector<OutputRecord> reports;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->finish_all(seq_.fetch_add(1, std::memory_order_relaxed), reports);
  }
  append_reports(std::move(reports), out);
  // Every session just reported: persist the (empty) tables so a restart
  // after a *graceful* exit recovers nothing.
  if (wal_enabled()) write_checkpoint();
}

std::size_t ScoringServer::recover(std::vector<OutputRecord>& out) {
  if (!wal_enabled()) return 0;
  const std::size_t old_shards = read_manifest(config_.wal_dir).value_or(shards_.size());

  // Recovery replays through the normal scoring path; detach the WALs so
  // the replay is not re-logged (the closing checkpoint re-covers
  // everything and truncates the old logs).
  for (auto& shard : shards_) shard->table->set_wal(nullptr);

  // 1. Snapshots: rebuild each snapshotted session by silent re-feed,
  //    routed through the *current* sharding.
  std::vector<std::uint64_t> watermarks(old_shards, 0);
  double clock = 0.0;
  for (std::size_t k = 0; k < old_shards; ++k) {
    const auto snapshot = read_snapshot(snapshot_path(config_.wal_dir, k));
    if (!snapshot) continue;
    watermarks[k] = snapshot->watermark;
    clock = std::max(clock, snapshot->clock);
    for (const auto& session : snapshot->sessions) {
      Event probe;
      probe.user_id = session.user_id;
      probe.session_id = session.session_id;
      Shard& shard = *shards_[shard_of(probe)];
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.table->restore_session(session);
    }
  }

  // 2. WALs: merge every record past its file's watermark globally by
  //    sequence number, then replay in input order.
  std::vector<WalRecord> records;
  for (std::size_t k = 0; k < old_shards; ++k) {
    for (auto& record : read_wal(wal_path(config_.wal_dir, k))) {
      if (record.seq > watermarks[k]) records.push_back(std::move(record));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.seq < b.seq; });

  std::uint64_t max_seq = 0;
  for (const auto& w : watermarks) max_seq = std::max(max_seq, w);
  std::size_t replayed = 0;
  std::vector<OutputRecord> replayed_out;
  const ModelHandle replay_model = current_model();
  for (const WalRecord& record : records) {
    max_seq = std::max(max_seq, record.seq);
    if (record.type == WalRecord::kEvent) {
      const int action = resolve_action_id(replay_model.detector->vocab(), record.event.action);
      if (action < 0) continue;  // vocabulary changed under the WAL
      if (record.event.has_timestamp) clock = std::max(clock, record.event.timestamp);
      Shard& shard = *shards_[shard_of(record.event)];
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.table->process(record.event, action, replay_model.detector.get(), record.seq,
                           replayed_out);
      ++replayed;
      serve_metrics().recovered_events.inc();
    } else if (record.type == WalRecord::kSweep) {
      // The old layout logged one sweep per shard; re-running each as a
      // global sweep is idempotent (later passes find nothing expired).
      for (auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->table->sweep(record.sweep_now, record.seq, replayed_out);
      }
    }
  }
  // Replayed records keep their original seqs: a consumer that saw the
  // pre-crash stream dedups on seq and the tail continues seamlessly.
  std::sort(replayed_out.begin(), replayed_out.end(),
            [](const OutputRecord& a, const OutputRecord& b) { return a.seq < b.seq; });
  out.reserve(out.size() + replayed_out.size());
  for (auto& r : replayed_out) out.push_back(std::move(r));

  std::uint64_t seq = seq_.load(std::memory_order_relaxed);
  while (seq < max_seq + 1 &&
         !seq_.compare_exchange_weak(seq, max_seq + 1, std::memory_order_relaxed)) {
  }
  advance_clock(clock);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->advance_clock_to(clock);
  }

  if (config_.resume_replay) {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->table->arm_replay_skip();
    }
  }

  // 3. Re-base durability on the recovered state under the current
  //    layout, then re-attach the logs.
  write_checkpoint();
  for (std::size_t s = 0; s < shards_.size(); ++s) shards_[s]->table->set_wal(wals_[s].get());
  if (replayed > 0 || active_sessions() > 0) {
    log_info() << "recovered " << active_sessions() << " sessions (" << replayed
               << " WAL events replayed)";
  }
  return replayed;
}

void ScoringServer::write_checkpoint() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    ShardSnapshot snapshot;
    snapshot.watermark = shard.table->last_applied_seq();
    snapshot.clock = shard.table->clock();
    snapshot.sessions = shard.table->snapshot_sessions();
    if (write_snapshot(snapshot_path(config_.wal_dir, s), snapshot)) {
      // Only a landed snapshot may retire its WAL; on failure the log
      // keeps growing and recovery replays it instead.
      if (s < wals_.size() && wals_[s] != nullptr) wals_[s]->reset();
    }
  }
  write_manifest(config_.wal_dir, shards_.size());
  remove_stale_shard_files(config_.wal_dir, shards_.size());
  events_since_checkpoint_.store(0, std::memory_order_relaxed);
}

void ScoringServer::checkpoint(std::vector<OutputRecord>& out) {
  if (!wal_enabled()) return;
  pump(out);
  write_checkpoint();
}

bool ScoringServer::maybe_checkpoint(std::vector<OutputRecord>& out) {
  if (!wal_enabled() || config_.snapshot_every == 0) return false;
  if (events_since_checkpoint_.load(std::memory_order_relaxed) < config_.snapshot_every) {
    return false;
  }
  checkpoint(out);
  return true;
}

bool ScoringServer::submit_sync(const Event& event, std::vector<OutputRecord>& out) {
  const ModelHandle resolver = current_model();
  const int action = resolve_action_id(resolver.detector->vocab(), event.action);
  if (action < 0) {
    serve_metrics().parse_errors.inc();
    out.push_back({seq_.fetch_add(1, std::memory_order_relaxed),
                   render_error_record("unknown action", event.action)});
    return false;
  }
  if (event.has_timestamp) advance_clock(event.timestamp);
  Shard& shard = *shards_[shard_of(event)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table->process(event, action, resolver.detector.get(),
                         seq_.fetch_add(1, std::memory_order_relaxed), out);
    const std::size_t s = shard_of(event);
    if (s < wals_.size() && wals_[s] != nullptr) wals_[s]->flush();
  }
  events_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t ScoringServer::active_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->table->active_sessions();
  }
  return total;
}

std::size_t ScoringServer::queued_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->queue.size();
  }
  return total;
}

double ScoringServer::event_clock() const { return clock_.load(std::memory_order_relaxed); }

std::vector<ScoringServer::ShardStatus> ScoringServer::shard_status() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardStatus status;
    status.queue_capacity = config_.queue_capacity;
    status.max_sessions = shard_max_sessions_;
    status.queue_high_water = shard_queue_gauges_[s]->high_water();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      status.queue_depth = shard.queue.size();
      status.sessions = shard.table->active_sessions();
      status.last_applied_seq = shard.table->last_applied_seq();
    }
    out.push_back(status);
  }
  return out;
}

bool ScoringServer::wal_ok() const {
  for (const auto& wal : wals_) {
    if (wal != nullptr && !wal->ok()) return false;
  }
  return true;
}

void ScoringServer::set_trace_sampler(std::shared_ptr<SessionTraceSampler> sampler) {
  tracer_ = sampler;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_trace_sampler(sampler);
  }
}

void ScoringServer::set_step_observer(const StepObserver& observer) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_step_observer(observer);
  }
}

void ScoringServer::set_report_observer(const ReportObserver& observer) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_report_observer(observer);
  }
}

ScoringServer::SwapStats ScoringServer::swap_model(ModelHandle next,
                                                   std::vector<OutputRecord>& out) {
  assert(next.detector != nullptr);
  SwapStats stats;
  Timer drain_timer;
  // Drain to the barrier: queued events were resolved under the old
  // model and score under whatever their session pinned; pumping first
  // keeps the locked pause window free of backlog work.
  pump(out);
  stats.drain_seconds = drain_timer.seconds();

  const bool compatible =
      next.detector->vocab().fingerprint() == current_model().detector->vocab().fingerprint();
  std::vector<OutputRecord> reports;
  Timer pause_timer;
  {
    // The barrier: every shard locked (always in index order, so two
    // concurrent swaps cannot deadlock) — no event is scored while the
    // model pointer moves. An in-flight submit_sync lands either before
    // the barrier (scored under the old model, which its session pins)
    // or after (re-resolved / reopened under the new one).
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& shard : shards_) locks.emplace_back(shard->mutex);
    if (!compatible) {
      // The vocabularies differ: open sessions cannot migrate to a model
      // that interprets action ids differently, so each one reports at
      // the barrier (emitted, never dropped) and traffic reopens fresh.
      for (auto& shard : shards_) {
        const std::size_t before = reports.size();
        shard->table->finish_all(seq_.fetch_add(1, std::memory_order_relaxed), reports,
                                 ReportReason::kModelSwap);
        stats.rolled_sessions += reports.size() - before;
      }
    }
    for (auto& shard : shards_) shard->table->set_model(next);
    {
      std::unique_lock<std::shared_mutex> model_lock(model_mutex_);
      model_ = next;
    }
  }
  stats.pause_seconds = pause_timer.seconds();
  append_reports(std::move(reports), out);

  ServeMetrics& sm = serve_metrics();
  sm.swaps.inc();
  sm.swap_pause_seconds.record(stats.pause_seconds);
  sm.swap_sessions_rolled.inc(stats.rolled_sessions);
  sm.model_version.set(numeric_version(next.version));
  sm.degraded_clusters.set(static_cast<std::int64_t>(next.detector->degraded_cluster_count()));
  if (config_.drift) {
    // Re-base the drift reference on the new model; the comparison
    // window restarts (old-window sessions were scored against the old
    // reference, mixing them across references would be meaningless).
    std::vector<double> reference = next.detector->training_action_counts();
    std::lock_guard<std::mutex> lock(drift_mutex_);
    drift_ = reference.empty() ? nullptr
                               : std::make_unique<core::DriftMonitor>(std::move(reference),
                                                                      config_.drift_config);
  }
  log_info() << "model swapped to " << (next.version.empty() ? "(unversioned)" : next.version)
             << (compatible ? "" : " [vocabulary changed]") << ": pause "
             << stats.pause_seconds * 1e3 << "ms, " << stats.rolled_sessions
             << " sessions finished at the barrier";
  return stats;
}

void ScoringServer::set_shadow(const ShadowPlan& plan) {
  assert(plan.detector != nullptr);
  // One scorer per shard (each driven under its shard's lock), so shadow
  // scoring needs no cross-shard coordination of its own.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_shadow(std::make_shared<ShadowScorer>(plan));
  }
}

void ScoringServer::clear_shadow() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->table->set_shadow(nullptr);
  }
}

}  // namespace misuse::serve

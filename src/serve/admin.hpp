// Live operations plane for misusedet_serve (--admin-port): a minimal
// HTTP/1.0 listener over util/socket serving
//
//   /metrics  Prometheus text exposition of the whole registry
//   /healthz  ok | degraded | unhealthy (flat JSON; 503 when unhealthy)
//   /statusz  flat-JSON runtime introspection (per-shard queues and
//             session counts, model versions, WAL lag, kernel, uptime)
//   /tracez   sampled trace events as Chrome trace JSON
//             (?format=ndjson for one flat JSON object per line)
//
// The listener runs on its own thread and only ever *reads* server
// state (shard locks are taken briefly per shard, never all at once),
// so scraping cannot reorder, drop, or otherwise perturb scored output
// — the byte-identity contract of the data path holds with the admin
// plane enabled. Requests are served one at a time with a read timeout:
// a stalled or malicious scraper times out and is dropped; it can delay
// other scrapers, never the data path. See DESIGN.md "Operations plane".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/socket.hpp"

namespace misuse::serve {

/// Process-level state the endpoints cannot read off the ScoringServer
/// itself; wired in by serve_main. Every member is optional.
struct AdminHooks {
  std::function<std::string()> model_version;   // active registry version ("" = unversioned)
  std::function<std::string()> canary_version;  // shadow/canary version ("" = none)
  /// Latest continuous-learning state as one flat JSON object (the
  /// LEARN_STATUS file misusedet_learnd maintains next to the registry);
  /// "" = no learn loop. /statusz re-emits its fields with a learn_
  /// prefix so one scrape shows the serving and learning planes together.
  std::function<std::string()> learn_status;
};

struct AdminConfig {
  std::uint16_t port = 0;  // 0 binds an ephemeral port (read back via port())
  std::string host = "0.0.0.0";
  std::string infer_kernel;  // effective inference kernel, surfaced in /statusz
  double read_timeout_seconds = 5.0;
};

class AdminServer {
 public:
  /// Binds and starts the accept thread; throws std::runtime_error when
  /// the port cannot be bound. `server` must outlive the AdminServer.
  AdminServer(ScoringServer& server, AdminConfig config, AdminHooks hooks = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Closes the listener and joins the accept thread; idempotent.
  void stop();

  /// Endpoint bodies without the HTTP framing — the same renderers the
  /// listener uses, callable in-process by tests and benchmarks.
  std::string render_metrics() const;
  std::string render_statusz() const;
  /// `http_status` (optional) receives 200 for ok/degraded, 503 for
  /// unhealthy — degraded still answers 200 so load balancers keep a
  /// struggling-but-correct node in rotation.
  std::string render_healthz(int* http_status = nullptr) const;
  std::string render_tracez(bool ndjson) const;

 private:
  void serve_loop();
  void handle(TcpStream stream);

  ScoringServer& server_;
  AdminConfig config_;
  AdminHooks hooks_;
  std::uint64_t start_nanos_ = 0;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

}  // namespace misuse::serve

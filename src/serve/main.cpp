// misusedet_serve: long-lived streaming session-scoring server — the
// deployment half of the paper's Fig. 2 pipeline. Loads a trained
// MisuseDetector archive and scores an interleaved NDJSON event stream
// (one {"user_id", "session_id", "action", "timestamp"} object per
// line) from many concurrent users, emitting per-step verdicts and
// end-of-session reports as NDJSON.
//
// Modes:
//   * default: events on stdin, verdicts on stdout (pipe-friendly);
//   * --listen=PORT: accept TCP connections, one NDJSON stream each;
//     verdicts return on the originating connection, while eviction /
//     shutdown session reports go to stdout (sessions outlive
//     connections).
//
// Graceful shutdown: EOF on stdin, or SIGINT/SIGTERM in either mode,
// drains the queued backlog and emits a session_report for every open
// session before exiting. --metrics-out writes the observability
// snapshot (util/metrics + trace tree) on exit.
//
//   misusedet_serve --model=detector.bin [--listen=PORT]
//       [--shards=N] [--queue-capacity=N] [--backpressure=block|drop_oldest]
//       [--idle-ttl=SECONDS] [--max-sessions=N] [--batch=N] [--threads=N]
//       [--alarm-likelihood=X] [--trend-window=N] [--trend-drop=X]
//       [--no-steps] [--metrics-out=PATH]
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/line_io.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace misuse::serve {
namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // Dying TCP peers must not kill the server mid-write.
  ::signal(SIGPIPE, SIG_IGN);
}

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program << " --model=PATH [options]\n"
      << "  --model=PATH            trained detector archive (required)\n"
      << "  --listen=PORT           serve NDJSON over TCP instead of stdin/stdout\n"
      << "  --shards=N              session-table shards (default 4)\n"
      << "  --queue-capacity=N      per-shard event queue bound (default 1024)\n"
      << "  --backpressure=POLICY   block | drop_oldest (default block)\n"
      << "  --idle-ttl=SECONDS      evict sessions idle this long in event time (default 900)\n"
      << "  --max-sessions=N        session-table capacity across shards (default 4096)\n"
      << "  --batch=N               events per pump in stdin mode (default 256)\n"
      << "  --threads=N             worker threads (default MISUSEDET_THREADS/hardware)\n"
      << "  --alarm-likelihood=X    immediate alarm threshold (default 0.02)\n"
      << "  --trend-window=N        trend detector window (default 8)\n"
      << "  --trend-drop=X          trend alarm relative drop (default 0.5)\n"
      << "  --no-steps              emit only session reports, not per-step verdicts\n"
      << "  --metrics-out=PATH      write the metrics/trace snapshot on exit\n"
      << "  --wal-dir=DIR           crash safety: per-shard write-ahead log + snapshots\n"
      << "  --wal-sync=N            fsync each shard WAL every N appends (default 1024)\n"
      << "  --snapshot-every=N      checkpoint every N applied events (default 4096)\n"
      << "  --resume-replay         after recovery, dedup producers that resend from origin\n";
}

void flush_records(std::vector<OutputRecord>& records, std::ostream& out, std::mutex* mutex) {
  if (records.empty()) return;
  if (mutex != nullptr) {
    std::lock_guard<std::mutex> lock(*mutex);
    for (const auto& r : records) out << r.line << '\n';
    out.flush();
  } else {
    for (const auto& r : records) out << r.line << '\n';
    out.flush();
  }
  records.clear();
}

/// stdin/stdout pipe mode: read-batch -> pump -> sweep, repeat.
int run_pipe(ScoringServer& server, std::size_t batch_max) {
  LineReader reader(std::cin);
  std::string line;
  std::vector<OutputRecord> out;
  std::string error;
  std::size_t batched = 0;
  while (!g_stop.load(std::memory_order_relaxed) && reader.next(line)) {
    if (line.empty()) continue;
    Event event;
    if (!parse_event(line, event, error)) {
      serve_metrics().parse_errors.inc();
      out.push_back({0, render_error_record(error, line)});
      continue;
    }
    while (server.enqueue(event, out) == ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      flush_records(out, std::cout, nullptr);
    }
    if (++batched >= batch_max) {
      server.pump(out);
      server.sweep(out);
      server.maybe_checkpoint(out);
      flush_records(out, std::cout, nullptr);
      batched = 0;
    }
  }
  if (reader.truncated()) {
    log_warn() << "input line exceeded the size cap; draining and shutting down";
  }
  server.shutdown(out);
  flush_records(out, std::cout, nullptr);
  return 0;
}

/// TCP mode: one blocking reader thread per connection, verdicts written
/// back on the same connection; session reports (evictions, shutdown
/// drain) go to stdout under a shared mutex.
int run_tcp(ScoringServer& server, std::uint16_t port) {
  TcpListener listener = TcpListener::bind(port);
  log_info() << "listening on port " << listener.port();
  std::mutex stdout_mutex;

  std::vector<std::thread> connections;
  std::vector<std::weak_ptr<TcpStream>> open_streams;
  std::mutex connections_mutex;

  // Periodic TTL sweeps: event-time driven, checked on a coarse wall tick.
  std::thread sweeper([&server, &stdout_mutex] {
    std::vector<OutputRecord> out;
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      server.sweep(out);
      server.maybe_checkpoint(out);
      flush_records(out, std::cout, &stdout_mutex);
    }
  });

  // Watches for the signal flag, then closes the listener and half-closes
  // every open connection so blocked accept()/read() calls return.
  std::thread stopper([&listener, &open_streams, &connections_mutex] {
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    listener.close();
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (const auto& weak : open_streams) {
      if (const auto stream = weak.lock()) stream->shutdown_read();
    }
  });

  while (auto conn = listener.accept()) {
    auto stream = std::make_shared<TcpStream>(std::move(*conn));
    std::lock_guard<std::mutex> lock(connections_mutex);
    open_streams.push_back(stream);
    connections.emplace_back([stream = std::move(stream), &server] {
          LineReader reader(stream->io());
          std::string line;
          std::string error;
          std::vector<OutputRecord> out;
          while (!g_stop.load(std::memory_order_relaxed) && reader.next(line)) {
            if (line.empty()) continue;
            Event event;
            if (!parse_event(line, event, error)) {
              serve_metrics().parse_errors.inc();
              stream->io() << render_error_record(error, line) << '\n';
              stream->io().flush();
              continue;
            }
            server.submit_sync(event, out);
            for (const auto& r : out) stream->io() << r.line << '\n';
            stream->io().flush();
            out.clear();
          }
          stream->shutdown_write();
        });
  }

  g_stop.store(true, std::memory_order_relaxed);
  stopper.join();
  sweeper.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (auto& t : connections) t.join();
  }
  std::vector<OutputRecord> out;
  server.shutdown(out);
  flush_records(out, std::cout, &stdout_mutex);
  return 0;
}

int serve_main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.flag("help")) {
    print_usage(args.program());
    return 0;
  }
  const std::string model_path = args.str("model");
  if (model_path.empty()) {
    std::cerr << "--model=PATH is required (train and save a detector first; see README "
                 "\"Serving\")\n";
    print_usage(args.program());
    return 2;
  }

  ServeConfig config;
  config.shards = static_cast<std::size_t>(args.integer("shards", 4));
  config.queue_capacity = static_cast<std::size_t>(args.integer("queue-capacity", 1024));
  const std::string policy = args.str("backpressure", "block");
  if (policy == "drop_oldest") {
    config.backpressure = BackpressurePolicy::kDropOldest;
  } else if (policy == "block") {
    config.backpressure = BackpressurePolicy::kBlock;
  } else {
    std::cerr << "unknown --backpressure policy '" << policy << "' (block | drop_oldest)\n";
    return 2;
  }
  config.idle_ttl_seconds = args.real("idle-ttl", 900.0);
  config.max_sessions = static_cast<std::size_t>(args.integer("max-sessions", 4096));
  config.emit_steps = !args.flag("no-steps");
  config.monitor.alarm_likelihood = args.real("alarm-likelihood", 0.02);
  config.monitor.trend_window = static_cast<std::size_t>(args.integer("trend-window", 8));
  config.monitor.trend_drop = args.real("trend-drop", 0.5);
  config.wal_dir = args.str("wal-dir");
  config.wal_sync_every = static_cast<std::size_t>(args.integer("wal-sync", 1024));
  config.snapshot_every = static_cast<std::size_t>(args.integer("snapshot-every", 4096));
  config.resume_replay = args.flag("resume-replay");
  if (args.has("threads")) {
    set_global_threads(static_cast<std::size_t>(args.integer("threads", 0)));
  }

  std::ifstream model_in(model_path, std::ios::binary);
  if (!model_in) {
    std::cerr << "cannot open model archive " << model_path << "\n";
    return 2;
  }
  core::register_core_metrics();
  core::MetricsExport metrics_export(args.str("metrics-out"));
  BinaryReader reader(model_in);
  std::optional<core::MisuseDetector> detector;
  try {
    detector.emplace(core::MisuseDetector::load(reader));
  } catch (const SerializeError& e) {
    std::cerr << "failed to load detector archive: " << e.what() << "\n";
    return 2;
  }
  log_info() << "loaded detector: " << detector->cluster_count() << " clusters, vocabulary of "
             << detector->vocab().size() << " actions";

  if (detector->degraded_cluster_count() > 0) {
    log_warn() << detector->degraded_cluster_count()
               << " cluster(s) degraded to the Markov baseline; verdicts from them carry "
                  "\"degraded\":true";
  }

  install_signal_handlers();
  ScoringServer server(*detector, config);
  if (server.wal_enabled()) {
    // Surface what a crashed predecessor left behind before serving new
    // traffic; replayed records carry their original sequence numbers.
    std::vector<OutputRecord> recovered;
    server.recover(recovered);
    flush_records(recovered, std::cout, nullptr);
  }
  if (args.has("listen")) {
    return run_tcp(server, static_cast<std::uint16_t>(args.integer("listen", 0)));
  }
  return run_pipe(server, static_cast<std::size_t>(args.integer("batch", 256)));
}

}  // namespace
}  // namespace misuse::serve

int main(int argc, char** argv) { return misuse::serve::serve_main(argc, argv); }

// misusedet_serve: long-lived streaming session-scoring server — the
// deployment half of the paper's Fig. 2 pipeline. Loads a trained
// MisuseDetector archive and scores an interleaved NDJSON event stream
// (one {"user_id", "session_id", "action", "timestamp"} object per
// line) from many concurrent users, emitting per-step verdicts and
// end-of-session reports as NDJSON.
//
// Modes:
//   * default: events on stdin, verdicts on stdout (pipe-friendly);
//   * --listen=PORT: accept TCP connections, one NDJSON stream each;
//     verdicts return on the originating connection, while eviction /
//     shutdown session reports go to stdout (sessions outlive
//     connections).
//
// Graceful shutdown: EOF on stdin, or SIGINT/SIGTERM in either mode,
// drains the queued backlog and emits a session_report for every open
// session before exiting. --metrics-out writes the observability
// snapshot (util/metrics + trace tree) on exit.
//
//   misusedet_serve --model=detector.bin [--listen=PORT]
//       [--shards=N] [--queue-capacity=N] [--backpressure=block|drop_oldest]
//       [--idle-ttl=SECONDS] [--max-sessions=N] [--batch=N] [--threads=N]
//       [--alarm-likelihood=X] [--trend-window=N] [--trend-drop=X]
//       [--infer=auto|scalar|avx2|reference] [--no-quant]
//       [--no-steps] [--metrics-out=PATH]
//       [--admin-port=PORT] [--trace-sample=N]
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "nn/infer/dispatch.hpp"
#include "registry/registry.hpp"
#include "serve/admin.hpp"
#include "serve/epoll_loop.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/trace_sampler.hpp"
#include "util/cli.hpp"
#include "util/fsio.hpp"
#include "util/line_io.hpp"
#include "util/logging.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse::serve {
namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_reload{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }
void handle_reload(int) { g_reload.store(true, std::memory_order_relaxed); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // SIGHUP = "re-check the registry now" (hot-swap fast path). SA_RESTART
  // keeps the blocking stdin/socket read alive: without it the signal
  // fails std::cin with EINTR and the server mistakes that for EOF.
  struct sigaction reload {};
  reload.sa_handler = handle_reload;
  reload.sa_flags = SA_RESTART;
  sigemptyset(&reload.sa_mask);
  ::sigaction(SIGHUP, &reload, nullptr);
  // Dying TCP peers must not kill the server mid-write.
  ::signal(SIGPIPE, SIG_IGN);
}

/// Hot-swap driver for --registry mode: watches the CURRENT pointer
/// (coarse poll, with SIGHUP as the skip-the-wait fast path) and swaps
/// the serving model when it moves; with --shadow it also keeps the
/// shadow plan pointed at the registry's canary version. A failed reload
/// never takes the server down — it logs and keeps serving the model it
/// has.
class ModelReloader {
 public:
  ModelReloader(ScoringServer& server, registry::ModelRegistry registry, double poll_seconds,
                bool shadow, double canary_fraction)
      : server_(server),
        registry_(std::move(registry)),
        poll_(poll_seconds),
        shadow_(shadow),
        canary_fraction_(canary_fraction) {
    active_.store(registry_.current().value_or(0), std::memory_order_relaxed);
    try {
      refresh_shadow(registry_.canary());
    } catch (const std::exception& e) {
      log_warn() << "shadow setup failed: " << e.what();
    }
  }

  /// Version names for /statusz; readable from the admin thread while
  /// the reloader runs on the sweeper/pipe thread.
  std::string active_version() const {
    const std::uint64_t v = active_.load(std::memory_order_relaxed);
    return v == 0 ? std::string{} : registry::version_name(v);
  }
  std::string canary_version() const {
    const std::uint64_t v = canary_.load(std::memory_order_relaxed);
    return v == 0 ? std::string{} : registry::version_name(v);
  }

  /// Called at batch boundaries (pipe mode) / sweeper ticks (TCP mode).
  void maybe_reload(std::vector<OutputRecord>& out) {
    const bool forced = g_reload.exchange(false, std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    if (!forced && std::chrono::duration<double>(now - last_check_).count() < poll_) return;
    last_check_ = now;
    try {
      // One directory scan answers both "did CURRENT move" and "did the
      // canary change" — the two can't interleave with a promote.
      const registry::ModelRegistry::Status status = registry_.status();
      if (status.current && *status.current != active_.load(std::memory_order_relaxed)) {
        ModelHandle next{registry_.load(*status.current), registry::version_name(*status.current)};
        server_.swap_model(std::move(next), out);
        active_.store(*status.current, std::memory_order_relaxed);
      }
      refresh_shadow(status.canary);
      if (failure_streak_ != 0) {
        failure_streak_ = 0;
        serve_metrics().reload_failure_streak.set(0);
      }
    } catch (const std::exception& e) {
      serve_metrics().reload_failures.inc();
      serve_metrics().reload_failure_streak.set(static_cast<std::int64_t>(++failure_streak_));
      log_warn() << "model reload failed (still serving "
                 << registry::version_name(active_.load(std::memory_order_relaxed))
                 << "): " << e.what();
    }
  }

 private:
  void refresh_shadow(std::optional<std::uint64_t> canary) {
    if (!shadow_) return;
    if (canary == shadow_version_) return;
    if (!canary) {
      server_.clear_shadow();
      shadow_version_.reset();
      canary_.store(0, std::memory_order_relaxed);
      log_info() << "shadow scoring off (no canary in the registry)";
      return;
    }
    ShadowPlan plan;
    plan.detector = registry_.load(*canary);
    plan.version = registry::version_name(*canary);
    plan.fraction = canary_fraction_;
    plan.monitor = server_.config().monitor;
    server_.set_shadow(plan);
    shadow_version_ = canary;
    canary_.store(*canary, std::memory_order_relaxed);
    log_info() << "shadow scoring " << plan.version << " on a " << plan.fraction
               << " fraction of sessions";
  }

  ScoringServer& server_;
  registry::ModelRegistry registry_;
  double poll_;  // seconds between CURRENT checks
  bool shadow_;
  double canary_fraction_;
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> canary_{0};
  std::optional<std::uint64_t> shadow_version_;
  std::uint64_t failure_streak_ = 0;
  std::chrono::steady_clock::time_point last_check_{};
};

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program << " (--model=PATH | --registry=DIR) [options]\n"
      << "  --model=PATH            trained detector archive\n"
      << "  --registry=DIR          serve the registry's CURRENT version and hot-swap when\n"
      << "                          it moves (SIGHUP forces an immediate re-check)\n"
      << "  --registry-poll=SECONDS CURRENT pointer poll interval (default 0.5)\n"
      << "  --shadow                mirror traffic onto the registry canary (metrics only)\n"
      << "  --canary-fraction=X     fraction of sessions the shadow scores (default 1.0)\n"
      << "  --drift                 track served-action drift against the training mix\n"
      << "  --listen=PORT           serve NDJSON over TCP instead of stdin/stdout\n"
      << "  --io=MODE               TCP front end: threads (one blocking reader per\n"
      << "                          connection, default) | epoll (one nonblocking event\n"
      << "                          loop for all connections — the cluster-node mode;\n"
      << "                          scored output is byte-identical either way)\n"
      << "  --shards=N              session-table shards (default 4)\n"
      << "  --queue-capacity=N      per-shard event queue bound (default 1024)\n"
      << "  --backpressure=POLICY   block | drop_oldest (default block)\n"
      << "  --idle-ttl=SECONDS      evict sessions idle this long in event time (default 900)\n"
      << "  --max-sessions=N        session-table capacity across shards (default 4096)\n"
      << "  --batch=N               events per pump in stdin mode (default 256)\n"
      << "  --threads=N             worker threads (default MISUSEDET_THREADS/hardware)\n"
      << "  --alarm-likelihood=X    immediate alarm threshold (default 0.02)\n"
      << "  --trend-window=N        trend detector window (default 8)\n"
      << "  --trend-drop=X          trend alarm relative drop (default 0.5)\n"
      << "  --infer=MODE            inference kernels: auto | scalar | avx2 | reference\n"
      << "                          (default auto = fastest bit-identical mode; avx2 is\n"
      << "                          opt-in and ULP-close, not bit-identical)\n"
      << "  --no-quant              ignore quantized weight sections in the archive\n"
      << "  --no-steps              emit only session reports, not per-step verdicts\n"
      << "  --metrics-out=PATH      write the metrics/trace snapshot on exit\n"
      << "  --admin-port=PORT       operations plane: /metrics (Prometheus) /healthz /statusz\n"
      << "                          /tracez on a dedicated listener (0 = ephemeral port)\n"
      << "  --trace-sample=N        head-sample the first N sessions into the live trace ring\n"
      << "                          (exported via /tracez; off by default)\n"
      << "  --wal-dir=DIR           crash safety: per-shard write-ahead log + snapshots\n"
      << "  --wal-sync=N            fsync each shard WAL every N appends (default 1024)\n"
      << "  --snapshot-every=N      checkpoint every N applied events (default 4096)\n"
      << "  --resume-replay         after recovery, dedup producers that resend from origin\n";
}

void flush_records(std::vector<OutputRecord>& records, std::ostream& out, std::mutex* mutex) {
  if (records.empty()) return;
  if (mutex != nullptr) {
    std::lock_guard<std::mutex> lock(*mutex);
    for (const auto& r : records) out << r.line << '\n';
    out.flush();
  } else {
    for (const auto& r : records) out << r.line << '\n';
    out.flush();
  }
  records.clear();
}

/// stdin/stdout pipe mode: read-batch -> pump -> sweep, repeat. Model
/// swaps land at batch boundaries (the stream is quiescent there).
int run_pipe(ScoringServer& server, std::size_t batch_max, ModelReloader* reloader) {
  LineReader reader(std::cin);
  std::string line;
  std::vector<OutputRecord> out;
  std::string error;
  std::size_t batched = 0;
  while (!g_stop.load(std::memory_order_relaxed) && reader.next(line)) {
    if (line.empty()) continue;
    Event event;
    if (!parse_event(line, event, error)) {
      serve_metrics().parse_errors.inc();
      out.push_back({0, render_error_record(error, line)});
      continue;
    }
    while (server.enqueue(event, out) == ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      flush_records(out, std::cout, nullptr);
    }
    if (++batched >= batch_max) {
      server.pump(out);
      server.sweep(out);
      server.maybe_checkpoint(out);
      if (reloader != nullptr) reloader->maybe_reload(out);
      flush_records(out, std::cout, nullptr);
      batched = 0;
    }
  }
  if (reader.truncated()) {
    log_warn() << "input line exceeded the size cap; draining and shutting down";
  }
  server.shutdown(out);
  flush_records(out, std::cout, nullptr);
  return 0;
}

/// TCP mode: one blocking reader thread per connection, verdicts written
/// back on the same connection; session reports (evictions, shutdown
/// drain) go to stdout under a shared mutex.
int run_tcp(ScoringServer& server, std::uint16_t port, ModelReloader* reloader) {
  TcpListener listener = TcpListener::bind(port);
  log_info() << "listening on port " << listener.port();
  std::mutex stdout_mutex;

  std::vector<std::thread> connections;
  std::vector<std::weak_ptr<TcpStream>> open_streams;
  std::mutex connections_mutex;

  // Periodic TTL sweeps: event-time driven, checked on a coarse wall tick.
  // The same tick drives registry hot-swaps; connection threads blocked in
  // submit_sync simply observe the new model once the barrier releases.
  std::thread sweeper([&server, &stdout_mutex, reloader] {
    std::vector<OutputRecord> out;
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      server.sweep(out);
      server.maybe_checkpoint(out);
      if (reloader != nullptr) reloader->maybe_reload(out);
      flush_records(out, std::cout, &stdout_mutex);
    }
  });

  // Watches for the signal flag, then closes the listener and half-closes
  // every open connection so blocked accept()/read() calls return.
  std::thread stopper([&listener, &open_streams, &connections_mutex] {
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    listener.close();
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (const auto& weak : open_streams) {
      if (const auto stream = weak.lock()) stream->shutdown_read();
    }
  });

  while (auto conn = listener.accept()) {
    auto stream = std::make_shared<TcpStream>(std::move(*conn));
    std::lock_guard<std::mutex> lock(connections_mutex);
    open_streams.push_back(stream);
    connections.emplace_back([stream = std::move(stream), &server] {
          LineReader reader(stream->io());
          std::string line;
          std::string error;
          std::vector<OutputRecord> out;
          while (!g_stop.load(std::memory_order_relaxed) && reader.next(line)) {
            if (line.empty()) continue;
            Event event;
            if (!parse_event(line, event, error)) {
              serve_metrics().parse_errors.inc();
              stream->io() << render_error_record(error, line) << '\n';
              stream->io().flush();
              continue;
            }
            server.submit_sync(event, out);
            for (const auto& r : out) stream->io() << r.line << '\n';
            stream->io().flush();
            out.clear();
          }
          stream->shutdown_write();
        });
  }

  g_stop.store(true, std::memory_order_relaxed);
  stopper.join();
  sweeper.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex);
    for (auto& t : connections) t.join();
  }
  std::vector<OutputRecord> out;
  server.shutdown(out);
  flush_records(out, std::cout, &stdout_mutex);
  return 0;
}

/// Epoll TCP mode: every connection multiplexed onto one nonblocking
/// event loop. Each complete line goes through the same submit_sync call
/// the thread-per-connection path makes, so per-connection scored output
/// is byte-identical to --io=threads; TTL sweeps, checkpoints, and
/// registry reloads ride the loop's tick (no sweeper thread), with
/// session reports on stdout as before.
int run_epoll(ScoringServer& server, std::uint16_t port, ModelReloader* reloader) {
  EpollConfig config;
  config.port = port;
  EpollHandlers handlers;
  std::vector<OutputRecord> records;  // reused across lines (loop thread only)
  std::string error;
  handlers.on_line = [&server, &records, &error](std::uint64_t, std::string_view line,
                                                 std::string& replies) {
    if (line.empty()) return;
    Event event;
    if (!parse_event(line, event, error)) {
      serve_metrics().parse_errors.inc();
      replies += render_error_record(error, line);
      replies += '\n';
      return;
    }
    server.submit_sync(event, records);
    for (const auto& r : records) {
      replies += r.line;
      replies += '\n';
    }
    records.clear();
  };
  handlers.on_tick = [&server, reloader] {
    std::vector<OutputRecord> out;
    server.sweep(out);
    server.maybe_checkpoint(out);
    if (reloader != nullptr) reloader->maybe_reload(out);
    flush_records(out, std::cout, nullptr);
  };
  EpollLoop loop(config, handlers);
  log_info() << "listening on port " << loop.port() << " (epoll)";

  // The loop wakes at least every tick, so a signal turns into
  // request_stop within one tick; the watcher thread just narrows that
  // window the same way the threads-mode stopper does.
  std::thread stopper([&loop] {
    while (!g_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    loop.request_stop();
  });
  loop.run();
  g_stop.store(true, std::memory_order_relaxed);
  stopper.join();

  std::vector<OutputRecord> out;
  server.shutdown(out);
  flush_records(out, std::cout, nullptr);
  return 0;
}

int serve_main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.flag("help")) {
    print_usage(args.program());
    return 0;
  }
  const std::string model_path = args.str("model");
  const std::string registry_root = args.str("registry");
  if (model_path.empty() == registry_root.empty()) {
    std::cerr << "exactly one of --model=PATH or --registry=DIR is required (train and save a "
                 "detector first; see README \"Serving\" and \"Model lifecycle\")\n";
    print_usage(args.program());
    return 2;
  }
  if ((args.flag("shadow") || args.has("canary-fraction")) && registry_root.empty()) {
    std::cerr << "--shadow/--canary-fraction need --registry=DIR (the canary lives there)\n";
    return 2;
  }

  ServeConfig config;
  config.shards = static_cast<std::size_t>(args.integer("shards", 4));
  config.queue_capacity = static_cast<std::size_t>(args.integer("queue-capacity", 1024));
  const std::string policy = args.str("backpressure", "block");
  if (policy == "drop_oldest") {
    config.backpressure = BackpressurePolicy::kDropOldest;
  } else if (policy == "block") {
    config.backpressure = BackpressurePolicy::kBlock;
  } else {
    std::cerr << "unknown --backpressure policy '" << policy << "' (block | drop_oldest)\n";
    return 2;
  }
  config.idle_ttl_seconds = args.real("idle-ttl", 900.0);
  config.max_sessions = static_cast<std::size_t>(args.integer("max-sessions", 4096));
  // CliArgs folds "--no-X" into key "X" with value "false", so negative
  // flags are read through their positive name with a true default.
  config.emit_steps = args.flag("steps", true);
  config.monitor.alarm_likelihood = args.real("alarm-likelihood", 0.02);
  config.monitor.trend_window = static_cast<std::size_t>(args.integer("trend-window", 8));
  config.monitor.trend_drop = args.real("trend-drop", 0.5);
  config.wal_dir = args.str("wal-dir");
  config.wal_sync_every = static_cast<std::size_t>(args.integer("wal-sync", 1024));
  config.snapshot_every = static_cast<std::size_t>(args.integer("snapshot-every", 4096));
  config.resume_replay = args.flag("resume-replay");
  config.drift = args.flag("drift");
  if (args.has("threads")) {
    set_global_threads(static_cast<std::size_t>(args.integer("threads", 0)));
  }
  // Kernel selection must be settled before the detector loads: quant
  // gating happens at load time, and the mode is process-global.
  if (args.has("infer")) {
    const auto mode = nn::infer::parse_infer_mode(args.str("infer"));
    if (!mode) {
      std::cerr << "unknown --infer mode '" << args.str("infer")
                << "' (auto | scalar | avx2 | reference)\n";
      return 2;
    }
    nn::infer::set_infer_mode(*mode);
  }
  if (!args.flag("quant", true)) nn::infer::set_quant_enabled(false);
  log_info() << "inference kernels: " << nn::infer::infer_mode_name(nn::infer::infer_mode())
             << " (effective "
             << nn::infer::infer_mode_name(nn::infer::effective_infer_mode())
             << ", avx2 " << (nn::infer::avx2_supported() ? "available" : "unavailable")
             << ", quantized sections " << (nn::infer::quant_enabled() ? "on" : "off") << ")";

  core::register_core_metrics();
  core::MetricsExport metrics_export(args.str("metrics-out"));

  ModelHandle model;
  std::optional<registry::ModelRegistry> registry;
  try {
    if (!registry_root.empty()) {
      registry.emplace(registry_root);
      const auto current = registry->current();
      if (!current) {
        std::cerr << "registry '" << registry_root
                  << "' has no active version (publish an archive, then promote it twice)\n";
        return 2;
      }
      model.detector = registry->load(*current);
      model.version = registry::version_name(*current);
    } else {
      // load_file carries the path and failing section in its message.
      model.detector =
          std::make_shared<const core::MisuseDetector>(core::MisuseDetector::load_file(model_path));
    }
  } catch (const std::exception& e) {
    std::cerr << "failed to load detector: " << e.what() << "\n";
    return 2;
  }
  log_info() << "loaded detector" << (model.version.empty() ? "" : " " + model.version) << ": "
             << model.detector->cluster_count() << " clusters, vocabulary of "
             << model.detector->vocab().size() << " actions";

  if (model.detector->degraded_cluster_count() > 0) {
    log_warn() << model.detector->degraded_cluster_count()
               << " cluster(s) degraded to the Markov baseline; verdicts from them carry "
                  "\"degraded\":true";
  }

  install_signal_handlers();
  ScoringServer server(model, config);
  if (server.wal_enabled()) {
    // Surface what a crashed predecessor left behind before serving new
    // traffic; replayed records carry their original sequence numbers.
    std::vector<OutputRecord> recovered;
    server.recover(recovered);
    flush_records(recovered, std::cout, nullptr);
  }
  std::optional<ModelReloader> reloader;
  if (registry) {
    reloader.emplace(server, std::move(*registry), args.real("registry-poll", 0.5),
                     args.flag("shadow"), args.real("canary-fraction", 1.0));
  }
  ModelReloader* reloader_ptr = reloader ? &*reloader : nullptr;

  // Sampled tracing: the first N distinct sessions get their full span
  // tree (enqueue -> monitor step -> report) recorded into a bounded
  // in-memory ring, exported live via /tracez. Off by default: the data
  // path then pays one relaxed atomic load per event.
  const auto trace_sample = static_cast<std::size_t>(args.integer("trace-sample", 0));
  if (trace_sample > 0) {
    trace_events().enable(65536);
    server.set_trace_sampler(std::make_shared<SessionTraceSampler>(trace_sample));
  }

  std::optional<AdminServer> admin;
  if (args.has("admin-port")) {
    AdminConfig admin_config;
    admin_config.port = static_cast<std::uint16_t>(args.integer("admin-port", 0));
    admin_config.infer_kernel =
        nn::infer::infer_mode_name(nn::infer::effective_infer_mode());
    AdminHooks hooks;
    if (reloader_ptr != nullptr) {
      hooks.model_version = [reloader_ptr] { return reloader_ptr->active_version(); };
      hooks.canary_version = [reloader_ptr] { return reloader_ptr->canary_version(); };
    }
    if (!registry_root.empty()) {
      // Surface the learn loop's LEARN_STATUS (written atomically by
      // misusedet_learnd next to the registry) without coupling the two
      // processes: a missing file just reads as "no learn loop".
      const std::string learn_status_path = registry_root + "/LEARN_STATUS";
      hooks.learn_status = [learn_status_path]() -> std::string {
        return read_file(learn_status_path).value_or(std::string{});
      };
    }
    try {
      admin.emplace(server, admin_config, hooks);
    } catch (const std::exception& e) {
      std::cerr << "failed to start the admin endpoint: " << e.what() << "\n";
      return 2;
    }
  }

  if (args.has("listen")) {
    const std::uint16_t listen_port = static_cast<std::uint16_t>(args.integer("listen", 0));
    const std::string io = args.str("io", "threads");
    if (io == "epoll") return run_epoll(server, listen_port, reloader_ptr);
    if (io != "threads") {
      std::cerr << "unknown --io mode '" << io << "' (threads | epoll)\n";
      return 2;
    }
    return run_tcp(server, listen_port, reloader_ptr);
  }
  return run_pipe(server, static_cast<std::size_t>(args.integer("batch", 256)), reloader_ptr);
}

}  // namespace
}  // namespace misuse::serve

int main(int argc, char** argv) { return misuse::serve::serve_main(argc, argv); }

#include "serve/metrics.hpp"

namespace misuse::serve {

ServeMetrics& serve_metrics() {
  static ServeMetrics instruments{
      metrics().counter("serve.events"),
      metrics().counter("serve.steps"),
      metrics().counter("serve.alarms"),
      metrics().counter("serve.parse_errors"),
      metrics().counter("serve.dropped_events"),
      metrics().counter("serve.sessions_opened"),
      metrics().counter("serve.sessions_evicted"),
      metrics().counter("serve.sessions_finished"),
      metrics().gauge("serve.sessions_active"),
      metrics().gauge("serve.queue_depth"),
      metrics().histogram("serve.step_seconds"),
      metrics().counter("serve.wal_appends"),
      metrics().counter("serve.wal_torn_records"),
      metrics().counter("serve.snapshot_failures"),
      metrics().counter("serve.recovered_events"),
      metrics().counter("serve.recovered_sessions"),
      metrics().counter("serve.replay_skipped"),
      metrics().gauge("serve.degraded_clusters"),
      metrics().counter("serve.swaps"),
      metrics().counter("serve.swap_sessions_rolled"),
      metrics().gauge("serve.model_version"),
      metrics().histogram("serve.swap_pause_seconds"),
      metrics().gauge("serve.drift_micronats"),
      metrics().counter("serve.reload_failures"),
      metrics().gauge("serve.reload_failure_streak"),
      metrics().counter("serve.admin.scrapes"),
      metrics().counter("serve.admin.errors"),
      metrics().counter("serve.shadow.steps"),
      metrics().counter("serve.shadow.sessions"),
      metrics().counter("serve.shadow.verdict_flips"),
      metrics().counter("serve.shadow.unknown_actions"),
      metrics().histogram("serve.shadow.loss_delta"),
  };
  return instruments;
}

}  // namespace misuse::serve

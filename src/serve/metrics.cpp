#include "serve/metrics.hpp"

namespace misuse::serve {

ServeMetrics& serve_metrics() {
  static ServeMetrics instruments{
      metrics().counter("serve.events"),
      metrics().counter("serve.steps"),
      metrics().counter("serve.alarms"),
      metrics().counter("serve.parse_errors"),
      metrics().counter("serve.dropped_events"),
      metrics().counter("serve.sessions_opened"),
      metrics().counter("serve.sessions_evicted"),
      metrics().counter("serve.sessions_finished"),
      metrics().gauge("serve.sessions_active"),
      metrics().gauge("serve.queue_depth"),
      metrics().histogram("serve.step_seconds"),
  };
  return instruments;
}

}  // namespace misuse::serve

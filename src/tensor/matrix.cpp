#include "tensor/matrix.hpp"

#include <cmath>

namespace misuse {

void Matrix::init_uniform(Rng& rng, float scale) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(-scale, scale));
}

void Matrix::init_xavier(Rng& rng) {
  assert(rows_ > 0 && cols_ > 0);
  const float scale = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  init_uniform(rng, scale);
}

void Matrix::init_gaussian(Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

void Matrix::save(BinaryWriter& w) const {
  w.write<std::uint64_t>(rows_);
  w.write<std::uint64_t>(cols_);
  w.write_vector(std::span<const float>(data_));
}

Matrix Matrix::load(BinaryReader& r) {
  const auto rows = static_cast<std::size_t>(r.read<std::uint64_t>());
  const auto cols = static_cast<std::size_t>(r.read<std::uint64_t>());
  auto data = r.read_vector<float>();
  if (data.size() != rows * cols) throw SerializeError("matrix shape/data mismatch");
  return Matrix::from_rows(rows, cols, std::move(data));
}

bool operator==(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.flat()[i] != b.flat()[i]) return false;
  }
  return true;
}

}  // namespace misuse

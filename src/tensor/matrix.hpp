// Dense row-major float32 matrix — the numeric workhorse under the neural
// network, OC-SVM, LDA ensemble matrices, and t-SNE. Single precision
// matches the paper's Keras training; the finite-difference gradient
// checker in tests/ upcasts to double where it must.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols, std::vector<float> data) {
    assert(data.size() == rows * cols);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// Resizes, discarding contents (all elements reset to `fill`).
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Uniform init in [-scale, scale].
  void init_uniform(Rng& rng, float scale);
  /// Xavier/Glorot uniform init for a (fan_in x fan_out)-shaped weight.
  void init_xavier(Rng& rng);
  /// Gaussian init with the given stddev.
  void init_gaussian(Rng& rng, float stddev);

  Matrix transposed() const;

  void save(BinaryWriter& w) const;
  static Matrix load(BinaryReader& r);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

bool operator==(const Matrix& a, const Matrix& b);

}  // namespace misuse

#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace misuse {

void gemm(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  assert(b.rows() == k);
  assert(c.rows() == m && c.cols() == n);
  // i-k-j loop order: the inner j loop streams both B's row k and C's row
  // i sequentially, which vectorizes well and keeps B in cache.
  for (std::size_t i = 0; i < m; ++i) {
    float* ci = c.data() + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const float* ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = alpha * ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_at_b(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c) {
  // C(m x n) = alpha * A^T * B + beta * C with A stored (k x m).
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  assert(b.rows() == k);
  assert(c.rows() == m && c.cols() == n);
  if (beta == 0.0f) {
    c.zero();
  } else if (beta != 1.0f) {
    scale(c.flat(), beta);
  }
  // Walk A and B row-by-row (both sequential); scatter into C rows.
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.data() + p * m;
    const float* bp = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float v = alpha * ap[i];
      if (v == 0.0f) continue;
      float* ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += v * bp[j];
    }
  }
}

void gemm_a_bt(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c) {
  // C(m x n) = alpha * A(m x k) * B(n x k)^T + beta * C.
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  assert(b.cols() == k);
  assert(c.rows() == m && c.cols() == n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (auto& v : x) v *= alpha;
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void sum_rows(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (auto& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = 1.0f / sum;
    for (auto& v : row) v *= inv;
  }
}

void log_softmax(std::span<const float> logits, std::span<float> out) {
  assert(logits.size() == out.size());
  assert(!logits.empty());
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (float v : logits) sum += std::exp(v - mx);
  const float log_z = mx + std::log(sum);
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
}

std::size_t argmax(std::span<const float> xs) {
  assert(!xs.empty());
  return static_cast<std::size_t>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float squared_norm(std::span<const float> xs) { return dot(xs, xs); }

void tanh_inplace(std::span<float> xs) {
  for (auto& v : xs) v = std::tanh(v);
}

void sigmoid_inplace(std::span<float> xs) {
  for (auto& v : xs) v = 1.0f / (1.0f + std::exp(-v));
}

}  // namespace misuse

#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <optional>

#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace misuse {

namespace {

// 2*m*n*k at which kAuto fans a GEMM out over the pool. Below this the
// dispatch overhead beats the win; the LSTM training matmuls at paper
// scale (batch x vocab x 4*hidden) sit comfortably above it.
constexpr std::size_t kGemmParallelFlops = std::size_t{1} << 20;

// Flop count below which GEMMs go unrecorded: the per-step monitor
// matmuls are tiny and hot, and even a clock read per call would eat the
// <5% overhead budget. Training-sized GEMMs all clear this bar.
constexpr std::size_t kGemmMetricsFlops = std::size_t{1} << 16;

// Accumulates gemm.calls / gemm.flops / gemm.nanos for large GEMMs.
class GemmMetricsScope {
 public:
  explicit GemmMetricsScope(std::size_t flops) : flops_(flops) {
    if (flops_ >= kGemmMetricsFlops && metrics_enabled()) timer_.emplace();
  }
  ~GemmMetricsScope() {
    if (!timer_) return;
    static Counter& calls = metrics().counter("gemm.calls");
    static Counter& flops = metrics().counter("gemm.flops");
    static Counter& nanos = metrics().counter("gemm.nanos");
    calls.inc();
    flops.inc(flops_);
    nanos.inc(static_cast<std::uint64_t>(timer_->seconds() * 1e9));
  }
  GemmMetricsScope(const GemmMetricsScope&) = delete;
  GemmMetricsScope& operator=(const GemmMetricsScope&) = delete;

 private:
  std::size_t flops_;
  std::optional<Timer> timer_;
};

bool use_parallel(GemmPolicy policy, std::size_t m, std::size_t n, std::size_t k) {
  switch (policy) {
    case GemmPolicy::kSerial:
      return false;
    case GemmPolicy::kParallel:
      return true;
    case GemmPolicy::kAuto:
      return m > 1 && 2 * m * n * k >= kGemmParallelFlops && global_thread_count() > 1;
  }
  return false;
}

// Partitions [0, m) into contiguous row blocks and runs `body(lo, hi)`
// for each block on the pool. Blocks are disjoint, so the kernels below
// write disjoint rows of C and stay race-free; each element keeps the
// serial accumulation order, so results are bit-identical to the serial
// path at any thread count.
template <typename Body>
void for_row_blocks(std::size_t m, const Body& body) {
  ThreadPool& pool = global_pool();
  const std::size_t blocks = std::max<std::size_t>(1, std::min(m, pool.size() * 4));
  const std::size_t rows_per_block = (m + blocks - 1) / blocks;
  pool.parallel_for(0, blocks, [&](std::size_t block) {
    const std::size_t lo = block * rows_per_block;
    const std::size_t hi = std::min(m, lo + rows_per_block);
    if (lo < hi) body(lo, hi);
  });
}

// C rows [row_begin, row_end) of C = alpha * A * B + beta * C.
void gemm_rows(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
               std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  // i-k-j loop order: the inner j loop streams both B's row k and C's row
  // i sequentially, which vectorizes well and keeps B in cache.
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c.data() + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const float* ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = alpha * ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C rows [row_begin, row_end) of C = alpha * A^T * B + beta * C with A
// stored (k x m). The p loop stays outermost within the block, so every
// C element sees the same p-ascending accumulation order as the serial
// whole-matrix kernel.
void gemm_at_b_rows(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
                    std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* ci = c.data() + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.data() + p * m;
    const float* bp = b.data() + p * n;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float v = alpha * ap[i];
      if (v == 0.0f) continue;
      float* ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += v * bp[j];
    }
  }
}

// C rows [row_begin, row_end) of C = alpha * A * B^T + beta * C with B
// stored (n x k).
void gemm_a_bt_rows(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
                    std::size_t row_begin, std::size_t row_end) {
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

}  // namespace

std::size_t gemm_parallel_threshold() { return kGemmParallelFlops; }

void gemm(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
          GemmPolicy policy) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  assert(b.rows() == k);
  assert(c.rows() == m && c.cols() == n);
  GemmMetricsScope gemm_metrics(2 * m * n * k);
  if (use_parallel(policy, m, n, k)) {
    for_row_blocks(m, [&](std::size_t lo, std::size_t hi) {
      gemm_rows(alpha, a, b, beta, c, lo, hi);
    });
  } else {
    gemm_rows(alpha, a, b, beta, c, 0, m);
  }
}

void gemm_at_b(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
               GemmPolicy policy) {
  // C(m x n) = alpha * A^T * B + beta * C with A stored (k x m).
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  assert(b.rows() == k);
  assert(c.rows() == m && c.cols() == n);
  GemmMetricsScope gemm_metrics(2 * m * n * k);
  if (use_parallel(policy, m, n, k)) {
    for_row_blocks(m, [&](std::size_t lo, std::size_t hi) {
      gemm_at_b_rows(alpha, a, b, beta, c, lo, hi);
    });
  } else {
    gemm_at_b_rows(alpha, a, b, beta, c, 0, m);
  }
}

void gemm_a_bt(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
               GemmPolicy policy) {
  // C(m x n) = alpha * A(m x k) * B(n x k)^T + beta * C.
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  assert(b.cols() == k);
  assert(c.rows() == m && c.cols() == n);
  GemmMetricsScope gemm_metrics(2 * m * n * k);
  if (use_parallel(policy, m, n, k)) {
    for_row_blocks(m, [&](std::size_t lo, std::size_t hi) {
      gemm_a_bt_rows(alpha, a, b, beta, c, lo, hi);
    });
  } else {
    gemm_a_bt_rows(alpha, a, b, beta, c, 0, m);
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (auto& v : x) v *= alpha;
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void sum_rows(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    (void)softmax_row(row, row);
  }
}

void log_softmax(std::span<const float> logits, std::span<float> out) {
  assert(logits.size() == out.size());
  assert(!logits.empty());
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (float v : logits) sum += std::exp(v - mx);
  const float log_z = mx + std::log(sum);
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
}

std::size_t argmax(std::span<const float> xs) {
  assert(!xs.empty());
  return static_cast<std::size_t>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float squared_norm(std::span<const float> xs) { return dot(xs, xs); }

void tanh_inplace(std::span<float> xs) {
  for (auto& v : xs) v = std::tanh(v);
}

void sigmoid_inplace(std::span<float> xs) {
  for (auto& v : xs) v = 1.0f / (1.0f + std::exp(-v));
}

}  // namespace misuse

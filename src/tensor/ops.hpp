// Matrix/vector kernels. GEMM dominates LSTM training time, so it is
// register-blocked over the K loop with the B operand walked row-wise for
// cache-friendly access; everything else is straightforward.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace misuse {

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n).
void gemm(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c);

/// C = alpha * A^T(m x k; stored k x m... ) — explicit variants so callers
/// never materialize transposes on the hot path:
/// C(m x n) += alpha * A(k x m)^T * B(k x n) + beta * C  (used for weight grads)
void gemm_at_b(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c);
/// C(m x n) = alpha * A(m x k) * B(n x k)^T + beta * C   (used for input grads)
void gemm_a_bt(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c);

/// y = alpha * x + y over equal-length spans.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Elementwise in-place scale.
void scale(std::span<float> x, float alpha);

/// Adds a row vector (bias) to every row of m.
void add_row_broadcast(Matrix& m, std::span<const float> bias);

/// Sums the rows of m into out (length m.cols()); used for bias grads.
void sum_rows(const Matrix& m, std::span<float> out);

/// Numerically stable in-place softmax over each row.
void softmax_rows(Matrix& m);

/// Stable log-softmax of a single row into out.
void log_softmax(std::span<const float> logits, std::span<float> out);

std::size_t argmax(std::span<const float> xs);

float dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
float squared_norm(std::span<const float> xs);

/// Elementwise tanh / sigmoid, in place.
void tanh_inplace(std::span<float> xs);
void sigmoid_inplace(std::span<float> xs);

}  // namespace misuse

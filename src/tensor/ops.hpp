// Matrix/vector kernels. GEMM dominates LSTM training time, so it is
// register-blocked over the K loop with the B operand walked row-wise for
// cache-friendly access; everything else is straightforward.
//
// Large GEMMs are additionally row-partitioned over the global thread
// pool: each task owns a contiguous block of C's rows, and every element
// of C is accumulated in exactly the serial loop order, so the parallel
// kernels are bit-identical to the serial ones (0 ULP) at any thread
// count.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "tensor/matrix.hpp"

namespace misuse {

/// Log-partition pieces of one softmax row: (max, log(sum exp(shifted))).
/// The cross-entropy loss is -(logit[target] - max - log_sum).
struct RowSoftmax {
  float max;
  float log_sum;
};

/// Numerically stable softmax of `logits_row` into `probs_row` (aliasing
/// the two spans is fine — each element is read before it is written).
/// The sum is accumulated in double so the normalizer doesn't lose bits
/// on wide rows; every consumer of a softmax'd distribution (training
/// loss, NextActionModel::step, the fused inference kernels) shares this
/// one definition so their outputs stay bit-identical to each other.
inline RowSoftmax softmax_row(std::span<const float> logits_row, std::span<float> probs_row) {
  const float mx = *std::max_element(logits_row.begin(), logits_row.end());
  double sum = 0.0;
  for (std::size_t j = 0; j < logits_row.size(); ++j) {
    const float e = std::exp(logits_row[j] - mx);
    probs_row[j] = e;
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& p : probs_row) p *= inv;
  return {mx, static_cast<float>(std::log(sum))};
}

/// Execution policy of the GEMM kernels. kAuto parallelizes across the
/// global pool when the flop count clears gemm_parallel_threshold() and
/// more than one lane is available; kSerial / kParallel force a path
/// (used by tests and benchmarks to pin the comparison).
enum class GemmPolicy { kAuto, kSerial, kParallel };

/// 2*m*n*k flop count at or above which kAuto goes parallel.
std::size_t gemm_parallel_threshold();

/// C = alpha * A(m x k) * B(k x n) + beta * C(m x n).
void gemm(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
          GemmPolicy policy = GemmPolicy::kAuto);

/// C = alpha * A^T(m x k; stored k x m... ) — explicit variants so callers
/// never materialize transposes on the hot path:
/// C(m x n) += alpha * A(k x m)^T * B(k x n) + beta * C  (used for weight grads)
void gemm_at_b(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
               GemmPolicy policy = GemmPolicy::kAuto);
/// C(m x n) = alpha * A(m x k) * B(n x k)^T + beta * C   (used for input grads)
void gemm_a_bt(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
               GemmPolicy policy = GemmPolicy::kAuto);

/// y = alpha * x + y over equal-length spans.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Elementwise in-place scale.
void scale(std::span<float> x, float alpha);

/// Adds a row vector (bias) to every row of m.
void add_row_broadcast(Matrix& m, std::span<const float> bias);

/// Sums the rows of m into out (length m.cols()); used for bias grads.
void sum_rows(const Matrix& m, std::span<float> out);

/// Numerically stable in-place softmax over each row.
void softmax_rows(Matrix& m);

/// Stable log-softmax of a single row into out.
void log_softmax(std::span<const float> logits, std::span<float> out);

std::size_t argmax(std::span<const float> xs);

float dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
float squared_norm(std::span<const float> xs);

/// Elementwise tanh / sigmoid, in place.
void tanh_inplace(std::span<float> xs);
void sigmoid_inplace(std::span<float> xs);

}  // namespace misuse

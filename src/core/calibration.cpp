#include "core/calibration.hpp"

#include <algorithm>
#include <cassert>

namespace misuse::core {

CalibrationResult calibrate_alarm_threshold(const MisuseDetector& detector,
                                            const SessionStore& store,
                                            std::span<const std::size_t> normal_sessions,
                                            double session_fpr_budget) {
  assert(session_fpr_budget >= 0.0 && session_fpr_budget < 1.0);
  // A session alarms iff its minimum per-action likelihood is below the
  // threshold, so the session-level statistic to collect is that minimum.
  std::vector<double> min_likelihoods;
  for (std::size_t i : normal_sessions) {
    const auto prediction = detector.predict(store.at(i).view());
    if (prediction.score.likelihoods.empty()) continue;
    min_likelihoods.push_back(*std::min_element(prediction.score.likelihoods.begin(),
                                                prediction.score.likelihoods.end()));
  }

  CalibrationResult result;
  result.calibration_sessions = min_likelihoods.size();
  if (min_likelihoods.empty()) return result;

  std::sort(min_likelihoods.begin(), min_likelihoods.end());
  // Allow the budgeted number of sessions to fall below the threshold.
  const auto allowed = static_cast<std::size_t>(
      session_fpr_budget * static_cast<double>(min_likelihoods.size()));
  // Threshold just below the (allowed+1)-th smallest minimum: exactly
  // `allowed` sessions would alarm.
  result.alarm_likelihood = std::max(min_likelihoods[allowed] * (1.0 - 1e-9), 0.0);
  std::size_t alarming = 0;
  for (double m : min_likelihoods) {
    if (m < result.alarm_likelihood) ++alarming;
  }
  result.session_false_alarm_rate =
      static_cast<double>(alarming) / static_cast<double>(min_likelihoods.size());
  return result;
}

CalibrationResult calibrate_on_validation_splits(const MisuseDetector& detector,
                                                 const SessionStore& store,
                                                 double session_fpr_budget) {
  std::vector<std::size_t> valid;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& v = detector.cluster(c).valid;
    valid.insert(valid.end(), v.begin(), v.end());
  }
  return calibrate_alarm_threshold(detector, store, valid, session_fpr_budget);
}

}  // namespace misuse::core

#include "core/observability.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace misuse::core {

MonitorMetrics& monitor_metrics() {
  static MonitorMetrics instruments{
      metrics().counter("monitor.steps"),
      metrics().counter("monitor.alarms"),
      metrics().counter("monitor.trend_alarms"),
      metrics().counter("monitor.disagree_steps"),
      metrics().counter("monitor.sessions"),
      metrics().histogram("monitor.observe_seconds"),
  };
  return instruments;
}

double monitor_disagreement_rate() {
  const MonitorMetrics& m = monitor_metrics();
  const std::uint64_t steps = m.steps.value();
  return steps == 0 ? 0.0
                    : static_cast<double>(m.disagree_steps.value()) / static_cast<double>(steps);
}

void register_core_metrics() {
  (void)monitor_metrics();
  metrics().counter("experiment.cache.hits");
  metrics().counter("experiment.cache.misses");
  metrics().counter("experiment.cache.stale");
  metrics().counter("gemm.calls");
  metrics().counter("gemm.flops");
  metrics().counter("gemm.nanos");
  metrics().counter("lm.epochs_trained");
  metrics().gauge("pool.queue_depth");
  metrics().counter("pool.tasks_executed");
  // The canonical stage skeleton: exports show these spans even for runs
  // that skipped a stage (count 0), e.g. a cache-hit run never trains.
  trace_ensure_path({"experiment.prepare", "corpus.generate"});
  trace_ensure_path({"experiment.prepare", "detector.load"});
  trace_ensure_path({"experiment.prepare", "detector.train", "lda.ensemble", "lda.run"});
  trace_ensure_path({"experiment.prepare", "detector.train", "expert.cluster"});
  trace_ensure_path({"experiment.prepare", "detector.train", "ocsvm.train", "ocsvm.cluster_fit"});
  trace_ensure_path({"experiment.prepare", "detector.train", "lm.train", "lm.cluster_fit",
                     "lm.epoch"});
  trace_ensure_path({"monitor.batch", "monitor.session"});
}

void write_metrics_snapshot(std::ostream& out) {
  register_core_metrics();
  JsonWriter json(out);
  json.begin_object();
  json.key("metrics");
  metrics().write_json(json);
  json.key("trace");
  write_trace_json(json);
  json.end_object();
  out << "\n";
}

bool write_metrics_snapshot_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    log_warn() << "cannot open metrics output file " << path;
    return false;
  }
  write_metrics_snapshot(out);
  return static_cast<bool>(out);
}

void MetricsExport::finish() {
  if (!armed_) return;
  armed_ = false;
  const TraceStats tree = trace_snapshot();
  if (!tree.children.empty()) {
    log_info() << "run stage tree (wall seconds):\n" << format_trace_tree(tree);
  }
  const MonitorMetrics& m = monitor_metrics();
  if (m.steps.value() > 0) {
    log_info() << "monitor telemetry: " << m.steps.value() << " steps, " << m.alarms.value()
               << " alarms (" << m.trend_alarms.value() << " trend), disagreement rate "
               << monitor_disagreement_rate();
  }
  if (path_.empty()) {
    // No destination file: still flush a final registry snapshot to the
    // log so a drained process leaves its counters on record. One line,
    // registry only (the stage tree was just logged above).
    std::ostringstream out;
    JsonWriter json(out);
    metrics().write_json(json);
    log_info() << "final metrics snapshot: " << out.str();
  } else if (write_metrics_snapshot_file(path_)) {
    log_info() << "metrics snapshot written to " << path_;
  }
}

}  // namespace misuse::core

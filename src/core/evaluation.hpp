// Evaluation helpers shared by the figure benches and the integration
// tests: per-position curve averaging (Figs. 6/7), baseline model
// training (Figs. 5/10), normality summaries (Figs. 8/9/11/12), and the
// ground-truth oracles made possible by the synthetic corpus.
#pragma once

#include <span>
#include <vector>

#include "core/detector.hpp"
#include "lm/language_model.hpp"
#include "sessions/store.hpp"

namespace misuse::core {

/// Accumulates values indexed by position (action number within a
/// session) across many sessions and reports per-position means — the
/// construction behind the paper's "scores averaged over all testing
/// sessions, per action" plots.
class PositionCurve {
 public:
  explicit PositionCurve(std::size_t max_positions);

  void add(std::size_t position, double value);

  std::size_t max_positions() const { return sums_.size(); }
  std::size_t count(std::size_t position) const { return counts_.at(position); }
  double mean(std::size_t position) const;
  /// Sample standard deviation at a position (0 when < 2 samples).
  double stddev(std::size_t position) const;
  /// Highest position with at least `min_count` samples, plus one (i.e. a
  /// usable curve length).
  std::size_t usable_length(std::size_t min_count) const;

 private:
  std::vector<double> sums_;
  std::vector<double> sq_sums_;
  std::vector<std::size_t> counts_;
};

/// Trains a model with the given config on arbitrary store indices (the
/// paper's global and global-subset baselines).
lm::ActionLanguageModel train_baseline_model(const SessionStore& store,
                                             std::span<const std::size_t> indices,
                                             const lm::LmConfig& config_template,
                                             std::size_t vocab, std::uint64_t seed);

/// Next-action loss/accuracy of a model over the given store indices.
lm::EvalStats evaluate_model_on(lm::ActionLanguageModel& model, const SessionStore& store,
                                std::span<const std::size_t> indices);

/// Average likelihood / loss of a set of sessions under per-session
/// scoring (the paper's normality estimation).
struct NormalitySummary {
  double avg_likelihood = 0.0;
  double avg_loss = 0.0;
  double likelihood_stddev = 0.0;
  double loss_stddev = 0.0;
  std::size_t sessions = 0;
};

/// Scores each session with `score` (any callable: session actions ->
/// SessionScore) and summarizes.
template <typename ScoreFn>
NormalitySummary summarize_normality(const SessionStore& store,
                                     std::span<const std::size_t> indices, ScoreFn&& score) {
  std::vector<double> likes, losses;
  for (std::size_t i : indices) {
    const auto s = score(store.at(i).view());
    if (s.likelihoods.empty()) continue;
    likes.push_back(s.avg_likelihood());
    losses.push_back(s.avg_loss());
  }
  NormalitySummary out;
  out.sessions = likes.size();
  if (!likes.empty()) {
    out.avg_likelihood = mean(likes);
    out.avg_loss = mean(losses);
    out.likelihood_stddev = stddev(likes);
    out.loss_stddev = stddev(losses);
  }
  return out;
}

/// All indices 0..n-1 (convenience for whole-store evaluations).
std::vector<std::size_t> all_indices(std::size_t n);

/// Area under the ROC curve for an anomaly score where *lower* values
/// mean "more anomalous": the probability that a random positive
/// (anomalous) item scores below a random negative (normal) one. Ties
/// count 1/2. Returns 0.5 when either class is empty.
double anomaly_auc(std::span<const double> normal_scores,
                   std::span<const double> anomalous_scores);

/// Ground-truth oracle: purity of each detector cluster with respect to
/// the synthetic archetype labels (fraction of the dominant archetype).
std::vector<double> cluster_archetype_purity(const SessionStore& store,
                                             const MisuseDetector& detector);

/// Normalized mutual information between the detector's clustering and
/// the ground-truth archetypes over the clustered sessions (1 = perfect
/// recovery of the generative structure, 0 = independence).
double clustering_nmi(const SessionStore& store, const MisuseDetector& detector);

}  // namespace misuse::core

// MisuseDetector::fine_tune — the incremental-retraining half of the
// continuous-learning loop (src/learn). The paper notes the training
// phase "can be repeated at any moment if security experts notice
// sufficient drift"; a full repeat reruns LDA + expert clustering and
// produces a detector with *different* clusters and vocabulary, which
// cannot be shadow-compared against the active model. This pass instead
// keeps the informed cluster structure fixed and refreshes the weights:
//
//   * each cluster's LSTM is cloned from the parent and warm-start
//     fine-tuned on the windows recently routed to that cluster,
//   * each cluster's OC-SVM is refit where enough fresh data exists
//     (parent boundary kept verbatim otherwise),
//   * the Markov fallbacks accumulate the new windows' transition counts,
//     so the candidate's training_action_counts() — the drift reference —
//     tracks recent behavior,
//   * a reduced LDA fit over the collected windows measures how far the
//     evolving topic structure has moved from each cluster's training
//     distribution (FineTuneClusterStats::topic_alignment) — the signal
//     that weight-only updates are exhausted and a full re-clustering is
//     due.
//
// Determinism contract: per-cluster work fans out over the global pool
// with seeds derived from the cluster index before the fan-out (same
// scheme as train()), so the candidate archive is bit-identical across
// runs and thread counts.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/detector.hpp"
#include "topics/lda.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse::core {

namespace {

/// Cosine similarity between a float topic row and a double count vector.
double alignment_cosine(std::span<const float> topic, std::span<const double> counts) {
  assert(topic.size() == counts.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < topic.size(); ++i) {
    const double a = static_cast<double>(topic[i]);
    const double b = counts[i];
    dot += a * b;
    na += a * a;
    nb += b * b;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

MisuseDetector MisuseDetector::fine_tune(
    const MisuseDetector& parent, const std::vector<std::vector<std::vector<int>>>& cluster_windows,
    const FineTuneConfig& config, FineTuneReport* report) {
  Span tune_span("core.fine_tune");
  const std::size_t k = parent.cluster_count();
  assert(cluster_windows.size() == k);
  if (parent.degraded_cluster_count() > 0) {
    throw SerializeError(
        "fine_tune: parent detector has degraded clusters; fine-tuning a Markov "
        "fallback would publish a candidate that hides the corruption");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (parent.fallbacks_[c] == nullptr) {
      throw SerializeError("fine_tune: parent archive has no Markov fallbacks (v1 archive)");
    }
  }

  MisuseDetector out;
  out.config_ = parent.config_;
  out.vocab_ = parent.vocab_;
  out.clusters_ = parent.clusters_;
  out.reports_ = parent.reports_;
  out.degraded_.assign(k, false);
  out.quant_degraded_.assign(k, false);

  std::size_t total_windows = 0;
  for (const auto& windows : cluster_windows) total_windows += windows.size();

  // Deterministic interleaved train/valid split per cluster: every
  // stride-th window validates, the rest train. Spans point into the
  // caller's vectors, which stay alive for the whole pass.
  const std::size_t stride =
      config.valid_frac > 0.0
          ? std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(1.0 / config.valid_frac)))
          : 0;
  const std::size_t min_sessions = std::max<std::size_t>(1, config.min_cluster_sessions);

  std::vector<std::unique_ptr<lm::ActionLanguageModel>> models(k);
  std::vector<std::vector<lm::EpochStats>> histories(k);
  global_pool().parallel_for(0, k, [&](std::size_t c) {
    Span cluster_span("core.fine_tune.cluster");
    auto model = std::make_unique<lm::ActionLanguageModel>(parent.models_[c]->clone());
    if (cluster_windows[c].size() >= min_sessions) {
      std::vector<std::span<const int>> train_spans, valid_spans;
      for (std::size_t i = 0; i < cluster_windows[c].size(); ++i) {
        if (stride > 0 && (i + 1) % stride == 0) {
          valid_spans.emplace_back(cluster_windows[c][i]);
        } else {
          train_spans.emplace_back(cluster_windows[c][i]);
        }
      }
      lm::FineTuneOptions options;
      options.epochs = config.epochs;
      options.learning_rate = config.learning_rate;
      options.seed = config.seed + 1000 + c;  // same derivation scheme as train()
      histories[c] = model->fine_tune(train_spans, valid_spans, options);
    }
    models[c] = std::move(model);
  });
  out.models_ = std::move(models);
  for (std::size_t c = 0; c < k; ++c) {
    for (const auto& es : histories[c]) out.reports_[c].epochs.push_back(es);
  }

  // Fallbacks accumulate: MarkovChainModel::fit adds counts on top of the
  // parent's, so the candidate's recovered training distribution blends
  // the original corpus with the fresh windows.
  out.fallbacks_.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    auto fallback = std::make_unique<lm::MarkovChainModel>(*parent.fallbacks_[c]);
    if (!cluster_windows[c].empty()) {
      std::vector<std::span<const int>> spans;
      spans.reserve(cluster_windows[c].size());
      for (const auto& window : cluster_windows[c]) spans.emplace_back(window);
      fallback->fit(spans);
    }
    out.fallbacks_.push_back(std::move(fallback));
  }

  {
    std::vector<std::vector<std::span<const int>>> svm_sessions(k);
    for (std::size_t c = 0; c < k; ++c) {
      svm_sessions[c].reserve(cluster_windows[c].size());
      for (const auto& window : cluster_windows[c]) svm_sessions[c].emplace_back(window);
    }
    out.assigner_ = std::make_unique<cluster::ClusterAssigner>(
        cluster::ClusterAssigner::refit(*parent.assigner_, svm_sessions, min_sessions));
  }
  out.build_engines();

  if (report != nullptr) {
    report->windows = total_windows;
    report->clusters.assign(k, FineTuneClusterStats{});
    for (std::size_t c = 0; c < k; ++c) {
      report->clusters[c].sessions = cluster_windows[c].size();
      report->clusters[c].tuned = cluster_windows[c].size() >= min_sessions;
      report->clusters[c].epochs = std::move(histories[c]);
    }
    if (total_windows >= min_sessions) {
      std::vector<std::vector<int>> documents;
      documents.reserve(total_windows);
      for (const auto& windows : cluster_windows) {
        for (const auto& window : windows) documents.push_back(window);
      }
      topics::LdaConfig lda;
      lda.topics = config.lda_topics > 0 ? config.lda_topics : k;
      lda.iterations = config.lda_iterations;
      lda.seed = config.seed;
      const topics::LdaModel refreshed = topics::fit_lda(documents, out.vocab_.size(), lda);
      for (std::size_t c = 0; c < k; ++c) {
        const std::vector<double> reference = out.fallbacks_[c]->action_frequencies();
        double best = 0.0;
        for (std::size_t t = 0; t < refreshed.topics; ++t) {
          best = std::max(best, alignment_cosine(refreshed.topic_action.row(t), reference));
        }
        report->clusters[c].topic_alignment = best;
      }
    }
  }
  return out;
}

}  // namespace misuse::core

#include "core/quant_gate.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace misuse::core {

namespace {

constexpr double kLossFloor = 1e-12;  // matches serve/shadow.cpp's clamp

double step_loss(const OnlineMonitor::StepResult& step) {
  const double likelihood = step.likelihood_voted.value_or(0.0);
  return -std::log(std::max(likelihood, kLossFloor));
}

int sample_index(const std::vector<float>& dist, double u) {
  double acc = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    acc += static_cast<double>(dist[i]);
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(dist.size()) - 1;  // numerical slack at u ~ 1
}

}  // namespace

std::vector<std::vector<int>> sample_gate_sessions(const MisuseDetector& detector,
                                                   const QuantGateConfig& config) {
  std::vector<std::vector<int>> sessions;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const lm::MarkovChainModel* chain = detector.fallback(c);
    if (chain == nullptr) continue;  // v1 archive: no sampling reference
    // One independent stream per cluster, derived before any draws, so a
    // cluster's corpus does not depend on how many clusters precede it.
    Rng rng = Rng::stream(config.seed, c);
    for (std::size_t s = 0; s < config.sessions_per_cluster; ++s) {
      std::vector<int> session;
      session.reserve(config.session_length);
      int current = -1;  // start from the chain's initial distribution
      for (std::size_t t = 0; t < config.session_length; ++t) {
        const std::vector<float> dist = chain->next_distribution(current);
        current = sample_index(dist, rng.uniform());
        session.push_back(current);
      }
      sessions.push_back(std::move(session));
    }
  }
  return sessions;
}

QuantGateResult measure_quant_gate(const MisuseDetector& detector, const QuantGateConfig& config,
                                   std::span<const std::span<const int>> sessions) {
  std::vector<std::vector<int>> synthetic;
  std::vector<std::span<const int>> views;
  if (sessions.empty()) {
    synthetic = sample_gate_sessions(detector, config);
    views.reserve(synthetic.size());
    for (const auto& s : synthetic) views.emplace_back(s);
    sessions = views;
  }

  QuantGateResult result;
  double loss_delta_sum = 0.0;
  for (const auto session : sessions) {
    // Paired replay: same actions, same routing, one monitor on the
    // quantized weights and one forced to floats.
    OnlineMonitor quant(detector, config.monitor, MisuseDetector::ScoringPrecision::kDefault);
    OnlineMonitor full(detector, config.monitor, MisuseDetector::ScoringPrecision::kFloat);
    ++result.sessions;
    for (const int action : session) {
      const auto q = quant.observe(action);
      const auto f = full.observe(action);
      if (!q.likelihood_voted && !f.likelihood_voted) continue;  // first action
      ++result.steps;
      if (q.alarm != f.alarm) ++result.verdict_flips;
      const double delta = std::abs(step_loss(q) - step_loss(f));
      loss_delta_sum += delta;
      result.max_loss_delta = std::max(result.max_loss_delta, delta);
    }
  }
  if (result.steps > 0) {
    result.flip_rate =
        static_cast<double>(result.verdict_flips) / static_cast<double>(result.steps);
    result.mean_loss_delta = loss_delta_sum / static_cast<double>(result.steps);
  }
  result.pass = result.steps > 0 && result.flip_rate <= config.max_flip_rate &&
                result.max_loss_delta <= config.max_loss_delta;
  return result;
}

}  // namespace misuse::core

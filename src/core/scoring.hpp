// Weighted ensemble scoring — the paper's first future-work direction
// (§V): "weighted combination of multiple scores from cluster models
// might give more objective score, taking into account possible
// imprecision of cluster identification."
//
// Instead of committing to the single argmax-scored cluster, the scorer
// turns the OC-SVM scores into softmax weights and scores every action
// under the weight-blended mixture of all cluster models:
//
//   w_c  = softmax(beta * ocsvm_score_c(session))
//   p(a_i | prefix) = sum_c w_c * p_c(a_i | prefix)
//
// beta controls how sharply the mixture concentrates on the best-matching
// cluster; beta -> infinity recovers the paper's argmax routing.
#pragma once

#include <span>
#include <vector>

#include "core/detector.hpp"

namespace misuse::core {

struct WeightedScoringConfig {
  /// Softmax temperature over OC-SVM scores. OC-SVM decision values live
  /// on a small scale (|f| ~ 1e-2 on typical data), so beta is large.
  double beta = 200.0;
};

class WeightedEnsembleScorer {
 public:
  WeightedEnsembleScorer(const MisuseDetector& detector, const WeightedScoringConfig& config);

  /// Mixture weights for a session (softmax of its OC-SVM scores).
  std::vector<double> mixture_weights(std::span<const int> actions) const;

  /// Per-action likelihoods/losses under the weighted mixture of all
  /// cluster models; same contract as NextActionModel::score_session.
  nn::NextActionModel::SessionScore score_session(std::span<const int> actions) const;

 private:
  const MisuseDetector& detector_;
  WeightedScoringConfig config_;
};

/// Softmax of arbitrary real scores with temperature beta; exposed for
/// tests.
std::vector<double> softmax_weights(std::span<const double> scores, double beta);

}  // namespace misuse::core

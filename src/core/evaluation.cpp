#include "core/evaluation.hpp"

#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

namespace misuse::core {

PositionCurve::PositionCurve(std::size_t max_positions)
    : sums_(max_positions, 0.0), sq_sums_(max_positions, 0.0), counts_(max_positions, 0) {
  assert(max_positions > 0);
}

void PositionCurve::add(std::size_t position, double value) {
  if (position >= sums_.size()) return;  // beyond the plotted range
  sums_[position] += value;
  sq_sums_[position] += value * value;
  ++counts_[position];
}

double PositionCurve::mean(std::size_t position) const {
  const std::size_t n = counts_.at(position);
  return n == 0 ? 0.0 : sums_[position] / static_cast<double>(n);
}

double PositionCurve::stddev(std::size_t position) const {
  const std::size_t n = counts_.at(position);
  if (n < 2) return 0.0;
  const double m = mean(position);
  const double var =
      (sq_sums_[position] - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::size_t PositionCurve::usable_length(std::size_t min_count) const {
  std::size_t length = 0;
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    if (counts_[p] >= min_count) length = p + 1;
  }
  return length;
}

lm::ActionLanguageModel train_baseline_model(const SessionStore& store,
                                             std::span<const std::size_t> indices,
                                             const lm::LmConfig& config_template,
                                             std::size_t vocab, std::uint64_t seed) {
  lm::LmConfig config = config_template;
  config.vocab = vocab;
  config.seed = seed;
  lm::ActionLanguageModel model(config);
  std::vector<std::span<const int>> sessions;
  sessions.reserve(indices.size());
  for (std::size_t i : indices) sessions.push_back(store.at(i).view());
  model.fit(sessions, {});
  return model;
}

lm::EvalStats evaluate_model_on(lm::ActionLanguageModel& model, const SessionStore& store,
                                std::span<const std::size_t> indices) {
  std::vector<std::span<const int>> sessions;
  sessions.reserve(indices.size());
  for (std::size_t i : indices) sessions.push_back(store.at(i).view());
  return model.evaluate(sessions);
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

double anomaly_auc(std::span<const double> normal_scores,
                   std::span<const double> anomalous_scores) {
  if (normal_scores.empty() || anomalous_scores.empty()) return 0.5;
  double wins = 0.0;
  for (double a : anomalous_scores) {
    for (double n : normal_scores) {
      if (a < n) wins += 1.0;
      else if (a == n) wins += 0.5;
    }
  }
  return wins / (static_cast<double>(normal_scores.size()) *
                 static_cast<double>(anomalous_scores.size()));
}

std::vector<double> cluster_archetype_purity(const SessionStore& store,
                                             const MisuseDetector& detector) {
  std::vector<double> purity;
  purity.reserve(detector.cluster_count());
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    std::map<int, std::size_t> counts;
    for (std::size_t i : detector.cluster(c).members) {
      ++counts[store.at(i).archetype];
    }
    std::size_t total = 0, peak = 0;
    for (const auto& [arch, n] : counts) {
      total += n;
      peak = std::max(peak, n);
    }
    purity.push_back(total == 0 ? 0.0 : static_cast<double>(peak) / static_cast<double>(total));
  }
  return purity;
}

double clustering_nmi(const SessionStore& store, const MisuseDetector& detector) {
  // Joint counts over (cluster, archetype) for all clustered sessions.
  std::map<std::pair<std::size_t, int>, double> joint;
  std::map<std::size_t, double> cluster_marginal;
  std::map<int, double> archetype_marginal;
  double total = 0.0;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    for (std::size_t i : detector.cluster(c).members) {
      const int a = store.at(i).archetype;
      joint[{c, a}] += 1.0;
      cluster_marginal[c] += 1.0;
      archetype_marginal[a] += 1.0;
      total += 1.0;
    }
  }
  if (total <= 0.0) return 0.0;

  double mutual = 0.0;
  for (const auto& [key, n] : joint) {
    const double p_xy = n / total;
    const double p_x = cluster_marginal.at(key.first) / total;
    const double p_y = archetype_marginal.at(key.second) / total;
    mutual += p_xy * std::log(p_xy / (p_x * p_y));
  }
  const auto entropy = [total](const auto& marginal) {
    double h = 0.0;
    for (const auto& [key, n] : marginal) {
      const double p = n / total;
      h -= p * std::log(p);
    }
    return h;
  };
  const double h_c = entropy(cluster_marginal);
  const double h_a = entropy(archetype_marginal);
  if (h_c <= 0.0 || h_a <= 0.0) return 0.0;
  return mutual / std::sqrt(h_c * h_a);
}

}  // namespace misuse::core

#include "core/scoring.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace misuse::core {

std::vector<double> softmax_weights(std::span<const double> scores, double beta) {
  assert(!scores.empty());
  const double mx = *std::max_element(scores.begin(), scores.end());
  std::vector<double> out(scores.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out[i] = std::exp(beta * (scores[i] - mx));
    sum += out[i];
  }
  for (auto& w : out) w /= sum;
  return out;
}

WeightedEnsembleScorer::WeightedEnsembleScorer(const MisuseDetector& detector,
                                               const WeightedScoringConfig& config)
    : detector_(detector), config_(config) {}

std::vector<double> WeightedEnsembleScorer::mixture_weights(std::span<const int> actions) const {
  return softmax_weights(detector_.assigner().scores(actions), config_.beta);
}

nn::NextActionModel::SessionScore WeightedEnsembleScorer::score_session(
    std::span<const int> actions) const {
  nn::NextActionModel::SessionScore score;
  if (actions.size() < 2) return score;
  const std::vector<double> weights = mixture_weights(actions);
  const std::size_t k = detector_.cluster_count();

  // Advance every cluster model in lockstep; the mixture prediction at
  // each step blends their next-action distributions.
  std::vector<nn::ModelState> states;
  states.reserve(k);
  for (std::size_t c = 0; c < k; ++c) states.push_back(detector_.model(c).make_state());

  std::size_t correct = 0;
  std::vector<float> mixture;
  for (std::size_t i = 0; i + 1 < actions.size(); ++i) {
    mixture.assign(detector_.vocab().size(), 0.0f);
    for (std::size_t c = 0; c < k; ++c) {
      const auto dist = detector_.model(c).step(states[c], actions[i]);
      const auto w = static_cast<float>(weights[c]);
      for (std::size_t a = 0; a < mixture.size(); ++a) mixture[a] += w * dist[a];
    }
    const auto next = static_cast<std::size_t>(actions[i + 1]);
    const double p = std::max(static_cast<double>(mixture[next]), 1e-12);
    score.likelihoods.push_back(p);
    score.losses.push_back(-std::log(p));
    if (static_cast<std::size_t>(
            std::max_element(mixture.begin(), mixture.end()) - mixture.begin()) == next) {
      ++correct;
    }
  }
  score.accuracy = static_cast<double>(correct) / static_cast<double>(score.likelihoods.size());
  return score;
}

}  // namespace misuse::core

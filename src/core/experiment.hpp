// Shared experiment scaffolding for the bench binaries that regenerate
// the paper's figures. Centralizes:
//
//   * the default (CPU-friendly) and --paper-scale parameterizations,
//   * CLI parsing, so every bench accepts the same flags,
//   * deterministic corpus generation via the portal simulator, and
//   * a trained-pipeline cache: training the detector once and reusing it
//     across the figure benches (the corpus is regenerated bit-identically
//     from its seed, so cached cluster indices remain valid).
#pragma once

#include <optional>
#include <string>

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace misuse::core {

struct ExperimentConfig {
  synth::PortalConfig portal;
  DetectorConfig detector;
  std::size_t random_test_sessions = 400;  // size of the §IV-D artificial set
  bool use_cache = true;
  std::string results_dir = "results";
  /// Where the end-of-run JSON metrics snapshot goes; empty = no file.
  /// Never part of the fingerprint — observability does not change what
  /// is computed, only what is recorded about it (same rule as
  /// --threads).
  std::string metrics_out;

  /// Reads flags: --sessions --users --actions --hidden --epochs --window
  /// --batch --clusters --lda-iters --seed --mode --misuse-fraction
  /// --paper-scale --no-cache --results-dir --log-level --threads
  /// --metrics-out (--threads resizes the global pool; 1 = exact serial
  /// path; the MISUSEDET_THREADS environment variable sets the default;
  /// --metrics-out defaults to MISUSEDET_METRICS, and --log-level to
  /// MISUSEDET_LOG_LEVEL).
  static ExperimentConfig from_cli(const CliArgs& args);

  /// Stable hash of every field that influences training; names the cache
  /// entry.
  std::uint64_t fingerprint() const;
};

/// A fully prepared experiment: the synthetic corpus plus the trained
/// pipeline (from cache when available).
struct Experiment {
  ExperimentConfig config;
  synth::Portal portal;
  SessionStore store;
  MisuseDetector detector;
  /// Fires at end of run (when the Experiment leaves scope in main):
  /// logs the stage tree and writes config.metrics_out if set.
  MetricsExport metrics_export;

  /// Generates the corpus and trains or loads the detector.
  static Experiment prepare(const ExperimentConfig& config);

  /// Union of the per-cluster test splits with their cluster ids — the
  /// paper's "united testing dataset" (§IV-C).
  std::vector<std::pair<std::size_t, std::size_t>> united_test_set() const;  // (session, cluster)
};

/// Prints the table to stdout and writes `<results_dir>/<name>.csv`.
void emit_table(const Table& table, const std::string& results_dir, const std::string& name);

}  // namespace misuse::core

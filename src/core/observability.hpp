// Pipeline-wide instrument panel: the canonical metric/span names of the
// detection pipeline, the monitor's telemetry bundle, and the JSON
// snapshot exporter behind --metrics-out / MISUSEDET_METRICS.
//
// Every instrument is registered eagerly by register_core_metrics(), so
// an exported snapshot always carries the full panel — a counter at 0 or
// a stage span with count 0 says "instrumented but did not fire", which
// is operationally different from "not instrumented".
#pragma once

#include <iosfwd>
#include <string>

#include "util/metrics.hpp"

namespace misuse::core {

/// Telemetry of the online monitor (§IV-C), shared by every
/// OnlineMonitor instance in the process:
///   * steps / alarms / trend_alarms: volume and alarm pressure,
///   * disagree_steps: steps where the argmax strategy and the frozen
///     vote disagreed on the cluster (the Fig. 7 gap, now queryable),
///   * sessions: monitors reset or constructed (session starts),
///   * observe_seconds: per-step scoring latency histogram.
struct MonitorMetrics {
  Counter& steps;
  Counter& alarms;
  Counter& trend_alarms;
  Counter& disagree_steps;
  Counter& sessions;
  HistogramMetric& observe_seconds;
};

MonitorMetrics& monitor_metrics();

/// Fraction of observed steps where argmax routing and the frozen vote
/// named different clusters (0 when nothing was monitored yet).
double monitor_disagreement_rate();

/// Registers every pipeline instrument and the canonical stage-span
/// skeleton (experiment.prepare -> detector.train -> lda.ensemble /
/// ocsvm.train / lm.train, monitor.batch). Idempotent.
void register_core_metrics();

/// One JSON document: {"metrics": <registry>, "trace": <stage tree>}.
void write_metrics_snapshot(std::ostream& out);

/// write_metrics_snapshot to a file; logs and returns false on failure.
bool write_metrics_snapshot_file(const std::string& path);

/// End-of-run hook. Owned by Experiment so every bench binary inherits
/// it: when the run ends (destructor), logs the aggregated stage tree at
/// info level and, if a path was configured, writes the JSON snapshot.
/// With an empty path the registry snapshot is still logged (one INFO
/// line), so a drained server leaves its final counters on record even
/// when --metrics-out was never set.
class MetricsExport {
 public:
  MetricsExport() = default;
  explicit MetricsExport(std::string path) : path_(std::move(path)), armed_(true) {}
  MetricsExport(MetricsExport&& other) noexcept
      : path_(std::move(other.path_)), armed_(other.armed_) {
    other.armed_ = false;
  }
  MetricsExport& operator=(MetricsExport&& other) noexcept {
    if (this != &other) {
      finish();
      path_ = std::move(other.path_);
      armed_ = other.armed_;
      other.armed_ = false;
    }
    return *this;
  }
  MetricsExport(const MetricsExport&) = delete;
  MetricsExport& operator=(const MetricsExport&) = delete;
  ~MetricsExport() { finish(); }

  /// Runs the end-of-run export now (idempotent).
  void finish();

 private:
  std::string path_;
  bool armed_ = false;
};

}  // namespace misuse::core

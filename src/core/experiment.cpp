#include "core/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse::core {

namespace {
void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = splitmix64(h);
}
}  // namespace

ExperimentConfig ExperimentConfig::from_cli(const CliArgs& args) {
  ExperimentConfig config;
  // MISUSEDET_LOG_LEVEL already set the startup default; the flag wins
  // when present.
  if (args.has("log-level")) set_log_level(parse_log_level(args.str("log-level", "info")));
  // Metrics snapshot destination. Like --threads, never fingerprinted.
  const char* metrics_env = std::getenv("MISUSEDET_METRICS");
  config.metrics_out = args.str("metrics-out", metrics_env != nullptr ? metrics_env : "");
  // Execution width. Never part of the fingerprint: the determinism
  // contract (see util/thread_pool.hpp) makes results identical at any
  // thread count, so cached detectors stay valid across --threads.
  if (args.has("threads")) {
    // Negative values would wrap to a huge size_t; treat them as "auto".
    const std::int64_t threads = std::max<std::int64_t>(0, args.integer("threads", 0));
    set_global_threads(static_cast<std::size_t>(threads));
  }
  const bool paper = args.flag("paper-scale");

  // Corpus scale.
  config.portal.sessions = static_cast<std::size_t>(args.integer("sessions", paper ? 15000 : 3000));
  config.portal.users = static_cast<std::size_t>(args.integer("users", paper ? 1400 : 300));
  config.portal.action_count =
      static_cast<std::size_t>(args.integer("actions", paper ? 300 : 100));
  config.portal.seed = static_cast<std::uint64_t>(args.integer("seed", 42));
  config.portal.misuse_fraction = args.real("misuse-fraction", 0.0);

  // Topic-model ensemble.
  config.detector.ensemble.topic_counts =
      paper ? std::vector<std::size_t>{10, 13, 16, 20} : std::vector<std::size_t>{10, 13, 16};
  config.detector.ensemble.iterations =
      static_cast<std::size_t>(args.integer("lda-iters", paper ? 150 : 60));
  config.detector.ensemble.seed = config.portal.seed + 1;

  // Expert policy.
  config.detector.expert.target_clusters =
      static_cast<std::size_t>(args.integer("clusters", 13));
  config.detector.expert.min_cluster_sessions =
      static_cast<std::size_t>(args.integer("min-cluster-sessions", paper ? 100 : 20));

  // Language models (paper hyperparameters at --paper-scale; §IV-A).
  // Full-sequence mode folds a whole session's windows into one example,
  // so its effective batch is far larger than the windowed scheme's 32;
  // the defaults compensate with a smaller batch and a higher learning
  // rate (tuned empirically; the paper's exact lr 0.001 / batch 32 apply
  // to --mode=windowed).
  const bool windowed = args.str("mode", "fullseq") == "windowed";
  config.detector.lm.batching.mode =
      windowed ? lm::BatchingMode::kWindowed : lm::BatchingMode::kFullSequence;
  config.detector.lm.hidden = static_cast<std::size_t>(args.integer("hidden", paper ? 256 : 48));
  config.detector.lm.layers = static_cast<std::size_t>(args.integer("layers", 1));
  config.detector.lm.embedding_dim =
      static_cast<std::size_t>(args.integer("embedding", 0));
  config.detector.lm.cell =
      args.str("cell", "lstm") == "gru" ? nn::CellKind::kGru : nn::CellKind::kLstm;
  config.detector.lm.dropout = static_cast<float>(args.real("dropout", 0.4));
  config.detector.lm.learning_rate =
      static_cast<float>(args.real("lr", windowed ? 1e-3 : 1e-2));
  config.detector.lm.epochs =
      static_cast<std::size_t>(args.integer("epochs", paper ? 15 : 30));
  config.detector.lm.patience = static_cast<std::size_t>(args.integer("patience", 3));
  config.detector.lm.batching.window =
      static_cast<std::size_t>(args.integer("window", paper ? 100 : 64));
  config.detector.lm.batching.batch_size =
      static_cast<std::size_t>(args.integer("batch", windowed ? 32 : 8));

  // OC-SVM routing.
  config.detector.assigner.svm.nu = args.real("nu", 0.1);
  config.detector.assigner.svm.max_training_points =
      static_cast<std::size_t>(args.integer("svm-max-points", paper ? 2000 : 800));
  config.detector.assigner.vote_actions =
      static_cast<std::size_t>(args.integer("vote-actions", 15));
  config.detector.assigner.features.normalize = args.flag("normalize-features", false);

  config.detector.seed = config.portal.seed + 2;
  config.random_test_sessions =
      static_cast<std::size_t>(args.integer("random-sessions", paper ? 2000 : 400));
  // "--no-cache" arrives as cache=false through the CLI's no- prefix rule.
  config.use_cache = args.flag("cache", true);
  config.results_dir = args.str("results-dir", "results");
  return config;
}

std::uint64_t ExperimentConfig::fingerprint() const {
  std::uint64_t h = 0x6d697375736564ULL;  // "misused"
  mix(h, portal.sessions);
  mix(h, portal.users);
  mix(h, portal.action_count);
  mix(h, portal.seed);
  mix(h, static_cast<std::uint64_t>(portal.misuse_fraction * 1e6));
  for (std::size_t k : detector.ensemble.topic_counts) mix(h, k);
  mix(h, detector.ensemble.iterations);
  mix(h, detector.expert.target_clusters);
  mix(h, detector.expert.min_cluster_sessions);
  mix(h, detector.lm.hidden);
  mix(h, detector.lm.layers);
  mix(h, detector.lm.embedding_dim);
  mix(h, static_cast<std::uint64_t>(detector.lm.cell));
  mix(h, static_cast<std::uint64_t>(detector.lm.dropout * 1e6));
  mix(h, static_cast<std::uint64_t>(detector.lm.learning_rate * 1e9));
  mix(h, detector.lm.epochs);
  mix(h, detector.lm.patience);
  mix(h, detector.lm.batching.window);
  mix(h, detector.lm.batching.batch_size);
  mix(h, static_cast<std::uint64_t>(detector.lm.batching.mode));
  mix(h, static_cast<std::uint64_t>(detector.assigner.svm.nu * 1e6));
  mix(h, detector.assigner.svm.max_training_points);
  mix(h, detector.assigner.vote_actions);
  mix(h, detector.assigner.features.normalize ? 1u : 0u);
  mix(h, static_cast<std::uint64_t>(detector.assigner.features.length_feature_weight * 1e6));
  mix(h, detector.seed);
  return h;
}

Experiment Experiment::prepare(const ExperimentConfig& config) {
  register_core_metrics();
  Span prepare_span("experiment.prepare");
  synth::Portal portal(config.portal);
  SessionStore store = [&portal] {
    Span span("corpus.generate");
    return portal.generate();
  }();
  log_info() << "corpus generated: " << store.size() << " sessions, " << store.vocab().size()
             << " actions, " << store.distinct_users() << " users";

  const std::filesystem::path cache_dir = std::filesystem::path(config.results_dir) / "cache";
  char name[64];
  std::snprintf(name, sizeof(name), "detector_%016llx.bin",
                static_cast<unsigned long long>(config.fingerprint()));
  const std::filesystem::path cache_file = cache_dir / name;

  if (config.use_cache && std::filesystem::exists(cache_file)) {
    std::ifstream in(cache_file, std::ios::binary);
    try {
      Span span("detector.load");
      BinaryReader reader(in);
      MisuseDetector detector = MisuseDetector::load(reader);
      metrics().counter("experiment.cache.hits").inc();
      log_info() << "detector loaded from cache " << cache_file.string();
      Experiment experiment{config, std::move(portal), std::move(store), std::move(detector), {}};
      experiment.metrics_export = MetricsExport(config.metrics_out);
      return experiment;
    } catch (const SerializeError& e) {
      metrics().counter("experiment.cache.stale").inc();
      log_warn() << "stale cache " << cache_file.string() << " (" << e.what() << "); retraining";
    }
  }

  metrics().counter("experiment.cache.misses").inc();
  MisuseDetector detector = MisuseDetector::train(store, config.detector);
  log_info() << "pipeline trained in " << Table::num(prepare_span.seconds(), 1) << "s";

  if (config.use_cache) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    std::ofstream out(cache_file, std::ios::binary);
    if (out) {
      BinaryWriter writer(out);
      detector.save(writer);
      log_info() << "detector cached to " << cache_file.string();
    }
  }
  Experiment experiment{config, std::move(portal), std::move(store), std::move(detector), {}};
  experiment.metrics_export = MetricsExport(config.metrics_out);
  return experiment;
}

std::vector<std::pair<std::size_t, std::size_t>> Experiment::united_test_set() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    for (std::size_t i : detector.cluster(c).test) out.emplace_back(i, c);
  }
  return out;
}

void emit_table(const Table& table, const std::string& results_dir, const std::string& name) {
  table.print(std::cout);
  const std::filesystem::path path = std::filesystem::path(results_dir) / (name + ".csv");
  table.write_csv_file(path.string());
  std::cout << "(csv written to " << path.string() << ")\n";
}

}  // namespace misuse::core

#include "core/drift.hpp"

#include <cassert>
#include <cmath>

namespace misuse::core {

double jensen_shannon(std::span<const double> a, std::span<const double> b, double smoothing) {
  assert(a.size() == b.size());
  assert(!a.empty());
  const std::size_t d = a.size();
  double total_a = 0.0, total_b = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    total_a += a[i] + smoothing;
    total_b += b[i] + smoothing;
  }
  double js = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double p = (a[i] + smoothing) / total_a;
    const double q = (b[i] + smoothing) / total_b;
    const double m = 0.5 * (p + q);
    if (p > 0.0) js += 0.5 * p * std::log(p / m);
    if (q > 0.0) js += 0.5 * q * std::log(q / m);
  }
  return js;
}

DriftMonitor::DriftMonitor(std::vector<double> reference_counts, const DriftConfig& config)
    : config_(config),
      reference_counts_(std::move(reference_counts)),
      window_counts_(reference_counts_.size(), 0.0) {
  assert(!reference_counts_.empty());
}

DriftMonitor::DriftMonitor(const SessionStore& training_corpus, const DriftConfig& config)
    : config_(config),
      reference_counts_(training_corpus.vocab().size(), 0.0),
      window_counts_(training_corpus.vocab().size(), 0.0) {
  assert(!training_corpus.vocab().empty());
  for (const auto& session : training_corpus.all()) {
    for (int a : session.actions) {
      reference_counts_[static_cast<std::size_t>(a)] += 1.0;
    }
  }
}

double DriftMonitor::observe(std::span<const int> actions) {
  window_.emplace_back(actions.begin(), actions.end());
  for (int a : actions) {
    assert(a >= 0 && static_cast<std::size_t>(a) < window_counts_.size());
    window_counts_[static_cast<std::size_t>(a)] += 1.0;
  }
  while (window_.size() > config_.window_sessions) {
    for (int a : window_.front()) window_counts_[static_cast<std::size_t>(a)] -= 1.0;
    window_.pop_front();
  }
  recompute();
  return divergence_;
}

void DriftMonitor::recompute() {
  // Too few sessions to judge: stay quiet rather than alarm on noise.
  if (window_.size() < std::max<std::size_t>(config_.window_sessions / 4, 1)) {
    divergence_ = 0.0;
    return;
  }
  divergence_ = jensen_shannon(reference_counts_, window_counts_, config_.smoothing);
}

}  // namespace misuse::core

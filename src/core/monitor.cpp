#include "core/monitor.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/observability.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace misuse::core {

bool TrendDetector::push(double value) {
  history_.push_back(value);
  if (history_.size() < 2 * window_) return false;
  const auto end = history_.end();
  const double recent =
      std::accumulate(end - static_cast<std::ptrdiff_t>(window_), end, 0.0) /
      static_cast<double>(window_);
  const double previous = std::accumulate(end - static_cast<std::ptrdiff_t>(2 * window_),
                                          end - static_cast<std::ptrdiff_t>(window_), 0.0) /
                          static_cast<double>(window_);
  return previous > 0.0 && recent < previous * (1.0 - drop_);
}

OnlineMonitor::OnlineMonitor(const MisuseDetector& detector, const MonitorConfig& config,
                             MisuseDetector::ScoringPrecision precision)
    : detector_(detector),
      config_(config),
      assignment_(detector.assigner().start_online()),
      trend_(config.trend_window, config.trend_drop) {
  states_.reserve(detector.cluster_count());
  next_distributions_.resize(detector.cluster_count());
  dist_ready_.assign(detector.cluster_count(), 1);
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    states_.push_back(detector.make_cluster_state(c, precision));
  }
  monitor_metrics().sessions.inc();
}

void OnlineMonitor::reset() {
  assignment_.reset();
  for (std::size_t c = 0; c < states_.size(); ++c) {
    states_[c].reset();
    next_distributions_[c].clear();
    dist_ready_[c] = 1;
  }
  trend_.reset();
  step_ = 0;
  monitor_metrics().sessions.inc();
}

OnlineMonitor::StepResult OnlineMonitor::observe(int action) {
  // Per-step telemetry is counters + one histogram record — tens of ns,
  // well inside the monitor's <5% overhead budget (see DESIGN.md). The
  // Timer only runs when recording is on.
  const bool record = metrics_enabled();
  Timer step_timer;
  StepResult result = begin_step(action);
  advance(action);
  if (record) record_step(result, step_timer.seconds());
  return result;
}

OnlineMonitor::StepResult OnlineMonitor::begin_step(int action) {
  assert(action >= 0 && static_cast<std::size_t>(action) < detector_.vocab().size());
  StepResult result;
  result.step = ++step_;

  // Cluster routing on the prefix including this action.
  result.ocsvm_scores = assignment_.push(action);
  result.cluster_argmax = assignment_.current_argmax();
  result.cluster_voted = assignment_.voted_cluster();
  result.degraded = detector_.cluster_degraded(result.cluster_voted);

  // Likelihood of this action under each strategy's model, using the
  // distributions predicted at the previous step.
  if (step_ > 1) {
    const auto likelihood_of = [&](std::size_t c) {
      const auto& dist = current_dist(c);
      assert(!dist.empty());
      return static_cast<double>(dist[static_cast<std::size_t>(action)]);
    };
    result.likelihood_argmax = likelihood_of(result.cluster_argmax);
    result.likelihood_voted = likelihood_of(result.cluster_voted);

    // Alarm policy on the voted strategy (the deployable one).
    const double voted = *result.likelihood_voted;
    if (voted < config_.alarm_likelihood) result.alarm = true;
    if (trend_.push(voted)) {
      result.trend_alarm = true;
      result.alarm = true;
    }

    // Explain alarms: what the voted model expected instead.
    if (result.alarm && config_.explain_top_k > 0) {
      const auto& dist = current_dist(result.cluster_voted);
      std::vector<std::size_t> order(dist.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      const std::size_t k = std::min(config_.explain_top_k, order.size());
      std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                        order.end(),
                        [&dist](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
      for (std::size_t i = 0; i < k; ++i) {
        result.expected.push_back(
            {static_cast<int>(order[i]), static_cast<double>(dist[order[i]])});
      }
    }
  }

  return result;
}

void OnlineMonitor::advance(int action) {
  // Advance every cluster model with the observed action so next step's
  // predictions are available under either strategy. step_cluster_into
  // reuses each distribution's buffer — no per-step allocation.
  for (std::size_t c = 0; c < states_.size(); ++c) {
    detector_.step_cluster_into(c, states_[c], action, next_distributions_[c]);
    dist_ready_[c] = 1;
  }
}

const std::vector<float>& OnlineMonitor::current_dist(std::size_t c) {
  if (dist_ready_[c] == 0) {
    detector_.materialize_cluster_dist(c, states_[c], next_distributions_[c]);
    dist_ready_[c] = 1;
  }
  return next_distributions_[c];
}

void OnlineMonitor::record_step(const StepResult& result, double seconds) {
  MonitorMetrics& mm = monitor_metrics();
  mm.steps.inc();
  if (result.alarm) mm.alarms.inc();
  if (result.trend_alarm) mm.trend_alarms.inc();
  if (result.cluster_argmax != result.cluster_voted) mm.disagree_steps.inc();
  mm.observe_seconds.record(seconds);
}

void OnlineMonitor::observe_batch(const MisuseDetector& detector,
                                  std::span<OnlineMonitor* const> monitors,
                                  std::span<const int> actions,
                                  std::span<StepResult> results) {
  assert(monitors.size() == actions.size() && monitors.size() == results.size());
  if (monitors.empty()) return;
  const bool record = metrics_enabled();
  Timer batch_timer;
  // Routing/alarm halves first (independent per monitor), then one fused
  // model advance per cluster across the whole batch.
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    assert(&monitors[i]->detector_ == &detector);
    results[i] = monitors[i]->begin_step(actions[i]);
  }
  std::vector<MisuseDetector::ClusterState*> states(monitors.size());
  std::vector<std::vector<float>*> outs(monitors.size());
  // Let the engine defer head + softmax per row: next step's begin_step
  // only reads the argmax and voted clusters' distributions (usually one
  // cluster), and current_dist materializes those on demand.
  std::vector<std::uint8_t> ready(monitors.size());
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      states[i] = &monitors[i]->states_[c];
      outs[i] = &monitors[i]->next_distributions_[c];
    }
    detector.step_cluster_batch(c, states, actions, outs, ready);
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      monitors[i]->dist_ready_[c] = ready[i];
    }
  }
  if (record) {
    const double per_step = batch_timer.seconds() / static_cast<double>(monitors.size());
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      monitors[i]->record_step(results[i], per_step);
    }
  }
}

void SessionAccumulator::add(const OnlineMonitor::StepResult& step) {
  report_.steps = step.step;
  if (step.alarm) {
    ++report_.alarms;
    if (!report_.first_alarm_step) report_.first_alarm_step = step.step;
  }
  if (step.trend_alarm) ++report_.trend_alarms;
  if (step.degraded) report_.degraded = true;
  if (step.cluster_argmax != step.cluster_voted) ++report_.disagree_steps;
  if (step.likelihood_voted) {
    likelihood_sum_ += *step.likelihood_voted;
    ++scored_steps_;
  }
  report_.voted_cluster = step.cluster_voted;
}

SessionMonitorReport SessionAccumulator::report() const {
  SessionMonitorReport report = report_;
  if (scored_steps_ > 0) {
    report.avg_likelihood_voted = likelihood_sum_ / static_cast<double>(scored_steps_);
  }
  return report;
}

std::vector<SessionMonitorReport> monitor_sessions(
    const MisuseDetector& detector, const MonitorConfig& config,
    std::span<const std::span<const int>> sessions) {
  std::vector<SessionMonitorReport> reports(sessions.size());
  Span batch_span("monitor.batch");
  // Sessions are independent streams: each task replays one session
  // through a private monitor (the shared detector is only read) and
  // fills its own report slot.
  global_pool().parallel_for(0, sessions.size(), [&](std::size_t s) {
    Span session_span("monitor.session");
    OnlineMonitor monitor(detector, config);
    SessionAccumulator acc;
    for (const int action : sessions[s]) acc.add(monitor.observe(action));
    reports[s] = acc.report();
  });
  return reports;
}

}  // namespace misuse::core

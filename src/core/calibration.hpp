// Alarm-threshold calibration. The paper leaves the operating point
// implicit ("as soon as predictions start to vary a lot or drop down
// considerably that is the alarm", §IV-C); operationally the threshold
// must be chosen against a false-alarm budget — Sommer & Paxson's central
// critique of anomaly detection is exactly the cost of false positives.
//
// calibrate_alarm_threshold scores held-out *normal* sessions (the
// validation splits) through the deployed prediction path and returns the
// per-action likelihood threshold whose expected per-session false-alarm
// rate matches the budget.
#pragma once

#include <span>
#include <vector>

#include "core/detector.hpp"

namespace misuse::core {

struct CalibrationResult {
  /// Per-action likelihood threshold for MonitorConfig::alarm_likelihood.
  double alarm_likelihood = 0.0;
  /// Fraction of calibration sessions that would raise >= 1 alarm at the
  /// chosen threshold (the realized session-level false-alarm rate).
  double session_false_alarm_rate = 0.0;
  std::size_t calibration_sessions = 0;
};

/// Chooses the largest threshold such that at most `session_fpr_budget`
/// of the given normal sessions would alarm (an alarming session = one
/// whose *minimum* per-action likelihood falls below the threshold).
/// Sessions shorter than 2 actions are skipped.
CalibrationResult calibrate_alarm_threshold(const MisuseDetector& detector,
                                            const SessionStore& store,
                                            std::span<const std::size_t> normal_sessions,
                                            double session_fpr_budget);

/// Convenience: calibrates on the union of the detector's validation
/// splits (held out from model training but in-distribution).
CalibrationResult calibrate_on_validation_splits(const MisuseDetector& detector,
                                                 const SessionStore& store,
                                                 double session_fpr_budget);

}  // namespace misuse::core

// MisuseDetector: the paper's full pipeline (Fig. 2).
//
// Training phase:
//   1. fit an LDA ensemble on the historical sessions H (topic modeling),
//   2. run the (headless) expert policy over the ensemble's artifacts to
//      obtain k semantically meaningful behavior clusters G_1..G_k,
//   3. split each cluster 70/15/15 into train/valid/test,
//   4. train one OC-SVM per cluster on its training sessions (cluster
//      routing), and
//   5. train one LSTM language model per cluster (behavior modeling).
//
// Prediction phase: a new session is routed to the cluster G_max with the
// maximal OC-SVM score and scored by that cluster's language model; the
// average per-action likelihood (or loss) is its normality estimate.
//
// The training phase "can be repeated at any moment if security experts
// notice sufficient drift" — retraining is just calling train() again on
// the refreshed store.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/assigner.hpp"
#include "cluster/expert_policy.hpp"
#include "lm/language_model.hpp"
#include "lm/markov.hpp"
#include "sessions/store.hpp"
#include "topics/ensemble.hpp"

namespace misuse::core {

struct DetectorConfig {
  topics::EnsembleConfig ensemble;
  cluster::ExpertPolicyConfig expert;
  cluster::AssignerConfig assigner;  // features.vocab is filled at train time
  lm::LmConfig lm;                   // vocab is filled at train time
  double train_frac = 0.70;          // paper proportions
  double valid_frac = 0.15;
  std::size_t min_session_actions = 2;  // §IV-A filter
  std::uint64_t seed = 123;
};

/// Per-cluster bookkeeping: the expert-derived membership, its
/// train/valid/test split (indices into the training store), and a
/// human-readable label mined from the cluster's characteristic actions.
struct ClusterInfo {
  std::string label;
  std::vector<std::size_t> members;
  std::vector<std::size_t> train;
  std::vector<std::size_t> valid;
  std::vector<std::size_t> test;

  std::size_t size() const { return members.size(); }
};

/// Per-epoch training history of one cluster model (for reporting).
struct ClusterTrainReport {
  std::vector<lm::EpochStats> epochs;
};

class MisuseDetector {
 public:
  /// Trains the full pipeline on a session store. The store must outlive
  /// nothing — all needed data is copied in.
  static MisuseDetector train(const SessionStore& store, const DetectorConfig& config);

  std::size_t cluster_count() const { return clusters_.size(); }
  const ClusterInfo& cluster(std::size_t c) const { return clusters_.at(c); }
  const std::vector<ClusterInfo>& clusters() const { return clusters_; }
  const ClusterTrainReport& train_report(std::size_t c) const { return reports_.at(c); }

  /// Cluster language model (non-const: evaluation reuses internal
  /// forward buffers). Must not be called for a degraded cluster (the
  /// LSTM did not survive the archive); use the ClusterState API below,
  /// which routes degraded clusters to their Markov fallback.
  lm::ActionLanguageModel& model(std::size_t c) { return *models_.at(c); }
  const lm::ActionLanguageModel& model(std::size_t c) const { return *models_.at(c); }

  // -- Degraded mode -------------------------------------------------------
  // Archive v2 stores each cluster's LSTM and a Markov-chain fallback in
  // independently CRC-checked sections. A corrupt LSTM section downgrades
  // that cluster to the Markov baseline at load instead of aborting the
  // process; verdicts from a degraded cluster are flagged (StepResult::
  // degraded, serve.degraded_clusters). The robust-ensemble fallback
  // follows Kim et al. (arXiv:1611.01726).

  /// True when cluster `c` is served by its Markov fallback.
  bool cluster_degraded(std::size_t c) const { return degraded_.at(c); }
  /// Number of degraded clusters (0 on a freshly trained detector).
  std::size_t degraded_cluster_count() const;

  /// Streaming state of one cluster's behavior model — LSTM recurrent
  /// state normally, last-action context in degraded mode.
  struct ClusterState {
    nn::ModelState nn;
    int last_action = -1;
    void reset() {
      nn.reset();
      last_action = -1;
    }
  };
  ClusterState make_cluster_state(std::size_t c) const;
  /// Advances cluster `c`'s model with the observed action and returns
  /// the next-action distribution (the degraded-aware counterpart of
  /// model(c).step).
  std::vector<float> step_cluster(std::size_t c, ClusterState& state, int action) const;

  const cluster::ClusterAssigner& assigner() const { return *assigner_; }
  const ActionVocab& vocab() const { return vocab_; }
  const DetectorConfig& config() const { return config_; }

  /// OC-SVM routing of a full session (argmax score — §III).
  std::size_t route(std::span<const int> actions) const;

  struct Prediction {
    std::size_t cluster = 0;
    nn::NextActionModel::SessionScore score;
  };
  /// Route + score: the paper's batch prediction path.
  Prediction predict(std::span<const int> actions) const;

  /// Scores a session under a *known* cluster's model (the oracle used by
  /// the Fig. 4/5 experiments where the true cluster is assumed known).
  nn::NextActionModel::SessionScore score_with_cluster(std::size_t c,
                                                       std::span<const int> actions) const;

  /// Per-action occurrence counts of the corpus the detector was trained
  /// on, summed over the per-cluster Markov fallbacks (whose transition
  /// counts reproduce the training distribution exactly). Empty when no
  /// fallbacks are available (v1 archives) — callers should treat that as
  /// "drift reference unavailable" rather than an error.
  std::vector<double> training_action_counts() const;

  /// Archive v2: header + vocab + clusters + assigner (covered by the
  /// whole-file CRC footer), then per cluster a length-prefixed,
  /// CRC-checked LSTM section and Markov-fallback section. v1 archives
  /// (no sections, no footer, no fallbacks) still load. Load errors name
  /// the failing archive section ("vocab", "cluster 3 LSTM", ...).
  void save(BinaryWriter& w) const;
  static MisuseDetector load(BinaryReader& r);

  /// Opens and loads an archive from disk. Any failure — missing file,
  /// truncation, corruption — surfaces as a SerializeError whose message
  /// carries the file path and the failing section, so operators can tell
  /// *which* artifact is bad straight from the log line.
  static MisuseDetector load_file(const std::string& path);

 private:
  MisuseDetector() = default;

  DetectorConfig config_;
  ActionVocab vocab_;
  std::vector<ClusterInfo> clusters_;
  std::vector<ClusterTrainReport> reports_;
  std::vector<std::unique_ptr<lm::ActionLanguageModel>> models_;
  /// Per-cluster Markov baselines, fitted at train time and persisted so
  /// a corrupt LSTM section degrades to them at load. May hold nullptr
  /// entries for v1 archives (no fallback: corruption is fatal there).
  std::vector<std::unique_ptr<lm::MarkovChainModel>> fallbacks_;
  std::vector<bool> degraded_;
  std::unique_ptr<cluster::ClusterAssigner> assigner_;
};

/// Builds the label of a cluster from its most characteristic actions.
std::string label_cluster(const SessionStore& store, const std::vector<std::size_t>& members);

}  // namespace misuse::core

// MisuseDetector: the paper's full pipeline (Fig. 2).
//
// Training phase:
//   1. fit an LDA ensemble on the historical sessions H (topic modeling),
//   2. run the (headless) expert policy over the ensemble's artifacts to
//      obtain k semantically meaningful behavior clusters G_1..G_k,
//   3. split each cluster 70/15/15 into train/valid/test,
//   4. train one OC-SVM per cluster on its training sessions (cluster
//      routing), and
//   5. train one LSTM language model per cluster (behavior modeling).
//
// Prediction phase: a new session is routed to the cluster G_max with the
// maximal OC-SVM score and scored by that cluster's language model; the
// average per-action likelihood (or loss) is its normality estimate.
//
// The training phase "can be repeated at any moment if security experts
// notice sufficient drift" — retraining is just calling train() again on
// the refreshed store.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/assigner.hpp"
#include "cluster/expert_policy.hpp"
#include "lm/language_model.hpp"
#include "lm/markov.hpp"
#include "nn/infer/engine.hpp"
#include "sessions/store.hpp"
#include "topics/ensemble.hpp"

namespace misuse::core {

struct DetectorConfig {
  topics::EnsembleConfig ensemble;
  cluster::ExpertPolicyConfig expert;
  cluster::AssignerConfig assigner;  // features.vocab is filled at train time
  lm::LmConfig lm;                   // vocab is filled at train time
  double train_frac = 0.70;          // paper proportions
  double valid_frac = 0.15;
  std::size_t min_session_actions = 2;  // §IV-A filter
  std::uint64_t seed = 123;
};

/// Per-cluster bookkeeping: the expert-derived membership, its
/// train/valid/test split (indices into the training store), and a
/// human-readable label mined from the cluster's characteristic actions.
struct ClusterInfo {
  std::string label;
  std::vector<std::size_t> members;
  std::vector<std::size_t> train;
  std::vector<std::size_t> valid;
  std::vector<std::size_t> test;

  std::size_t size() const { return members.size(); }
};

/// Per-epoch training history of one cluster model (for reporting).
struct ClusterTrainReport {
  std::vector<lm::EpochStats> epochs;
};

/// Knobs of an incremental retraining pass (continuous learning,
/// src/learn): a short warm-start update of an existing detector on
/// recently collected per-cluster session windows. The cluster structure
/// and vocabulary are inherited from the parent — the pass refreshes
/// weights, never topology — so the candidate stays vocab-compatible with
/// the parent and can be shadow-scored and hot-swapped against it.
struct FineTuneConfig {
  std::size_t epochs = 2;
  float learning_rate = 2e-4f;
  /// Fraction of each cluster's windows held out for validation during
  /// the fine-tuning pass (deterministic interleaved split).
  double valid_frac = 0.15;
  /// Clusters with fewer collected windows keep the parent's LSTM and
  /// OC-SVM verbatim (no update on starved clusters).
  std::size_t min_cluster_sessions = 8;
  /// Topics of the incremental LDA refresh over the collected windows
  /// (0 = reuse the parent's cluster count). The refreshed topics are
  /// compared against each cluster's training distribution to measure how
  /// far the evolving topic structure has moved from the cluster
  /// structure the detector was built on.
  std::size_t lda_topics = 0;
  std::size_t lda_iterations = 60;
  std::uint64_t seed = 97;
};

/// What one fine-tuning pass did to one cluster.
struct FineTuneClusterStats {
  std::size_t sessions = 0;  // collected windows routed to this cluster
  bool tuned = false;        // false: kept the parent model verbatim
  std::vector<lm::EpochStats> epochs;
  /// Max cosine similarity between the cluster's training action
  /// distribution and any topic of the refreshed LDA fit (1 when the LDA
  /// refresh was skipped for lack of data). Low alignment means the
  /// evolving topic structure no longer matches this cluster — the signal
  /// that weight-only fine-tuning is reaching its limits and a full
  /// retrain (new clustering) is due.
  double topic_alignment = 1.0;
};

struct FineTuneReport {
  std::vector<FineTuneClusterStats> clusters;
  std::size_t windows = 0;  // total windows consumed by the pass
};

/// Options for MisuseDetector::save. `quant` != kNone additionally writes
/// each cluster's packed weights quantized (int8 per-row scales or fp16)
/// as an optional v3 archive section; loading such an archive scores with
/// the quantized weights by default. Publish quantized archives only
/// through the registry's accuracy gate (core/quant_gate.hpp).
struct DetectorSaveOptions {
  nn::infer::QuantKind quant = nn::infer::QuantKind::kNone;
};

class MisuseDetector {
 public:
  /// Trains the full pipeline on a session store. The store must outlive
  /// nothing — all needed data is copied in.
  static MisuseDetector train(const SessionStore& store, const DetectorConfig& config);

  /// Incremental retraining (core/finetune.cpp): returns a candidate
  /// detector derived from `parent` by warm-start fine-tuning each
  /// cluster's LSTM on `cluster_windows[c]` (recently collected sessions
  /// routed to cluster c), refitting the per-cluster OC-SVMs where data
  /// suffices, and folding the windows into the Markov fallbacks (whose
  /// counts accumulate, so the candidate's drift reference tracks recent
  /// behavior). Vocabulary, cluster structure, and config are inherited
  /// unchanged. Deterministic: same parent + windows + config ⇒
  /// bit-identical candidate. Throws SerializeError when the parent has
  /// degraded clusters (fine-tuning a fallback would launder a corrupt
  /// archive into a "healthy" candidate) or no fallbacks (v1 archives).
  static MisuseDetector fine_tune(const MisuseDetector& parent,
                                  const std::vector<std::vector<std::vector<int>>>& cluster_windows,
                                  const FineTuneConfig& config, FineTuneReport* report = nullptr);

  std::size_t cluster_count() const { return clusters_.size(); }
  const ClusterInfo& cluster(std::size_t c) const { return clusters_.at(c); }
  const std::vector<ClusterInfo>& clusters() const { return clusters_; }
  const ClusterTrainReport& train_report(std::size_t c) const { return reports_.at(c); }

  /// Cluster language model (non-const: evaluation reuses internal
  /// forward buffers). Must not be called for a degraded cluster (the
  /// LSTM did not survive the archive); use the ClusterState API below,
  /// which routes degraded clusters to their Markov fallback.
  lm::ActionLanguageModel& model(std::size_t c) { return *models_.at(c); }
  const lm::ActionLanguageModel& model(std::size_t c) const { return *models_.at(c); }

  // -- Degraded mode -------------------------------------------------------
  // Archive v2 stores each cluster's LSTM and a Markov-chain fallback in
  // independently CRC-checked sections. A corrupt LSTM section downgrades
  // that cluster to the Markov baseline at load instead of aborting the
  // process; verdicts from a degraded cluster are flagged (StepResult::
  // degraded, serve.degraded_clusters). The robust-ensemble fallback
  // follows Kim et al. (arXiv:1611.01726).

  /// True when cluster `c` is served by its Markov fallback.
  bool cluster_degraded(std::size_t c) const { return degraded_.at(c); }
  /// Cluster `c`'s persisted Markov fallback; nullptr on v1 archives.
  const lm::MarkovChainModel* fallback(std::size_t c) const { return fallbacks_.at(c).get(); }
  /// Number of degraded clusters (0 on a freshly trained detector).
  std::size_t degraded_cluster_count() const;

  // -- Inference engine ----------------------------------------------------
  // At train/load time each healthy cluster's LSTM is additionally packed
  // into an inference engine (nn/infer/engine.hpp) when the model has the
  // supported shape; streaming scoring then runs through it unless the
  // infer mode is `reference`. A v3 archive may carry quantized weights
  // per cluster; a corrupt quantized section falls back to float scoring
  // (quant-degraded, not a load failure).

  /// True when cluster `c` scores with quantized weights by default.
  bool cluster_quantized(std::size_t c) const;
  /// True when cluster `c`'s archived quantized section was corrupt (the
  /// cluster serves float weights instead).
  bool cluster_quant_degraded(std::size_t c) const { return quant_degraded_.at(c); }
  std::size_t quant_degraded_count() const;

  /// Numeric mode of a scoring stream: kDefault uses the cluster's
  /// quantized weights when present; kFloat forces full-precision floats
  /// (the baseline side of the quantization accuracy gate).
  enum class ScoringPrecision { kDefault, kFloat };

  /// Streaming state of one cluster's behavior model — engine state on
  /// the packed fast path, LSTM recurrent state on the reference path,
  /// last-action context in degraded mode.
  struct ClusterState {
    nn::ModelState nn;
    nn::infer::EngineState eng;
    bool use_engine = false;
    bool use_quant = false;
    int last_action = -1;
    void reset() {
      nn.reset();
      eng.reset();
      last_action = -1;
    }
  };
  ClusterState make_cluster_state(std::size_t c,
                                  ScoringPrecision precision = ScoringPrecision::kDefault) const;
  /// Advances cluster `c`'s model with the observed action and returns
  /// the next-action distribution (the degraded-aware counterpart of
  /// model(c).step).
  std::vector<float> step_cluster(std::size_t c, ClusterState& state, int action) const;
  /// Allocation-free variant: writes the distribution into `out`.
  void step_cluster_into(std::size_t c, ClusterState& state, int action,
                         std::vector<float>& out) const;
  /// Batched steps for one cluster: states[i] advances on actions[i] into
  /// *out[i]. Bit-identical to step_cluster_into row by row, in order.
  ///
  /// When dist_ready is non-empty (size == states.size()), the engine may
  /// defer each row's head + softmax: dist_ready[i] records whether
  /// *out[i] was filled (rows outside the fused engine path always are).
  /// Recover a deferred row's distribution — unchanged, from the row's
  /// advanced state — with materialize_cluster_dist.
  void step_cluster_batch(std::size_t c, std::span<ClusterState* const> states,
                          std::span<const int> actions, std::span<std::vector<float>* const> out,
                          std::span<std::uint8_t> dist_ready = {}) const;
  /// Fills `out` with the next-action distribution implied by the state's
  /// last advance (the tail step_cluster_batch deferred). Only valid for
  /// rows a batched step left with dist_ready[i] == 0.
  void materialize_cluster_dist(std::size_t c, const ClusterState& state,
                                std::vector<float>& out) const;

  const cluster::ClusterAssigner& assigner() const { return *assigner_; }
  const ActionVocab& vocab() const { return vocab_; }
  const DetectorConfig& config() const { return config_; }

  /// OC-SVM routing of a full session (argmax score — §III).
  std::size_t route(std::span<const int> actions) const;

  struct Prediction {
    std::size_t cluster = 0;
    nn::NextActionModel::SessionScore score;
  };
  /// Route + score: the paper's batch prediction path.
  Prediction predict(std::span<const int> actions) const;

  /// Scores a session under a *known* cluster's model (the oracle used by
  /// the Fig. 4/5 experiments where the true cluster is assumed known).
  nn::NextActionModel::SessionScore score_with_cluster(std::size_t c,
                                                       std::span<const int> actions) const;

  /// Per-action occurrence counts of the corpus the detector was trained
  /// on, summed over the per-cluster Markov fallbacks (whose transition
  /// counts reproduce the training distribution exactly). Empty when no
  /// fallbacks are available (v1 archives) — callers should treat that as
  /// "drift reference unavailable" rather than an error.
  std::vector<double> training_action_counts() const;

  /// Archive v3: header + vocab + clusters + assigner (covered by the
  /// whole-file CRC footer), then per cluster a length-prefixed,
  /// CRC-checked LSTM section, Markov-fallback section, and an optional
  /// quantized-weights section (marker byte + section when present). v1
  /// archives (no sections, no footer, no fallbacks) and v2 archives (no
  /// quant markers) still load. Load errors name the failing archive
  /// section ("vocab", "cluster 3 LSTM", ...). A corrupt quantized
  /// section never fails the load: the cluster is flagged quant-degraded
  /// and serves float weights.
  void save(BinaryWriter& w, const DetectorSaveOptions& options) const;
  void save(BinaryWriter& w) const { save(w, DetectorSaveOptions{}); }
  static MisuseDetector load(BinaryReader& r);

  /// Opens and loads an archive from disk. Any failure — missing file,
  /// truncation, corruption — surfaces as a SerializeError whose message
  /// carries the file path and the failing section, so operators can tell
  /// *which* artifact is bad straight from the log line.
  static MisuseDetector load_file(const std::string& path);

 private:
  MisuseDetector() = default;

  DetectorConfig config_;
  ActionVocab vocab_;
  std::vector<ClusterInfo> clusters_;
  std::vector<ClusterTrainReport> reports_;
  std::vector<std::unique_ptr<lm::ActionLanguageModel>> models_;
  /// Per-cluster Markov baselines, fitted at train time and persisted so
  /// a corrupt LSTM section degrades to them at load. May hold nullptr
  /// entries for v1 archives (no fallback: corruption is fatal there).
  std::vector<std::unique_ptr<lm::MarkovChainModel>> fallbacks_;
  std::vector<bool> degraded_;
  /// Per-cluster packed inference engines; nullptr when the cluster is
  /// degraded or its model shape is unsupported (scoring then runs the
  /// reference path). Rebuilt from the models at train/load time, never
  /// persisted.
  std::vector<std::unique_ptr<nn::infer::LstmInferEngine>> engines_;
  std::vector<bool> quant_degraded_;
  std::unique_ptr<cluster::ClusterAssigner> assigner_;

  /// (Re)builds engines_ from models_; call whenever models_ changes.
  void build_engines();
};

/// Builds the label of a cluster from its most characteristic actions.
std::string label_cluster(const SessionStore& store, const std::vector<std::size_t>& members);

}  // namespace misuse::core

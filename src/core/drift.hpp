// Behavior-drift monitoring. The paper's pipeline diagram (Fig. 2) notes
// that "the training phase can be repeated at any moment if security
// experts notice sufficient drift in behavior in the system" — this
// module notices it for them.
//
// The monitor keeps the action distribution of the training corpus as a
// reference and compares it against a sliding window of recent sessions
// using Jensen-Shannon divergence (bounded in [0, ln 2], symmetric, and
// defined for disjoint supports — new actions appearing in production are
// exactly the drift we must flag).
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "sessions/store.hpp"

namespace misuse::core {

struct DriftConfig {
  /// Number of recent sessions forming the comparison window.
  std::size_t window_sessions = 200;
  /// JS divergence (nats) above which drift is reported.
  double threshold = 0.05;
  /// Smoothing mass added to both distributions before comparison.
  double smoothing = 0.5;
};

/// Jensen-Shannon divergence between two unnormalized count vectors of
/// equal length (after additive smoothing). Exposed for tests.
double jensen_shannon(std::span<const double> a, std::span<const double> b, double smoothing);

class DriftMonitor {
 public:
  /// Builds the reference distribution from the training sessions.
  DriftMonitor(const SessionStore& training_corpus, const DriftConfig& config);

  /// Builds the monitor from explicit per-action reference counts (one
  /// entry per vocabulary id). The serving layer uses this: the training
  /// corpus is not shipped to production, but its action distribution is
  /// recoverable from the detector archive's Markov fallbacks
  /// (MisuseDetector::training_action_counts), so drift can be watched
  /// next to live scoring.
  DriftMonitor(std::vector<double> reference_counts, const DriftConfig& config);

  /// Feeds one production session. Returns the divergence after the
  /// update (0 until the window has at least window_sessions/4 sessions).
  double observe(std::span<const int> actions);

  double current_divergence() const { return divergence_; }
  /// Size of the reference distribution (the vocabulary it was built on).
  std::size_t dimensions() const { return reference_counts_.size(); }
  bool drift_detected() const { return divergence_ > config_.threshold; }
  std::size_t window_fill() const { return window_.size(); }
  const DriftConfig& config() const { return config_; }

 private:
  void recompute();

  DriftConfig config_;
  std::vector<double> reference_counts_;
  std::vector<double> window_counts_;
  std::deque<std::vector<int>> window_;
  double divergence_ = 0.0;
};

}  // namespace misuse::core

// Accuracy gate for quantized detector archives (nn/infer/quant.hpp).
//
// Quantization changes the weights, so unlike the scalar/AVX2 kernel
// split it is NOT covered by the bit-identity contract — it must earn its
// way into production with a measured check instead. The gate replays a
// corpus through two monitors per session — one scoring with the
// quantized weights, one forced to full-precision floats — and compares
// them with the same semantics the serving-side shadow scorer uses
// (serve/shadow.hpp): verdict flips are steps whose alarm decision
// disagrees, and loss deltas compare the per-step voted-model losses
// -log(max(likelihood, 1e-12)).
//
// The registry refuses to publish a quantized archive that fails the
// gate (`misusedet_registry publish --quantize=...`).
#pragma once

#include <span>
#include <vector>

#include "core/monitor.hpp"

namespace misuse::core {

struct QuantGateConfig {
  MonitorConfig monitor;
  /// Acceptance thresholds.
  double max_flip_rate = 0.01;   // flipped verdicts / scored steps
  double max_loss_delta = 0.5;   // largest per-step loss disagreement
  /// Self-calibration corpus (used when no sessions are supplied):
  /// sessions sampled from each cluster's persisted Markov fallback, so
  /// the gate needs no access to the training store.
  std::size_t sessions_per_cluster = 24;
  std::size_t session_length = 40;
  std::uint64_t seed = 42;
};

struct QuantGateResult {
  std::size_t sessions = 0;
  std::size_t steps = 0;          // scored steps (>= 2nd action of a session)
  std::size_t verdict_flips = 0;  // steps where the alarm decision differs
  double flip_rate = 0.0;
  double max_loss_delta = 0.0;
  double mean_loss_delta = 0.0;
  bool pass = false;
};

/// Replays `sessions` through paired quantized/float monitors and scores
/// the disagreement. With an empty span, a deterministic synthetic corpus
/// is drawn from the detector's Markov fallbacks (config.seed). The
/// detector should carry quantized weights; without any, the gate passes
/// trivially (nothing to compare).
QuantGateResult measure_quant_gate(const MisuseDetector& detector, const QuantGateConfig& config,
                                   std::span<const std::span<const int>> sessions = {});

/// The self-calibration corpus by itself (exposed for tests/benches).
std::vector<std::vector<int>> sample_gate_sessions(const MisuseDetector& detector,
                                                   const QuantGateConfig& config);

}  // namespace misuse::core

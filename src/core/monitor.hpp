// OnlineMonitor: the paper's realtime use case (§IV-C). A session is
// analyzed action by action "in order to give an alarm for security
// operators as soon as some suspicious behavior is observed".
//
// Two cluster-selection strategies are tracked simultaneously, matching
// the two baselines of Fig. 7:
//   * argmax: the model of the cluster with the maximal OC-SVM score at
//     the current step, re-predicted every step;
//   * voted: the cluster frozen after a majority vote over the first 15
//     actions (the dataset's average session length), the paper's fix for
//     OC-SVM scores collapsing on long sessions (Fig. 6).
//
// Alarm policy: a step alarms when the voted-model likelihood of the
// observed action falls below `alarm_likelihood`, or when the moving
// average over `trend_window` steps drops by more than `trend_drop`
// relative to the previous window (the trend detection the paper proposes
// in §V as an improvement over reacting to every low score).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/detector.hpp"

namespace misuse::core {

struct MonitorConfig {
  double alarm_likelihood = 0.02;  // immediate alarm threshold
  std::size_t trend_window = 8;    // moving-average window (actions)
  double trend_drop = 0.5;         // alarm when the average halves
  std::size_t explain_top_k = 3;   // expected actions reported on alarms
};

/// Detects a sustained drop in a likelihood stream: fires when the mean
/// of the last `window` values falls below (1 - drop) times the mean of
/// the `window` values before them. Extracted from the monitor so the
/// §V trend-alarm proposal is testable in isolation.
class TrendDetector {
 public:
  TrendDetector(std::size_t window, double drop) : window_(window), drop_(drop) {}

  /// Feeds one value; returns true when the drop condition holds.
  bool push(double value);
  void reset() { history_.clear(); }
  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  double drop_;
  std::vector<double> history_;
};

class OnlineMonitor {
 public:
  /// `precision` selects the numeric mode of this stream's cluster
  /// states: kDefault scores quantized clusters with their quantized
  /// weights; kFloat forces full precision (the baseline side of the
  /// quantization gate, core/quant_gate.hpp).
  OnlineMonitor(const MisuseDetector& detector, const MonitorConfig& config,
                MisuseDetector::ScoringPrecision precision =
                    MisuseDetector::ScoringPrecision::kDefault);

  /// One of the actions the voted model expected at this step — surfaced
  /// on alarms so the operator sees *what normal would have looked like*
  /// (addressing the semantic-gap complaint of Sommer & Paxson that the
  /// paper cites in SS I).
  struct ExpectedAction {
    int action = 0;
    double probability = 0.0;
  };

  struct StepResult {
    std::size_t step = 0;  // 1-based index of the observed action
    /// OC-SVM scores of every cluster on the current prefix.
    std::vector<double> ocsvm_scores;
    std::size_t cluster_argmax = 0;
    std::size_t cluster_voted = 0;
    /// Likelihood the respective strategy's model assigned to this action
    /// *before* observing it; absent for the first action.
    std::optional<double> likelihood_argmax;
    std::optional<double> likelihood_voted;
    bool alarm = false;
    bool trend_alarm = false;
    /// True when the voted cluster is served by its Markov fallback
    /// because the LSTM section of the archive was corrupt (degraded
    /// mode, core/detector.hpp). Surfaced so downstream consumers can
    /// weigh these verdicts differently.
    bool degraded = false;
    /// On alarm: the top expected actions under the voted model at this
    /// step (empty otherwise).
    std::vector<ExpectedAction> expected;
  };

  /// Feeds one observed action.
  StepResult observe(int action);

  /// Feeds one action into each of `monitors` (all built over `detector`),
  /// writing monitors[i]'s step result for actions[i] into results[i].
  /// The cluster-model advance runs as one batched forward per cluster
  /// across all monitors (the inference engine's step_batch). With the
  /// scalar kernels this is bit-identical to calling
  /// monitors[i]->observe(actions[i]) in order — sessions only share
  /// read-only weights. Under the opt-in AVX2 mode results stay
  /// ULP-close but can depend on batch composition (the tile and
  /// single-row kernels reduce in different orders).
  static void observe_batch(const MisuseDetector& detector,
                            std::span<OnlineMonitor* const> monitors,
                            std::span<const int> actions, std::span<StepResult> results);

  /// Starts a new session.
  void reset();

  std::size_t steps() const { return step_; }

 private:
  /// The routing/alarm half of observe(): consumes the *previous* step's
  /// distributions, bumps step_. Must be followed by advance(action).
  StepResult begin_step(int action);
  /// The model half: advances every cluster state on the action and
  /// refreshes next_distributions_.
  void advance(int action);
  /// next_distributions_[c], materializing it first if the last batched
  /// advance deferred this cluster's head + softmax (dist_ready_[c] == 0).
  const std::vector<float>& current_dist(std::size_t c);
  void record_step(const StepResult& result, double seconds);

  const MisuseDetector& detector_;
  MonitorConfig config_;
  cluster::ClusterAssigner::OnlineAssignment assignment_;
  /// One streaming state and one next-action distribution per cluster
  /// model, advanced in lockstep so either strategy can read its
  /// prediction at any step. ClusterState routes degraded clusters to
  /// their Markov fallback transparently.
  std::vector<MisuseDetector::ClusterState> states_;
  std::vector<std::vector<float>> next_distributions_;
  /// Per cluster: whether next_distributions_[c] reflects the state's
  /// last advance. observe() computes eagerly (always 1); observe_batch
  /// defers heads the routing half never reads — begin_step only ever
  /// consumes the argmax and voted clusters' distributions, so the other
  /// clusters' head + softmax work is skipped entirely.
  std::vector<std::uint8_t> dist_ready_;
  TrendDetector trend_;
  std::size_t step_ = 0;
};

/// Whole-session summary of one monitored session in a batch evaluation.
struct SessionMonitorReport {
  std::size_t steps = 0;
  std::size_t alarms = 0;        // steps whose StepResult alarmed
  std::size_t trend_alarms = 0;  // steps where the trend detector fired
  /// Steps where the argmax and voted strategies chose different clusters
  /// (the disagreement Fig. 7 contrasts; also tracked globally as the
  /// monitor.disagree_steps counter).
  std::size_t disagree_steps = 0;
  /// 1-based step of the first alarm, if any.
  std::optional<std::size_t> first_alarm_step;
  /// Voted cluster at the end of the session.
  std::size_t voted_cluster = 0;
  /// True when any step of the session was scored by a degraded
  /// (Markov-fallback) voted cluster.
  bool degraded = false;
  /// Mean voted-model likelihood over the scored steps (steps >= 2); the
  /// session's normality estimate under the online regime.
  double avg_likelihood_voted = 0.0;
};

/// Folds a stream of StepResults into a SessionMonitorReport. Extracted
/// from monitor_sessions so every consumer of the online regime — the
/// offline batch replay below and the streaming server's session shards
/// (serve/session_table.hpp) — derives end-of-session reports from the
/// exact same accumulation, keeping the two paths bit-identical.
class SessionAccumulator {
 public:
  /// Folds one observed step (steps must arrive in order).
  void add(const OnlineMonitor::StepResult& step);

  /// Report over the steps added so far (callable repeatedly).
  SessionMonitorReport report() const;

  std::size_t steps() const { return report_.steps; }

 private:
  SessionMonitorReport report_;
  double likelihood_sum_ = 0.0;
  std::size_t scored_steps_ = 0;
};

/// Replays every session through its own OnlineMonitor, fanning the
/// independent sessions out over the global thread pool (each task owns
/// one monitor and one output slot, so reports are index-ordered and
/// bit-identical to a serial replay). This is the batch-evaluation path:
/// the figure benches and threat-hunting sweeps score thousands of
/// recorded sessions at once.
std::vector<SessionMonitorReport> monitor_sessions(
    const MisuseDetector& detector, const MonitorConfig& config,
    std::span<const std::span<const int>> sessions);

}  // namespace misuse::core

#include "core/detector.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <optional>
#include <sstream>

#include "patterns/mining.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace misuse::core {

namespace {
constexpr std::uint32_t kDetectorMagic = 0x54444d53u;  // "SMDT"
constexpr std::uint32_t kDetectorVersion = 3;    // adds per-cluster quant markers
constexpr std::uint32_t kDetectorVersionV2 = 2;  // sections + CRC footer, no quant
constexpr std::uint32_t kDetectorVersionV1 = 1;  // pre-CRC, no fallbacks
constexpr std::uint32_t kFooterMagic = 0x46435243u;  // "CRCF"
constexpr std::uint64_t kMaxSectionBytes = 1ULL << 32;

std::vector<std::span<const int>> gather_sessions(const SessionStore& store,
                                                  const std::vector<std::size_t>& indices) {
  std::vector<std::span<const int>> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(store.at(i).view());
  return out;
}

/// Serializes one model into a length-prefixed, independently CRC'd
/// section, so bit-rot inside a single model is detected — and survivable
/// — without poisoning the rest of the archive.
template <typename Model>
void write_section(BinaryWriter& w, const Model& model) {
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter section(buffer);
  model.save(section);
  const std::string bytes = buffer.str();
  w.write<std::uint64_t>(bytes.size());
  w.write_raw(bytes);
  w.write<std::uint32_t>(crc32(bytes));
}

/// Reads one section's raw payload; nullopt when the payload fails its
/// CRC (bit-rot) — structural failures (truncation) still throw.
std::optional<std::string> read_section(BinaryReader& r) {
  const auto n = r.read<std::uint64_t>();
  if (n > kMaxSectionBytes) throw SerializeError("implausible model-section length");
  std::string bytes = r.read_raw(static_cast<std::size_t>(n));
  const auto stored = r.read<std::uint32_t>();
  if (crc32(bytes) != stored) return std::nullopt;
  return bytes;
}

/// Parses a model out of a CRC-valid section payload; nullopt when the
/// payload does not decode (defense in depth past the checksum).
template <typename Model>
std::unique_ptr<Model> parse_section(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader section(in);
  try {
    return std::make_unique<Model>(Model::load(section));
  } catch (const SerializeError&) {
    return nullptr;
  }
}

/// Runs one load phase; a SerializeError escaping it is re-thrown with
/// the archive section named, so "unexpected end of stream" becomes
/// "section vocab: unexpected end of stream" — enough to tell *where*
/// the archive went bad, not just that it did.
template <typename Fn>
decltype(auto) load_phase(const std::string& section, Fn&& fn) {
  try {
    return fn();
  } catch (const SerializeError& e) {
    throw SerializeError("section " + section + ": " + e.what());
  }
}
}  // namespace

std::string label_cluster(const SessionStore& store, const std::vector<std::size_t>& members) {
  std::vector<const Session*> cluster_sessions;
  cluster_sessions.reserve(members.size());
  for (std::size_t i : members) cluster_sessions.push_back(&store.at(i));
  std::vector<const Session*> corpus;
  corpus.reserve(store.size());
  for (const auto& s : store.all()) corpus.push_back(&s);

  const auto chars = patterns::characteristic_actions(cluster_sessions, corpus, 2);
  if (chars.empty()) return "(empty)";
  std::string label = store.vocab().name(chars[0].action);
  if (chars.size() > 1) label += "+" + store.vocab().name(chars[1].action);
  return label;
}

MisuseDetector MisuseDetector::train(const SessionStore& store, const DetectorConfig& config) {
  assert(!store.empty());
  Span train_span("detector.train");
  MisuseDetector detector;
  detector.config_ = config;
  detector.vocab_ = store.vocab();
  const std::size_t vocab = store.vocab().size();
  Rng rng(config.seed);

  // Eligible sessions: the paper drops sessions with fewer than 2 actions
  // (no observed/predicted pair to learn from).
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (store.at(i).length() >= config.min_session_actions) eligible.push_back(i);
  }
  assert(!eligible.empty());

  // Step 1: LDA ensemble over the eligible sessions.
  std::vector<std::vector<int>> documents;
  documents.reserve(eligible.size());
  for (std::size_t i : eligible) documents.push_back(store.at(i).actions);
  const topics::LdaEnsemble ensemble = topics::LdaEnsemble::fit(documents, vocab, config.ensemble);
  log_info() << "LDA ensemble fitted: " << ensemble.topic_count() << " pooled topics in "
             << Table::num(train_span.seconds(), 1) << "s";

  // Step 2: headless expert -> behavior clusters.
  const cluster::ExpertPolicy expert(config.expert);
  const cluster::ClusteringResult clustering = [&] {
    Span span("expert.cluster");
    return expert.run(ensemble);
  }();

  // Step 3: per-cluster 70/15/15 splits (indices back into the store).
  for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
    ClusterInfo info;
    for (std::size_t doc : clustering.clusters[c]) info.members.push_back(eligible[doc]);
    const Split split = store.split(rng, config.train_frac, config.valid_frac, info.members);
    info.train = split.train;
    info.valid = split.valid;
    info.test = split.test;
    info.label = label_cluster(store, info.members);
    detector.clusters_.push_back(std::move(info));
  }
  // Order clusters by ascending size, matching the paper's presentation
  // (Figs. 4/5/10 sort clusters by size).
  std::stable_sort(detector.clusters_.begin(), detector.clusters_.end(),
                   [](const ClusterInfo& a, const ClusterInfo& b) { return a.size() < b.size(); });
  log_info() << "expert policy selected " << detector.clusters_.size() << " clusters";

  // Step 4: one OC-SVM per cluster on its training sessions.
  {
    std::vector<std::vector<std::span<const int>>> per_cluster;
    per_cluster.reserve(detector.clusters_.size());
    for (const auto& info : detector.clusters_) {
      per_cluster.push_back(gather_sessions(store, info.train));
    }
    cluster::AssignerConfig assigner_config = config.assigner;
    assigner_config.features.vocab = vocab;
    detector.assigner_ = std::make_unique<cluster::ClusterAssigner>(
        cluster::ClusterAssigner::train(per_cluster, assigner_config));
  }
  log_info() << "OC-SVMs trained (" << Table::num(train_span.seconds(), 1) << "s elapsed)";

  // Step 5: one LSTM language model per cluster. Each model's RNG stream
  // is derived from the task index (seed + 1000 + c) before the fan-out
  // and lives inside the model, so concurrent training touches no shared
  // mutable state and the weights are bit-identical to serial training.
  detector.models_.resize(detector.clusters_.size());
  detector.reports_.resize(detector.clusters_.size());
  {
    Span lm_span("lm.train");
    global_pool().parallel_for(0, detector.clusters_.size(), [&](std::size_t c) {
      Span cluster_span("lm.cluster_fit");
      const auto& info = detector.clusters_[c];
      lm::LmConfig lm_config = config.lm;
      lm_config.vocab = vocab;
      lm_config.seed = config.seed + 1000 + c;
      auto model = std::make_unique<lm::ActionLanguageModel>(lm_config);
      const auto train_sessions = gather_sessions(store, info.train);
      const auto valid_sessions = gather_sessions(store, info.valid);
      detector.reports_[c].epochs = model->fit(train_sessions, valid_sessions);
      detector.models_[c] = std::move(model);
    });
  }
  for (std::size_t c = 0; c < detector.clusters_.size(); ++c) {
    log_info() << "cluster " << c << " '" << detector.clusters_[c].label << "' model trained on "
               << detector.clusters_[c].train.size() << " sessions ("
               << Table::num(train_span.seconds(), 1) << "s elapsed)";
  }

  // Degraded-mode fallbacks: one Markov chain per cluster, fitted on the
  // same training split. Counting transitions is orders of magnitude
  // cheaper than the LSTM fit, and persisting the chain beside the LSTM
  // lets a corrupt LSTM section downgrade to it at load.
  detector.fallbacks_.resize(detector.clusters_.size());
  for (std::size_t c = 0; c < detector.clusters_.size(); ++c) {
    lm::MarkovConfig markov_config;
    markov_config.vocab = vocab;
    auto fallback = std::make_unique<lm::MarkovChainModel>(markov_config);
    const auto train_sessions = gather_sessions(store, detector.clusters_[c].train);
    fallback->fit(train_sessions);
    detector.fallbacks_[c] = std::move(fallback);
  }
  detector.degraded_.assign(detector.clusters_.size(), false);
  detector.quant_degraded_.assign(detector.clusters_.size(), false);
  detector.build_engines();
  return detector;
}

void MisuseDetector::build_engines() {
  engines_.resize(models_.size());
  for (std::size_t c = 0; c < models_.size(); ++c) {
    engines_[c] = models_[c] != nullptr ? nn::infer::LstmInferEngine::build(models_[c]->network())
                                        : nullptr;
  }
  if (quant_degraded_.size() != models_.size()) quant_degraded_.assign(models_.size(), false);
}

std::size_t MisuseDetector::route(std::span<const int> actions) const {
  return assigner_->assign(actions);
}

MisuseDetector::Prediction MisuseDetector::predict(std::span<const int> actions) const {
  Prediction p;
  p.cluster = route(actions);
  p.score = score_with_cluster(p.cluster, actions);
  return p;
}

nn::NextActionModel::SessionScore MisuseDetector::score_with_cluster(
    std::size_t c, std::span<const int> actions) const {
  if (cluster_degraded(c)) return fallbacks_.at(c)->score_session(actions);
  return models_.at(c)->score_session(actions);
}

std::size_t MisuseDetector::degraded_cluster_count() const {
  return static_cast<std::size_t>(std::count(degraded_.begin(), degraded_.end(), true));
}

bool MisuseDetector::cluster_quantized(std::size_t c) const {
  const auto* engine = engines_.at(c).get();
  return engine != nullptr && engine->has_quantized() && !cluster_degraded(c);
}

std::size_t MisuseDetector::quant_degraded_count() const {
  return static_cast<std::size_t>(std::count(quant_degraded_.begin(), quant_degraded_.end(), true));
}

MisuseDetector::ClusterState MisuseDetector::make_cluster_state(std::size_t c,
                                                                ScoringPrecision precision) const {
  ClusterState state;
  if (cluster_degraded(c)) return state;
  const auto* engine = engines_.at(c).get();
  if (engine != nullptr && nn::infer::effective_infer_mode() != nn::infer::InferMode::kReference) {
    state.use_engine = true;
    state.eng = engine->make_state();
    state.use_quant = precision == ScoringPrecision::kDefault && engine->has_quantized();
  } else {
    state.nn = models_.at(c)->make_state();
  }
  return state;
}

std::vector<float> MisuseDetector::step_cluster(std::size_t c, ClusterState& state,
                                                int action) const {
  std::vector<float> out;
  step_cluster_into(c, state, action, out);
  return out;
}

void MisuseDetector::step_cluster_into(std::size_t c, ClusterState& state, int action,
                                       std::vector<float>& out) const {
  state.last_action = action;
  if (cluster_degraded(c)) {
    out = fallbacks_.at(c)->next_distribution(action);
    return;
  }
  if (state.use_engine) {
    thread_local nn::infer::EngineScratch scratch;
    engines_.at(c)->step(state.eng, action, out, scratch, state.use_quant);
    return;
  }
  models_.at(c)->step_into(state.nn, action, out);
}

void MisuseDetector::step_cluster_batch(std::size_t c, std::span<ClusterState* const> states,
                                        std::span<const int> actions,
                                        std::span<std::vector<float>* const> out,
                                        std::span<std::uint8_t> dist_ready) const {
  assert(states.size() == actions.size() && states.size() == out.size());
  assert(dist_ready.empty() || dist_ready.size() == states.size());
  const bool may_defer = !dist_ready.empty();
  if (may_defer) std::fill(dist_ready.begin(), dist_ready.end(), std::uint8_t{1});
  // Engine rows go through step_batch as one fused call (float and quant
  // precisions separately); rows are independent in every kernel, so the
  // result stays bit-identical to stepping each row alone. Degraded and
  // reference-path rows step individually.
  thread_local nn::infer::EngineScratch scratch;
  std::vector<nn::infer::EngineState*> eng_states;
  std::vector<int> eng_actions;
  std::vector<std::vector<float>*> eng_out;
  std::vector<std::size_t> eng_rows;
  for (int pass = 0; pass < 2; ++pass) {
    const bool want_quant = pass == 1;
    eng_states.clear();
    eng_actions.clear();
    eng_out.clear();
    eng_rows.clear();
    for (std::size_t i = 0; i < states.size(); ++i) {
      ClusterState& state = *states[i];
      if (cluster_degraded(c) || !state.use_engine || state.use_quant != want_quant) continue;
      state.last_action = actions[i];
      eng_states.push_back(&state.eng);
      eng_actions.push_back(actions[i]);
      eng_out.push_back(out[i]);
      eng_rows.push_back(i);
    }
    if (!eng_states.empty()) {
      const bool deferred = engines_.at(c)->step_batch(eng_states, eng_actions, eng_out, scratch,
                                                       want_quant, may_defer);
      if (deferred) {
        for (const std::size_t i : eng_rows) dist_ready[i] = 0;
      }
    }
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (!cluster_degraded(c) && states[i]->use_engine) continue;
    step_cluster_into(c, *states[i], actions[i], *out[i]);
  }
}

void MisuseDetector::materialize_cluster_dist(std::size_t c, const ClusterState& state,
                                              std::vector<float>& out) const {
  assert(state.use_engine && !cluster_degraded(c));
  engines_.at(c)->finish_probs(state.eng, out, state.use_quant);
}

void MisuseDetector::save(BinaryWriter& w, const DetectorSaveOptions& options) const {
  // A saved archive always carries healthy models (degraded detectors
  // re-saving would silently drop the LSTMs they no longer have).
  assert(degraded_cluster_count() == 0);
  w.begin_crc();
  w.write_magic(kDetectorMagic, kDetectorVersion);
  vocab_.save(w);
  w.write<std::uint64_t>(clusters_.size());
  for (const auto& info : clusters_) {
    w.write_string(info.label);
    w.write_vector(std::span<const std::size_t>(info.members));
    w.write_vector(std::span<const std::size_t>(info.train));
    w.write_vector(std::span<const std::size_t>(info.valid));
    w.write_vector(std::span<const std::size_t>(info.test));
  }
  assigner_->save(w);
  for (std::size_t c = 0; c < models_.size(); ++c) {
    write_section(w, *models_[c]);
    write_section(w, *fallbacks_.at(c));
    // v3: one quant marker byte per cluster, then (when non-zero) the
    // quantized weights as their own CRC'd section. Clusters without a
    // packed engine (unsupported model shape) stay float-only.
    nn::infer::QuantKind kind = options.quant;
    if (engines_.size() <= c || engines_[c] == nullptr) kind = nn::infer::QuantKind::kNone;
    w.write<std::uint8_t>(static_cast<std::uint8_t>(kind));
    if (kind != nn::infer::QuantKind::kNone) {
      write_section(w, nn::infer::quantize(engines_[c]->packed(), kind));
    }
  }
  // Whole-file footer: CRC over every byte written above, including the
  // footer magic itself, so any corruption the per-section checks cannot
  // localize (header, vocab, assigner) is still caught at load.
  w.write<std::uint32_t>(kFooterMagic);
  const std::uint32_t file_crc = w.crc();
  w.write<std::uint32_t>(file_crc);
}

MisuseDetector MisuseDetector::load(BinaryReader& r) {
  r.begin_crc();
  const std::uint32_t version = load_phase("header", [&] { return r.read_magic(kDetectorMagic); });
  if (version != kDetectorVersion && version != kDetectorVersionV2 &&
      version != kDetectorVersionV1) {
    throw SerializeError("unsupported detector archive version " + std::to_string(version) +
                         " (expected " + std::to_string(kDetectorVersion) + ")");
  }
  MisuseDetector detector;
  detector.vocab_ = load_phase("vocab", [&] { return ActionVocab::load(r); });
  const auto n = load_phase("cluster table", [&] {
    const auto count = static_cast<std::size_t>(r.read<std::uint64_t>());
    for (std::size_t c = 0; c < count; ++c) {
      ClusterInfo info;
      info.label = r.read_string();
      info.members = r.read_vector<std::size_t>();
      info.train = r.read_vector<std::size_t>();
      info.valid = r.read_vector<std::size_t>();
      info.test = r.read_vector<std::size_t>();
      detector.clusters_.push_back(std::move(info));
    }
    return count;
  });
  detector.assigner_ = load_phase("assigner", [&] {
    return std::make_unique<cluster::ClusterAssigner>(cluster::ClusterAssigner::load(r));
  });
  detector.degraded_.assign(n, false);

  if (version == kDetectorVersionV1) {
    // Legacy archive: bare models, no fallbacks, no checksums. Corruption
    // here still surfaces as a SerializeError from the model parser.
    for (std::size_t c = 0; c < n; ++c) {
      load_phase("cluster " + std::to_string(c) + " LSTM", [&] {
        detector.models_.push_back(
            std::make_unique<lm::ActionLanguageModel>(lm::ActionLanguageModel::load(r)));
      });
    }
    detector.fallbacks_.resize(n);
    detector.reports_.resize(n);
    detector.build_engines();
    return detector;
  }

  std::size_t corrupt_sections = 0;
  detector.models_.resize(n);
  detector.fallbacks_.resize(n);
  detector.engines_.resize(n);
  detector.quant_degraded_.assign(n, false);
  for (std::size_t c = 0; c < n; ++c) {
    auto lstm_bytes = load_phase("cluster " + std::to_string(c) + " LSTM",
                                 [&] { return read_section(r); });
    if (lstm_bytes && MISUSEDET_FAILPOINT("detector.load.lstm")) lstm_bytes.reset();
    if (lstm_bytes) detector.models_[c] = parse_section<lm::ActionLanguageModel>(*lstm_bytes);
    if (detector.models_[c] != nullptr) {
      detector.engines_[c] = nn::infer::LstmInferEngine::build(detector.models_[c]->network());
    }
    const auto markov_bytes = load_phase("cluster " + std::to_string(c) + " Markov fallback",
                                         [&] { return read_section(r); });
    if (markov_bytes) detector.fallbacks_[c] = parse_section<lm::MarkovChainModel>(*markov_bytes);

    if (detector.models_[c] == nullptr) {
      ++corrupt_sections;
      if (detector.fallbacks_[c] == nullptr) {
        throw SerializeError("cluster " + std::to_string(c) +
                             ": LSTM and Markov fallback sections both corrupt");
      }
      detector.degraded_[c] = true;
      log_warn() << "detector archive: cluster " << c
                 << " LSTM section corrupt; degrading to the Markov baseline";
    } else if (detector.fallbacks_[c] == nullptr) {
      // The LSTM survived; losing only the fallback costs redundancy, not
      // accuracy, so keep serving and say so.
      ++corrupt_sections;
      log_warn() << "detector archive: cluster " << c
                 << " Markov fallback section corrupt; no degraded cover for this cluster";
    }

    if (version >= kDetectorVersion) {
      const auto marker = load_phase("cluster " + std::to_string(c) + " quant marker", [&] {
        const auto byte = r.read<std::uint8_t>();
        if (byte > static_cast<std::uint8_t>(nn::infer::QuantKind::kFp16)) {
          // The marker decides whether a section follows; with it gone we
          // cannot even find the next cluster, so this is unrecoverable.
          throw SerializeError("unknown quantization marker " + std::to_string(byte));
        }
        return byte;
      });
      if (marker != 0) {
        auto quant_bytes = load_phase("cluster " + std::to_string(c) + " quantized weights",
                                      [&] { return read_section(r); });
        if (quant_bytes && MISUSEDET_FAILPOINT("detector.load.quant")) quant_bytes.reset();
        bool attached = false;
        const bool wanted = nn::infer::quant_enabled() && detector.engines_[c] != nullptr;
        if (wanted && quant_bytes) {
          // parse + attach validate shape against the packed floats; any
          // failure below lands on the float-fallback path.
          if (auto quant = parse_section<nn::infer::QuantizedLstm>(*quant_bytes)) {
            try {
              detector.engines_[c]->attach_quantized(std::move(*quant));
              attached = true;
            } catch (const SerializeError&) {
            }
          }
        }
        if (wanted && !attached) {
          // Quantization is an optimization, never availability: serve the
          // float weights, flag the cluster, and let the footer CRC logic
          // know a section was lost.
          detector.quant_degraded_[c] = true;
          ++corrupt_sections;
          log_warn() << "detector archive: cluster " << c
                     << " quantized section corrupt; serving float weights";
        }
      }
    }
  }

  load_phase("footer", [&] {
    const std::uint32_t footer_magic = r.read<std::uint32_t>();
    if (footer_magic != kFooterMagic) throw SerializeError("missing detector archive CRC footer");
    const std::uint32_t computed_crc = r.crc();
    const std::uint32_t stored_crc = r.read<std::uint32_t>();
    if (computed_crc != stored_crc && corrupt_sections == 0) {
      // Bit-rot outside the model sections (header/vocab/assigner) cannot
      // be repaired — refuse rather than score with a silently wrong model.
      throw SerializeError("detector archive CRC mismatch outside model sections");
    }
  });
  detector.reports_.resize(n);  // training history is not persisted
  return detector;
}

MisuseDetector MisuseDetector::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("detector archive '" + path + "': cannot open file");
  BinaryReader reader(in);
  try {
    return load(reader);
  } catch (const SerializeError& e) {
    throw SerializeError("detector archive '" + path + "': " + e.what());
  }
}

std::vector<double> MisuseDetector::training_action_counts() const {
  std::vector<double> counts;
  for (const auto& fallback : fallbacks_) {
    if (fallback == nullptr) return {};  // v1 archive: no reference available
    const auto freq = fallback->action_frequencies();
    if (counts.empty()) counts.assign(freq.size(), 0.0);
    assert(freq.size() == counts.size());
    for (std::size_t i = 0; i < freq.size(); ++i) counts[i] += freq[i];
  }
  return counts;
}

}  // namespace misuse::core

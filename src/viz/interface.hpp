// The visual-interface substrate. The paper's experts work in an
// interactive tool with three coordinated views (Fig. 1): a t-SNE topic
// projection (top left), a topic-action matrix (right), and a chord
// diagram of topic relationships (bottom left). This module computes the
// exact data each view renders and serializes it:
//
//   * as JSON, so any external UI can render the real interface, and
//   * as ASCII, so every artifact is inspectable in a terminal and
//     assertable in tests.
//
// The headless ExpertPolicy consumes the same artifacts, which is what
// makes the expert-in-the-loop step reproducible without a human.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sessions/vocab.hpp"
#include "tensor/matrix.hpp"
#include "topics/ensemble.hpp"
#include "tsne/tsne.hpp"

namespace misuse::viz {

/// Topic projection view: one 2-D point per pooled topic.
struct TopicProjectionView {
  Matrix coordinates;             // topics x 2
  std::vector<std::size_t> runs;  // owning LDA run per topic
  double final_kl = 0.0;          // t-SNE KL at the last iteration
};

TopicProjectionView build_projection_view(const topics::LdaEnsemble& ensemble,
                                          const tsne::TsneConfig& config);

/// Topic-action matrix view: per topic, the actions above an opacity
/// threshold with their probabilities (x-axis actions, y-axis topics; the
/// higher the probability the more opaque the block).
struct TopicActionCell {
  std::size_t topic = 0;
  std::size_t action = 0;
  float probability = 0.0f;
};

struct TopicActionMatrixView {
  std::size_t topics = 0;
  std::size_t actions = 0;
  float threshold = 0.0f;
  std::vector<TopicActionCell> cells;  // sparse, above-threshold only
};

TopicActionMatrixView build_matrix_view(const topics::LdaEnsemble& ensemble, float threshold);

/// Chord diagram view over a topic selection: fan length = number of
/// actions in the topic's top set; link weight = number of shared top
/// actions between two topics.
struct ChordLink {
  std::size_t a = 0;  // indices into `selection`
  std::size_t b = 0;
  std::size_t shared_actions = 0;
};

struct ChordDiagramView {
  std::vector<std::size_t> selection;  // pooled topic indices
  std::vector<std::size_t> fan_sizes;  // per selected topic
  std::vector<ChordLink> links;        // only links with shared > 0
  std::size_t top_n = 0;
};

ChordDiagramView build_chord_view(const topics::LdaEnsemble& ensemble,
                                  const std::vector<std::size_t>& selection, std::size_t top_n);

/// Session-level behavior map: a sample of sessions embedded by t-SNE on
/// their document-topic vectors and tagged with their behavior cluster —
/// the "categorization of behaviors" picture that complements the
/// topic-level projection.
struct SessionMapView {
  std::vector<std::size_t> sessions;  // document indices of the sample
  Matrix coordinates;                 // sample x 2
  std::vector<std::size_t> clusters;  // cluster id per sampled session
};

SessionMapView build_session_map(const topics::LdaEnsemble& ensemble,
                                 const std::vector<std::size_t>& session_cluster,
                                 std::size_t max_sessions, const tsne::TsneConfig& config,
                                 std::uint64_t seed);

std::string render_session_map_ascii(const SessionMapView& view, std::size_t width = 72,
                                     std::size_t height = 24);

/// Serializes all three views into one JSON document.
void export_interface_json(const TopicProjectionView& projection,
                           const TopicActionMatrixView& matrix, const ChordDiagramView& chord,
                           const ActionVocab& vocab, std::ostream& out);

/// ASCII renderings for terminal inspection.
std::string render_projection_ascii(const TopicProjectionView& view, std::size_t width = 72,
                                    std::size_t height = 24);
std::string render_matrix_ascii(const TopicActionMatrixView& view, const ActionVocab& vocab,
                                const topics::LdaEnsemble& ensemble, std::size_t max_topics = 20,
                                std::size_t top_actions = 6);
std::string render_chord_ascii(const ChordDiagramView& view);

}  // namespace misuse::viz

#include "viz/interface.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace misuse::viz {

TopicProjectionView build_projection_view(const topics::LdaEnsemble& ensemble,
                                          const tsne::TsneConfig& config) {
  const std::size_t n = ensemble.topic_count();
  assert(n >= 2);
  Matrix points(n, ensemble.vocab());
  for (std::size_t t = 0; t < n; ++t) {
    const auto dist = ensemble.topic_distribution(t);
    std::copy(dist.begin(), dist.end(), points.row(t).begin());
  }
  const tsne::TsneResult result = tsne::run_tsne(points, config);

  TopicProjectionView view;
  view.coordinates = result.embedding;
  view.final_kl = result.kl_history.empty() ? 0.0 : result.kl_history.back();
  view.runs.resize(n);
  for (std::size_t t = 0; t < n; ++t) view.runs[t] = ensemble.ref(t).run;
  return view;
}

TopicActionMatrixView build_matrix_view(const topics::LdaEnsemble& ensemble, float threshold) {
  TopicActionMatrixView view;
  view.topics = ensemble.topic_count();
  view.actions = ensemble.vocab();
  view.threshold = threshold;
  for (std::size_t t = 0; t < view.topics; ++t) {
    const auto dist = ensemble.topic_distribution(t);
    for (std::size_t a = 0; a < view.actions; ++a) {
      if (dist[a] >= threshold) view.cells.push_back({t, a, dist[a]});
    }
  }
  return view;
}

ChordDiagramView build_chord_view(const topics::LdaEnsemble& ensemble,
                                  const std::vector<std::size_t>& selection, std::size_t top_n) {
  ChordDiagramView view;
  view.selection = selection;
  view.top_n = top_n;

  // Top-action sets of each selected topic.
  std::vector<std::vector<std::size_t>> top_sets;
  for (std::size_t pooled : selection) {
    const auto& ref = ensemble.ref(pooled);
    auto tops = ensemble.runs()[ref.run].top_actions(ref.topic_in_run, top_n);
    std::sort(tops.begin(), tops.end());
    view.fan_sizes.push_back(tops.size());
    top_sets.push_back(std::move(tops));
  }

  for (std::size_t i = 0; i < selection.size(); ++i) {
    for (std::size_t j = i + 1; j < selection.size(); ++j) {
      std::vector<std::size_t> shared;
      std::set_intersection(top_sets[i].begin(), top_sets[i].end(), top_sets[j].begin(),
                            top_sets[j].end(), std::back_inserter(shared));
      if (!shared.empty()) view.links.push_back({i, j, shared.size()});
    }
  }
  return view;
}

SessionMapView build_session_map(const topics::LdaEnsemble& ensemble,
                                 const std::vector<std::size_t>& session_cluster,
                                 std::size_t max_sessions, const tsne::TsneConfig& config,
                                 std::uint64_t seed) {
  assert(session_cluster.size() == ensemble.documents());
  SessionMapView view;
  // Uniform sample of documents (t-SNE is O(n^2)).
  Rng rng(seed);
  std::vector<std::size_t> all(ensemble.documents());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  rng.shuffle(all);
  all.resize(std::min(max_sessions, all.size()));
  std::sort(all.begin(), all.end());
  view.sessions = std::move(all);

  // Feature of a session: its pooled document-topic weight vector.
  const std::size_t n_topics = ensemble.topic_count();
  Matrix points(view.sessions.size(), n_topics);
  for (std::size_t i = 0; i < view.sessions.size(); ++i) {
    for (std::size_t t = 0; t < n_topics; ++t) {
      points(i, t) = ensemble.document_weight(t, view.sessions[i]);
    }
    view.clusters.push_back(session_cluster[view.sessions[i]]);
  }
  view.coordinates = tsne::run_tsne(points, config).embedding;
  return view;
}

std::string render_session_map_ascii(const SessionMapView& view, std::size_t width,
                                     std::size_t height) {
  assert(width >= 2 && height >= 2);
  if (view.sessions.empty()) return "(empty session map)\n";
  float min_x = view.coordinates(0, 0), max_x = min_x;
  float min_y = view.coordinates(0, 1), max_y = min_y;
  for (std::size_t i = 0; i < view.coordinates.rows(); ++i) {
    min_x = std::min(min_x, view.coordinates(i, 0));
    max_x = std::max(max_x, view.coordinates(i, 0));
    min_y = std::min(min_y, view.coordinates(i, 1));
    max_y = std::max(max_y, view.coordinates(i, 1));
  }
  const float span_x = std::max(max_x - min_x, 1e-6f);
  const float span_y = std::max(max_y - min_y, 1e-6f);
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t i = 0; i < view.sessions.size(); ++i) {
    const auto cx = static_cast<std::size_t>((view.coordinates(i, 0) - min_x) / span_x *
                                             static_cast<float>(width - 1));
    const auto cy = static_cast<std::size_t>((view.coordinates(i, 1) - min_y) / span_y *
                                             static_cast<float>(height - 1));
    // Cluster id 0..9 as digits, then letters.
    const std::size_t c = view.clusters[i];
    grid[cy][cx] = c < 10 ? static_cast<char>('0' + c)
                          : static_cast<char>('A' + static_cast<char>((c - 10) % 26));
  }
  std::ostringstream out;
  out << "+" << std::string(width, '-') << "+\n";
  for (const auto& row : grid) out << "|" << row << "|\n";
  out << "+" << std::string(width, '-') << "+\n";
  return out.str();
}

void export_interface_json(const TopicProjectionView& projection,
                           const TopicActionMatrixView& matrix, const ChordDiagramView& chord,
                           const ActionVocab& vocab, std::ostream& out) {
  JsonWriter j(out);
  j.begin_object();

  j.key("projection");
  j.begin_object();
  j.member("final_kl", projection.final_kl);
  j.key("topics");
  j.begin_array();
  for (std::size_t t = 0; t < projection.coordinates.rows(); ++t) {
    j.begin_object();
    j.member("id", t);
    j.member("run", projection.runs[t]);
    j.member("x", static_cast<double>(projection.coordinates(t, 0)));
    j.member("y", static_cast<double>(projection.coordinates(t, 1)));
    j.end_object();
  }
  j.end_array();
  j.end_object();

  j.key("topic_action_matrix");
  j.begin_object();
  j.member("topics", matrix.topics);
  j.member("actions", matrix.actions);
  j.member("threshold", static_cast<double>(matrix.threshold));
  j.key("cells");
  j.begin_array();
  for (const auto& cell : matrix.cells) {
    j.begin_object();
    j.member("topic", cell.topic);
    j.member("action", vocab.name(static_cast<int>(cell.action)));
    j.member("p", static_cast<double>(cell.probability));
    j.end_object();
  }
  j.end_array();
  j.end_object();

  j.key("chord");
  j.begin_object();
  j.member("top_n", chord.top_n);
  j.key("fans");
  j.begin_array();
  for (std::size_t i = 0; i < chord.selection.size(); ++i) {
    j.begin_object();
    j.member("topic", chord.selection[i]);
    j.member("size", chord.fan_sizes[i]);
    j.end_object();
  }
  j.end_array();
  j.key("links");
  j.begin_array();
  for (const auto& link : chord.links) {
    j.begin_object();
    j.member("a", chord.selection[link.a]);
    j.member("b", chord.selection[link.b]);
    j.member("shared", link.shared_actions);
    j.end_object();
  }
  j.end_array();
  j.end_object();

  j.end_object();
}

std::string render_projection_ascii(const TopicProjectionView& view, std::size_t width,
                                    std::size_t height) {
  const std::size_t n = view.coordinates.rows();
  assert(width >= 2 && height >= 2);
  float min_x = view.coordinates(0, 0), max_x = min_x;
  float min_y = view.coordinates(0, 1), max_y = min_y;
  for (std::size_t t = 0; t < n; ++t) {
    min_x = std::min(min_x, view.coordinates(t, 0));
    max_x = std::max(max_x, view.coordinates(t, 0));
    min_y = std::min(min_y, view.coordinates(t, 1));
    max_y = std::max(max_y, view.coordinates(t, 1));
  }
  const float span_x = std::max(max_x - min_x, 1e-6f);
  const float span_y = std::max(max_y - min_y, 1e-6f);

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t t = 0; t < n; ++t) {
    const auto cx = static_cast<std::size_t>((view.coordinates(t, 0) - min_x) / span_x *
                                             static_cast<float>(width - 1));
    const auto cy = static_cast<std::size_t>((view.coordinates(t, 1) - min_y) / span_y *
                                             static_cast<float>(height - 1));
    // Mark by owning run (a..z) so clusters of same-topic runs are visible.
    grid[cy][cx] = static_cast<char>('a' + static_cast<char>(view.runs[t] % 26));
  }
  std::ostringstream out;
  out << "+" << std::string(width, '-') << "+\n";
  for (const auto& row : grid) out << "|" << row << "|\n";
  out << "+" << std::string(width, '-') << "+\n";
  return out.str();
}

std::string render_matrix_ascii(const TopicActionMatrixView& view, const ActionVocab& vocab,
                                const topics::LdaEnsemble& ensemble, std::size_t max_topics,
                                std::size_t top_actions) {
  std::ostringstream out;
  const std::size_t shown = std::min(view.topics, max_topics);
  for (std::size_t t = 0; t < shown; ++t) {
    const auto& ref = ensemble.ref(t);
    const auto tops = ensemble.runs()[ref.run].top_actions(ref.topic_in_run, top_actions);
    out << "topic " << t << " (run " << ref.run << "): ";
    const auto dist = ensemble.topic_distribution(t);
    for (std::size_t i = 0; i < tops.size(); ++i) {
      if (i > 0) out << ", ";
      const float p = dist[tops[i]];
      // Opacity encoding: more '#' = higher probability.
      const auto opacity = static_cast<std::size_t>(std::min(p * 10.0f, 4.0f)) + 1;
      out << vocab.name(static_cast<int>(tops[i])) << " " << std::string(opacity, '#');
    }
    out << "\n";
  }
  if (view.topics > shown) out << "... (" << view.topics - shown << " more topics)\n";
  return out.str();
}

std::string render_chord_ascii(const ChordDiagramView& view) {
  std::ostringstream out;
  out << "chord fans (topic: top-action count):\n";
  for (std::size_t i = 0; i < view.selection.size(); ++i) {
    out << "  topic " << view.selection[i] << ": " << std::string(view.fan_sizes[i], '=') << " "
        << view.fan_sizes[i] << "\n";
  }
  out << "links (shared top actions):\n";
  for (const auto& link : view.links) {
    out << "  " << view.selection[link.a] << " <-> " << view.selection[link.b] << " "
        << std::string(link.shared_actions, '~') << " " << link.shared_actions << "\n";
  }
  return out.str();
}

}  // namespace misuse::viz

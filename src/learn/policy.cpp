#include "learn/policy.hpp"

namespace misuse::learn {

std::string_view learn_phase_name(LearnPhase phase) {
  switch (phase) {
    case LearnPhase::kIdle: return "idle";
    case LearnPhase::kCollecting: return "collecting";
    case LearnPhase::kTraining: return "training";
    case LearnPhase::kStaging: return "staging";
    case LearnPhase::kShadow: return "shadow";
    case LearnPhase::kDeciding: return "deciding";
    case LearnPhase::kWatching: return "watching";
  }
  return "unknown";
}

std::string_view decision_name(Decision decision) {
  switch (decision) {
    case Decision::kPromote: return "promote";
    case Decision::kReject: return "reject";
    case Decision::kRollback: return "rollback";
    case Decision::kSkip: return "skip";
  }
  return "unknown";
}

PolicyDecision evaluate_candidate(const PolicyConfig& config, bool active_degraded,
                                  bool candidate_degraded, const ShadowEvaluation& eval) {
  if (active_degraded || candidate_degraded) {
    return {Decision::kReject, "degraded_clusters"};
  }
  if (eval.steps < config.eval_budget_steps) {
    return {Decision::kReject, "insufficient_evidence"};
  }
  if (eval.flip_rate() > config.max_flip_rate) {
    return {Decision::kReject, "verdict_flip_rate"};
  }
  if (eval.mean_loss_delta > config.max_loss_delta) {
    return {Decision::kReject, "loss_delta"};
  }
  if (eval.drift_candidate > eval.drift_active + config.drift_margin) {
    return {Decision::kReject, "drift_regression"};
  }
  return {Decision::kPromote, "guardrails_passed"};
}

PolicyDecision evaluate_watch(const PolicyConfig& config, double baseline_drift,
                              double post_drift) {
  if (post_drift > baseline_drift + config.rollback_drift_margin) {
    return {Decision::kRollback, "post_promotion_drift"};
  }
  return {Decision::kSkip, "drift_stable"};
}

}  // namespace misuse::learn

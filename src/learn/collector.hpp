// Session-window collector: the front half of the continuous-learning
// loop. Tails the serve node's event stream (live WAL via
// serve::WalTailer, or replayed NDJSON) and assembles it into
// *labeled-by-cluster* session windows:
//
//   * events accumulate per session key; a window closes on an event-time
//     gap, on a length cap, or at flush() — event time only, so a replay
//     collects exactly like the live stream;
//   * each closed window is replayed through an OnlineMonitor and folded
//     by core::SessionAccumulator — the same accumulation every other
//     consumer of the online regime uses — and the report's voted cluster
//     labels the window;
//   * windows that alarmed are *excluded* from the training buffer: the
//     loop must not learn suspected misuse into "normal" (they still
//     count, in learn.windows_discarded);
//   * every eval_every-th admitted window is diverted to a held-out
//     evaluation set the trainer never sees — the offline shadow
//     comparison and the drift guardrails are measured on it;
//   * buffers are bounded FIFOs per cluster, so the collector holds a
//     sliding recent-behavior corpus, not unbounded history.
//
// Determinism: windows close either on their own session's next event or
// in sorted-key order (advance()/flush()/capacity eviction), never in
// hash-map iteration order, so two replays of the same stream produce
// identical buffers.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/detector.hpp"
#include "core/monitor.hpp"
#include "serve/event.hpp"
#include "serve/wal.hpp"

namespace misuse::learn {

struct CollectorConfig {
  /// Windows shorter than this are discarded (the paper's §IV-A filter).
  std::size_t min_actions = 2;
  /// A window reaching this length closes (and the session starts a new
  /// one) — bounds memory under never-idle sessions.
  std::size_t max_actions = 256;
  /// Event-time idle gap that closes a session's window.
  double gap_seconds = 900.0;
  /// Cap on concurrently open windows; the stalest (then smallest-key)
  /// closes first beyond it.
  std::size_t max_open_windows = 4096;
  /// Per-cluster training-buffer bound (FIFO of most recent windows).
  std::size_t buffer_windows = 512;
  /// Every Nth admitted window is held out for evaluation instead of
  /// training (0 disables the holdout).
  std::size_t eval_every = 5;
  /// Bound of the held-out evaluation FIFO.
  std::size_t eval_buffer_windows = 256;
  /// Windows with more alarmed steps than this never enter the training
  /// buffer.
  std::size_t max_alarm_steps = 0;
};

class SessionWindowCollector {
 public:
  SessionWindowCollector(std::shared_ptr<const core::MisuseDetector> model,
                         const core::MonitorConfig& monitor, const CollectorConfig& config);

  /// Swaps the labeling model (the loop follows the active version across
  /// promotions). Open windows are unaffected — labeling happens at
  /// close, under the model current then.
  void set_model(std::shared_ptr<const core::MisuseDetector> model);
  const core::MisuseDetector& model() const { return *model_; }

  /// Feeds one event (replayed NDJSON or a live WAL record).
  void observe(const serve::Event& event);
  /// Feeds one tailed WAL record: events collect, sweeps advance the
  /// clock (closing idle windows just like the server's TTL sweep).
  void observe(const serve::WalRecord& record);

  /// Advances event time, closing windows idle past the gap.
  void advance(double now);

  /// Closes every open window (end of a replay / cycle boundary).
  void flush();

  /// The per-cluster training buffers (index = cluster id).
  const std::vector<std::deque<std::vector<int>>>& training_buffers() const { return buffers_; }
  /// Copies the training buffers into the shape fine_tune consumes.
  std::vector<std::vector<std::vector<int>>> training_windows() const;
  /// Empties the training buffers (the cycle consumed them).
  void clear_training();
  std::size_t buffered_windows() const;

  /// Held-out evaluation windows (never trained on).
  std::vector<std::vector<int>> eval_windows() const;
  /// Monotone count of eval windows ever admitted — take a mark before an
  /// event segment, then read only the windows that closed after it.
  std::size_t eval_windows_seen() const { return eval_seen_; }
  std::vector<std::vector<int>> eval_windows_since(std::size_t mark) const;

  double clock() const { return clock_; }
  std::size_t open_windows() const { return open_.size(); }
  std::size_t discarded_windows() const { return discarded_; }
  std::size_t unknown_actions() const { return unknown_actions_; }

 private:
  struct OpenWindow {
    std::vector<int> actions;
    double last_seen = 0.0;
  };

  void close_window(const std::string& key);
  void close_keys_in_order(std::vector<std::string> keys);
  void evict_stalest();
  void update_buffer_gauge() const;

  std::shared_ptr<const core::MisuseDetector> model_;
  core::MonitorConfig monitor_;
  CollectorConfig config_;
  std::unordered_map<std::string, OpenWindow> open_;
  std::vector<std::deque<std::vector<int>>> buffers_;  // per cluster
  std::deque<std::pair<std::size_t, std::vector<int>>> eval_;  // (global index, window)
  std::size_t admitted_ = 0;
  std::size_t eval_seen_ = 0;
  std::size_t discarded_ = 0;
  std::size_t unknown_actions_ = 0;
  double clock_ = 0.0;
};

}  // namespace misuse::learn

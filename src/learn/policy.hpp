// Promotion policy of the continuous-learning loop: the pure decision
// function between "a candidate exists" and "the registry changed". All
// inputs are explicit (no clocks, no globals), so every guardrail is unit
// testable and two runs over the same evidence decide identically.
//
// Guardrails, in evaluation order (first failure wins — see DESIGN.md
// "Continuous learning" for the table):
//   1. degraded clusters       — never promote from or to a degraded model;
//   2. insufficient evidence   — the shadow run must cover the eval budget;
//   3. verdict-flip rate       — the candidate may not change more than
//                                max_flip_rate of the active verdicts;
//   4. loss delta              — mean |candidate loss − active loss| capped;
//   5. drift regression        — the candidate must not read *more* drifted
//                                on the held-out windows than the active.
// After a promotion, evaluate_watch() guards the other direction: if the
// post-promotion stream drifts past the pre-promotion baseline by
// rollback_drift_margin, the loop rolls back to the parent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace misuse::learn {

/// Where the loop currently is; exported as the learn.phase gauge and the
/// LEARN_STATUS "phase" field (ordinals are part of the metric contract).
enum class LearnPhase : int {
  kIdle = 0,       // waiting for enough windows
  kCollecting = 1, // tailing the stream into the buffer
  kTraining = 2,   // fine-tuning a candidate
  kStaging = 3,    // publishing the candidate to the registry
  kShadow = 4,     // shadow-evaluating candidate vs active
  kDeciding = 5,   // applying the guardrails
  kWatching = 6,   // post-promotion drift watch (rollback armed)
};
std::string_view learn_phase_name(LearnPhase phase);

struct PolicyConfig {
  /// Minimum shadow-scored steps before a decision is allowed.
  std::size_t eval_budget_steps = 500;
  /// Max fraction of shadow steps whose alarm verdict may differ.
  double max_flip_rate = 0.02;
  /// Max mean |candidate NLL − active NLL| over shadow-scored steps.
  double max_loss_delta = 0.05;
  /// The candidate's drift gauge may exceed the active's by at most this.
  double drift_margin = 0.005;
  /// Post-promotion: roll back when drift exceeds the pre-promotion
  /// baseline by more than this.
  double rollback_drift_margin = 0.01;
};

/// Evidence gathered by the shadow evaluation of one candidate.
struct ShadowEvaluation {
  std::size_t steps = 0;          // shadow-scored steps
  std::size_t sessions = 0;       // held-out windows replayed
  std::size_t verdict_flips = 0;  // steps where the alarm verdicts differ
  double mean_loss_delta = 0.0;   // mean |candidate NLL − active NLL|
  double drift_active = 0.0;      // active model's drift on the eval windows
  double drift_candidate = 0.0;   // candidate's drift on the same windows

  double flip_rate() const {
    return steps == 0 ? 0.0 : static_cast<double>(verdict_flips) / static_cast<double>(steps);
  }
};

enum class Decision {
  kPromote,   // candidate becomes active
  kReject,    // candidate retired, active unchanged
  kRollback,  // active rolled back to its parent
  kSkip,      // no action this cycle
};
std::string_view decision_name(Decision decision);

struct PolicyDecision {
  Decision decision = Decision::kSkip;
  /// Machine-readable reason ("guardrails_passed", "verdict_flip_rate",
  /// ...); lands verbatim in the audit record.
  std::string reason;
};

/// Applies the promotion guardrails to one candidate's evidence.
PolicyDecision evaluate_candidate(const PolicyConfig& config, bool active_degraded,
                                  bool candidate_degraded, const ShadowEvaluation& eval);

/// Applies the post-promotion drift watch. `baseline_drift` is the
/// candidate's drift gauge at promotion time; `post_drift` is the current
/// reading over the windows that closed since.
PolicyDecision evaluate_watch(const PolicyConfig& config, double baseline_drift,
                              double post_drift);

}  // namespace misuse::learn

#include "learn/audit.hpp"

#include <cstdio>
#include <sstream>

#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace misuse::learn {

std::string render_audit_record(const AuditRecord& record) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("type", "learn_decision");
    json.member("cycle", static_cast<long long>(record.cycle));
    json.member("phase", learn_phase_name(record.phase));
    json.member("decision", decision_name(record.decision));
    json.member("reason", record.reason);
    json.member("candidate", static_cast<long long>(record.candidate));
    json.member("parent", static_cast<long long>(record.parent));
    json.member("shadow_steps", record.eval.steps);
    json.member("shadow_sessions", record.eval.sessions);
    json.member("verdict_flips", record.eval.verdict_flips);
    json.member("flip_rate", record.eval.flip_rate());
    json.member("loss_delta", record.eval.mean_loss_delta);
    json.member("drift_active", record.eval.drift_active);
    json.member("drift_candidate", record.eval.drift_candidate);
    json.member("event_clock", record.event_clock);
    json.member("topic_alignment_min", record.topic_alignment_min);
    json.member("windows", record.windows);
    json.end_object();
  }
  out << '\n';
  return out.str();
}

bool AuditLog::append(const AuditRecord& record) {
  const std::string line = render_audit_record(record);
  std::FILE* file = std::fopen(path_.c_str(), "ab");
  if (file == nullptr) {
    log_warn() << "audit log unwritable: " << path_;
    return false;
  }
  const bool ok = std::fwrite(line.data(), 1, line.size(), file) == line.size();
  std::fclose(file);
  if (!ok) log_warn() << "audit append failed on " << path_;
  return ok;
}

std::string render_learn_status(const LearnStatus& status) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("phase", learn_phase_name(status.phase));
    json.member("cycle", static_cast<long long>(status.cycle));
    json.member("candidate", static_cast<long long>(status.candidate));
    json.member("decision", status.decision);
    json.member("reason", status.reason);
    json.member("flip_rate", status.flip_rate);
    json.member("loss_delta", status.loss_delta);
    json.member("drift_active", status.drift_active);
    json.member("drift_candidate", status.drift_candidate);
    json.member("buffer_windows", status.buffer_windows);
    json.end_object();
  }
  return out.str();
}

bool write_learn_status(const std::string& path, const LearnStatus& status) {
  if (!write_file_atomic(path, render_learn_status(status))) {
    log_warn() << "learn status unwritable: " << path;
    return false;
  }
  return true;
}

}  // namespace misuse::learn

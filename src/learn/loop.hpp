// The continuous-learning loop (misusedet_learnd's engine): wires the
// collector, the incremental trainer (core::MisuseDetector::fine_tune),
// the registry candidate pipeline, the offline shadow evaluation, and the
// promotion policy into one deterministic cycle:
//
//   collect → fine-tune → publish (staging, parent-stamped) → promote to
//   canary → shadow-evaluate on the held-out windows → guardrail decision
//   → promote to active / retire — then a post-promotion drift watch that
//   rolls back to the parent if the stream regresses.
//
// Determinism contract (pinned by test_learn.cpp): the loop consumes only
// the event stream and the registry; no wall-clock value reaches the
// candidate archive, the decisions, or the audit records, so a fixed seed
// and a fixed input stream reproduce byte-identical candidates and logs.
// Wall time only feeds metrics (learn.train_seconds / cycle_seconds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/drift.hpp"
#include "learn/audit.hpp"
#include "learn/collector.hpp"
#include "learn/policy.hpp"
#include "registry/registry.hpp"

namespace misuse::learn {

/// Replays each held-out window through an OnlineMonitor pair (active,
/// candidate) and fills the policy's evidence. Same semantics as the
/// serving shadow scorer (serve/shadow.cpp): a flip is a step whose alarm
/// verdicts differ; the loss delta is |candidate NLL − active NLL| of the
/// voted likelihoods (1e-12 floor), averaged over the steps where both
/// sides scored. Drift gauges come from one DriftMonitor per side built
/// from each model's own training_action_counts over the same windows.
ShadowEvaluation shadow_evaluate(const core::MisuseDetector& active,
                                 const core::MisuseDetector& candidate,
                                 const core::MonitorConfig& monitor,
                                 const core::DriftConfig& drift,
                                 std::span<const std::vector<int>> windows);

struct LearnLoopConfig {
  core::MonitorConfig monitor;
  CollectorConfig collector;
  core::FineTuneConfig trainer;
  PolicyConfig policy;
  core::DriftConfig drift;
  /// A cycle below this many buffered windows is skipped (audited as
  /// "insufficient_windows").
  std::size_t min_train_windows = 32;
  /// The drift watch stays silent until this many held-out windows closed
  /// after the promotion.
  std::size_t watch_min_windows = 8;
  /// Consume (clear) the training buffer after a fine-tune pass.
  bool clear_buffer_after_train = true;
  /// Stamped into the published candidate's registry note.
  std::string note = "learnd fine-tune";
};

class LearnLoop {
 public:
  /// Opens the registry at `registry_root`; an active version must exist.
  /// `audit_path` / `status_path` default (when empty) to
  /// <registry_root>/learn_audit.ndjson and <registry_root>/LEARN_STATUS.
  LearnLoop(std::string registry_root, const LearnLoopConfig& config,
            std::string audit_path = "", std::string status_path = "");

  /// Invoked after every registry mutation the loop performs (canary
  /// publish, promote, retire, rollback) — misusedet_learnd uses it to
  /// SIGHUP the serve node so its reloader picks the change up at once.
  void set_registry_change_hook(std::function<void(std::string_view what)> hook) {
    on_registry_change_ = std::move(hook);
  }

  // -- Event intake (delegates to the collector) ---------------------------
  void observe(const serve::Event& event);
  void observe(const serve::WalRecord& record);
  void advance(double now) { collector_->advance(now); }
  void flush() { collector_->flush(); }
  SessionWindowCollector& collector() { return *collector_; }

  /// One collect→train→stage→shadow→decide pass. Returns the audit record
  /// of the decision (also appended to the audit log), or nullopt when
  /// nothing happened (no active version change and not enough windows —
  /// even that skip is audited, so nullopt only means "no record written"
  /// ... it never is: every call writes exactly one record).
  AuditRecord run_cycle();

  /// The post-promotion drift watch; returns the rollback audit record
  /// when it fired, nullopt while the watch is silent or disarmed.
  std::optional<AuditRecord> watch();

  const LearnStatus& status() const { return status_; }
  std::uint64_t active_version() const { return active_version_; }
  const core::MisuseDetector& active() const { return *active_; }
  bool watch_armed() const { return watch_armed_; }
  std::uint64_t cycles() const { return cycle_; }

 private:
  void refresh_active();
  void set_phase(LearnPhase phase);
  void publish_status();
  AuditRecord finish_decision(AuditRecord record);
  void notify_registry_change(std::string_view what);

  registry::ModelRegistry registry_;
  LearnLoopConfig config_;
  AuditLog audit_;
  std::string status_path_;
  std::shared_ptr<const core::MisuseDetector> active_;
  std::uint64_t active_version_ = 0;
  std::optional<SessionWindowCollector> collector_;
  std::function<void(std::string_view)> on_registry_change_;
  LearnStatus status_;
  std::uint64_t cycle_ = 0;

  // Post-promotion watch state.
  bool watch_armed_ = false;
  double watch_baseline_ = 0.0;
  std::size_t watch_mark_ = 0;
  std::uint64_t watch_version_ = 0;
  std::uint64_t watch_parent_ = 0;
};

}  // namespace misuse::learn

// Instrument panel of the continuous-learning loop (misusedet_learnd).
// Same pattern as serve::ServeMetrics: one process-wide bundle of
// registry-owned instruments, resolved once. Exported over the admin
// plane (--metrics-out / Prometheus) as misusedet_learn_*.
#pragma once

#include "util/metrics.hpp"

namespace misuse::learn {

struct LearnMetrics {
  // Collector.
  Counter& windows_collected;  // learn.windows_collected — labeled windows buffered
  Counter& windows_discarded;  // learn.windows_discarded — short / alarmed / unknown-action
  Gauge& buffer_windows;       // learn.buffer_windows — windows currently buffered

  // Trainer + candidate pipeline.
  Counter& cycles;                 // learn.cycles — collect→train→decide passes completed
  Counter& candidates_published;   // learn.candidates_published — staging versions created
  HistogramMetric& train_seconds;  // learn.train_seconds — fine-tune wall clock per cycle
  HistogramMetric& cycle_seconds;  // learn.cycle_seconds — whole cycle wall clock

  // Policy decisions.
  Counter& promotions;  // learn.promotions — candidates promoted to active
  Counter& rejections;  // learn.rejections — candidates retired by a guardrail
  Counter& rollbacks;   // learn.rollbacks — post-promotion drift rollbacks

  // Live state (what /statusz and misusedet_top surface).
  Gauge& phase;              // learn.phase — LearnPhase ordinal
  Gauge& candidate_version;  // learn.candidate_version — version under evaluation (0 = none)
  Gauge& flip_rate_micro;    // learn.flip_rate_micro — last shadow flip rate, 1e-6 units
};

/// The shared bundle; registers the instruments on first call.
LearnMetrics& learn_metrics();

}  // namespace misuse::learn

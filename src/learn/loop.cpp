#include "learn/loop.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/monitor.hpp"
#include "learn/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace misuse::learn {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double drift_over_windows(const core::MisuseDetector& model, const core::DriftConfig& config,
                          std::span<const std::vector<int>> windows) {
  std::vector<double> reference = model.training_action_counts();
  if (reference.empty()) return 0.0;  // v1 archive: no drift reference
  core::DriftConfig sized = config;
  // The guardrail reads the divergence over exactly the held-out windows;
  // size the monitor's sliding window to cover them all so none age out.
  sized.window_sessions = std::max<std::size_t>(windows.size(), 1);
  core::DriftMonitor drift(std::move(reference), sized);
  for (const auto& window : windows) drift.observe(window);
  return drift.current_divergence();
}

}  // namespace

ShadowEvaluation shadow_evaluate(const core::MisuseDetector& active,
                                 const core::MisuseDetector& candidate,
                                 const core::MonitorConfig& monitor,
                                 const core::DriftConfig& drift,
                                 std::span<const std::vector<int>> windows) {
  ShadowEvaluation eval;
  double loss_delta_sum = 0.0;
  std::size_t loss_delta_steps = 0;
  for (const auto& window : windows) {
    core::OnlineMonitor active_monitor(active, monitor);
    core::OnlineMonitor candidate_monitor(candidate, monitor);
    ++eval.sessions;
    for (int action : window) {
      const auto active_step = active_monitor.observe(action);
      const auto candidate_step = candidate_monitor.observe(action);
      ++eval.steps;
      if (candidate_step.alarm != active_step.alarm) ++eval.verdict_flips;
      if (active_step.likelihood_voted && candidate_step.likelihood_voted) {
        const double active_loss = -std::log(std::max(*active_step.likelihood_voted, 1e-12));
        const double candidate_loss =
            -std::log(std::max(*candidate_step.likelihood_voted, 1e-12));
        loss_delta_sum += std::abs(candidate_loss - active_loss);
        ++loss_delta_steps;
      }
    }
  }
  if (loss_delta_steps > 0) eval.mean_loss_delta = loss_delta_sum / loss_delta_steps;
  eval.drift_active = drift_over_windows(active, drift, windows);
  eval.drift_candidate = drift_over_windows(candidate, drift, windows);
  return eval;
}

LearnLoop::LearnLoop(std::string registry_root, const LearnLoopConfig& config,
                     std::string audit_path, std::string status_path)
    : registry_(std::move(registry_root)),
      config_(config),
      audit_(audit_path.empty() ? registry_.root() + "/learn_audit.ndjson"
                                : std::move(audit_path)),
      status_path_(status_path.empty() ? registry_.root() + "/LEARN_STATUS"
                                       : std::move(status_path)) {
  const auto current = registry_.current();
  if (!current) {
    throw registry::RegistryError("learn loop needs an active registry version (promote one)");
  }
  active_ = registry_.load(*current);
  active_version_ = *current;
  collector_.emplace(active_, config_.monitor, config_.collector);
  set_phase(LearnPhase::kCollecting);
  publish_status();
}

void LearnLoop::observe(const serve::Event& event) { collector_->observe(event); }

void LearnLoop::observe(const serve::WalRecord& record) { collector_->observe(record); }

void LearnLoop::refresh_active() {
  const auto current = registry_.current();
  if (current && *current != active_version_) {
    // Someone promoted/rolled back behind our back; follow the registry.
    active_ = registry_.load(*current);
    active_version_ = *current;
    collector_->set_model(active_);
    watch_armed_ = false;  // the watched version is no longer active
  }
}

void LearnLoop::set_phase(LearnPhase phase) {
  status_.phase = phase;
  learn_metrics().phase.set(static_cast<std::int64_t>(phase));
}

void LearnLoop::publish_status() {
  status_.cycle = cycle_;
  status_.buffer_windows = collector_->buffered_windows();
  write_learn_status(status_path_, status_);
}

void LearnLoop::notify_registry_change(std::string_view what) {
  if (on_registry_change_) on_registry_change_(what);
}

AuditRecord LearnLoop::finish_decision(AuditRecord record) {
  record.cycle = cycle_;
  record.event_clock = collector_->clock();
  audit_.append(record);

  auto& instruments = learn_metrics();
  switch (record.decision) {
    case Decision::kPromote: instruments.promotions.inc(); break;
    case Decision::kReject: instruments.rejections.inc(); break;
    case Decision::kRollback: instruments.rollbacks.inc(); break;
    case Decision::kSkip: break;
  }
  instruments.flip_rate_micro.set(static_cast<std::int64_t>(record.eval.flip_rate() * 1e6));
  instruments.candidate_version.set(static_cast<std::int64_t>(record.candidate));

  status_.candidate = record.candidate;
  status_.decision = std::string(decision_name(record.decision));
  status_.reason = record.reason;
  status_.flip_rate = record.eval.flip_rate();
  status_.loss_delta = record.eval.mean_loss_delta;
  status_.drift_active = record.eval.drift_active;
  status_.drift_candidate = record.eval.drift_candidate;
  set_phase(watch_armed_ ? LearnPhase::kWatching : LearnPhase::kCollecting);
  publish_status();
  return record;
}

AuditRecord LearnLoop::run_cycle() {
  const auto cycle_start = std::chrono::steady_clock::now();
  auto& instruments = learn_metrics();
  ++cycle_;
  instruments.cycles.inc();
  refresh_active();

  AuditRecord record;
  record.phase = LearnPhase::kDeciding;
  record.parent = active_version_;

  // Guardrail 1 runs before any training: a degraded active model must
  // never seed a candidate (fine_tune would refuse anyway; rejecting here
  // makes the decision auditable instead of an exception).
  if (active_->degraded_cluster_count() > 0) {
    record.decision = Decision::kReject;
    record.reason = "degraded_clusters";
    instruments.cycle_seconds.record(seconds_since(cycle_start));
    return finish_decision(std::move(record));
  }

  record.windows = collector_->buffered_windows();
  if (record.windows < config_.min_train_windows) {
    record.decision = Decision::kSkip;
    record.reason = "insufficient_windows";
    instruments.cycle_seconds.record(seconds_since(cycle_start));
    return finish_decision(std::move(record));
  }

  // -- Train ---------------------------------------------------------------
  set_phase(LearnPhase::kTraining);
  publish_status();
  const auto train_start = std::chrono::steady_clock::now();
  core::FineTuneReport report;
  core::MisuseDetector candidate = core::MisuseDetector::fine_tune(
      *active_, collector_->training_windows(), config_.trainer, &report);
  instruments.train_seconds.record(seconds_since(train_start));
  if (config_.clear_buffer_after_train) collector_->clear_training();
  record.windows = report.windows;
  for (const auto& stats : report.clusters) {
    record.topic_alignment_min = std::min(record.topic_alignment_min, stats.topic_alignment);
  }

  // -- Stage ---------------------------------------------------------------
  set_phase(LearnPhase::kStaging);
  std::ostringstream archive(std::ios::binary);
  {
    BinaryWriter writer(archive);
    candidate.save(writer);
  }
  std::string bytes = archive.str();
  if (MISUSEDET_FAILPOINT("learn.train.corrupt")) {
    // Injected training corruption: the registry's publish-time archive
    // validation is the guard under test. Flip the trailing file-CRC
    // byte — a mid-file flip can land inside a model section, which the
    // loader absorbs as a *degraded* cluster instead of a parse error.
    bytes[bytes.size() - 1] ^= 0x40;
  }
  const std::string staging_path = registry_.root() + "/candidate.inflight.bin";
  std::uint64_t version = 0;
  try {
    if (!write_file_atomic(staging_path, bytes)) {
      throw registry::RegistryError("cannot write " + staging_path);
    }
    version = registry_.publish(staging_path, config_.note, active_version_);
  } catch (const std::exception& e) {
    std::remove(staging_path.c_str());
    log_warn() << "candidate rejected at publish: " << e.what();
    record.decision = Decision::kReject;
    record.reason = "candidate_invalid";
    instruments.cycle_seconds.record(seconds_since(cycle_start));
    return finish_decision(std::move(record));
  }
  std::remove(staging_path.c_str());
  record.candidate = version;
  instruments.candidates_published.inc();
  instruments.candidate_version.set(static_cast<std::int64_t>(version));
  registry_.promote(version);  // staging -> canary: serve shadow-scores it
  notify_registry_change("canary");

  // -- Shadow-evaluate -----------------------------------------------------
  set_phase(LearnPhase::kShadow);
  publish_status();
  // Judge the bytes the registry would serve, not the in-memory object.
  std::shared_ptr<const core::MisuseDetector> published = registry_.load(version);
  record.eval = shadow_evaluate(*active_, *published, config_.monitor, config_.drift,
                                collector_->eval_windows());

  // -- Decide --------------------------------------------------------------
  set_phase(LearnPhase::kDeciding);
  const PolicyDecision decision =
      evaluate_candidate(config_.policy, active_->degraded_cluster_count() > 0,
                         published->degraded_cluster_count() > 0, record.eval);
  record.decision = decision.decision;
  record.reason = decision.reason;

  if (decision.decision == Decision::kPromote) {
    registry_.promote(version);  // canary -> active
    active_ = std::move(published);
    watch_parent_ = active_version_;
    active_version_ = version;
    collector_->set_model(active_);
    watch_armed_ = true;
    watch_baseline_ = record.eval.drift_candidate;
    watch_mark_ = collector_->eval_windows_seen();
    watch_version_ = version;
    notify_registry_change("promote");
  } else {
    registry_.retire(version);
    notify_registry_change("retire");
  }

  instruments.cycle_seconds.record(seconds_since(cycle_start));
  return finish_decision(std::move(record));
}

std::optional<AuditRecord> LearnLoop::watch() {
  if (!watch_armed_) return std::nullopt;
  refresh_active();
  if (!watch_armed_) return std::nullopt;  // external registry change disarmed it

  const std::vector<std::vector<int>> windows =
      collector_->eval_windows_since(watch_mark_);
  if (windows.size() < config_.watch_min_windows) {
    publish_status();
    return std::nullopt;
  }

  const double post_drift = drift_over_windows(*active_, config_.drift, windows);
  const PolicyDecision decision =
      evaluate_watch(config_.policy, watch_baseline_, post_drift);
  if (decision.decision != Decision::kRollback) {
    status_.drift_active = post_drift;
    publish_status();
    return std::nullopt;
  }

  registry_.rollback_to(watch_parent_);
  watch_armed_ = false;
  active_ = registry_.load(watch_parent_);
  const std::uint64_t rolled_back = watch_version_;
  active_version_ = watch_parent_;
  collector_->set_model(active_);
  notify_registry_change("rollback");

  AuditRecord record;
  record.phase = LearnPhase::kWatching;
  record.decision = Decision::kRollback;
  record.reason = decision.reason;
  record.candidate = rolled_back;
  record.parent = watch_parent_;
  record.eval.sessions = windows.size();
  record.eval.drift_active = watch_baseline_;
  record.eval.drift_candidate = post_drift;
  return finish_decision(std::move(record));
}

}  // namespace misuse::learn

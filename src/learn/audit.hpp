// Audit trail of the continuous-learning loop. Every policy decision —
// promote, reject, rollback, skip — becomes one flat-JSON record in an
// append-only NDJSON log, and the latest state is mirrored to a
// LEARN_STATUS file next to the registry so the serve node's /statusz
// (and misusedet_top) can surface it without talking to learnd.
//
// Records carry *event-stream* time only (the collector clock), never
// wall-clock time: the audit log of a replayed stream is byte-identical
// across runs, which is what the end-to-end determinism test pins.
#pragma once

#include <cstdint>
#include <string>

#include "learn/policy.hpp"

namespace misuse::learn {

/// One policy decision with the evidence it was made on.
struct AuditRecord {
  std::uint64_t cycle = 0;            // loop cycle counter
  LearnPhase phase = LearnPhase::kDeciding;
  Decision decision = Decision::kSkip;
  std::string reason;                 // PolicyDecision::reason verbatim
  std::uint64_t candidate = 0;        // registry version judged (0 = none)
  std::uint64_t parent = 0;           // its rollback target (0 = none)
  ShadowEvaluation eval;              // the evidence
  double event_clock = 0.0;           // collector event time at decision
  double topic_alignment_min = 1.0;   // weakest cluster/topic cosine (trainer report)
  std::size_t windows = 0;            // training windows consumed this cycle
};

/// Renders one record as a single flat-JSON line (newline-terminated).
std::string render_audit_record(const AuditRecord& record);

/// Append-only NDJSON decision log.
class AuditLog {
 public:
  explicit AuditLog(std::string path) : path_(std::move(path)) {}

  /// Appends one record; returns false (and logs) on I/O failure — the
  /// loop keeps running, auditability degrades, not availability.
  bool append(const AuditRecord& record);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Live state mirrored for the serving plane (admin /statusz, top).
struct LearnStatus {
  LearnPhase phase = LearnPhase::kIdle;
  std::uint64_t cycle = 0;
  std::uint64_t candidate = 0;       // version under evaluation / last judged
  std::string decision = "none";     // last policy decision
  std::string reason = "startup";
  double flip_rate = 0.0;
  double loss_delta = 0.0;
  double drift_active = 0.0;
  double drift_candidate = 0.0;
  std::size_t buffer_windows = 0;
};

/// Renders LearnStatus as one flat-JSON line (no trailing newline) — the
/// shape /statusz re-emits with a learn_ prefix.
std::string render_learn_status(const LearnStatus& status);

/// Atomically writes the status file (tmp + rename); false on failure.
bool write_learn_status(const std::string& path, const LearnStatus& status);

}  // namespace misuse::learn

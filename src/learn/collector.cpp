#include "learn/collector.hpp"

#include <algorithm>
#include <utility>

#include "learn/metrics.hpp"

namespace misuse::learn {

SessionWindowCollector::SessionWindowCollector(
    std::shared_ptr<const core::MisuseDetector> model, const core::MonitorConfig& monitor,
    const CollectorConfig& config)
    : model_(std::move(model)), monitor_(monitor), config_(config) {
  buffers_.resize(model_->clusters().size());
}

void SessionWindowCollector::set_model(std::shared_ptr<const core::MisuseDetector> model) {
  model_ = std::move(model);
  // Cluster count is inherited across fine-tune generations, but guard
  // against an operator pointing the loop at an unrelated registry.
  if (buffers_.size() != model_->clusters().size()) {
    buffers_.assign(model_->clusters().size(), {});
    update_buffer_gauge();
  }
}

void SessionWindowCollector::observe(const serve::Event& event) {
  const double ts = event.has_timestamp ? event.timestamp : clock_;
  clock_ = std::max(clock_, ts);

  std::string key = serve::session_key(event);
  auto it = open_.find(key);
  if (it != open_.end() && ts - it->second.last_seen > config_.gap_seconds) {
    close_window(key);
    it = open_.end();
  }

  const int action = serve::resolve_action_id(model_->vocab(), event.action);
  if (action < 0) {
    // Unknown under the *active* vocabulary — fine-tuning never grows the
    // vocab, so the window cannot represent the action either. Count it
    // and keep the window's known-action subsequence.
    ++unknown_actions_;
    return;
  }

  if (it == open_.end()) {
    if (open_.size() >= config_.max_open_windows) evict_stalest();
    it = open_.emplace(std::move(key), OpenWindow{}).first;
  }
  it->second.actions.push_back(action);
  it->second.last_seen = std::max(it->second.last_seen, ts);
  if (it->second.actions.size() >= config_.max_actions) close_window(it->first);
}

void SessionWindowCollector::observe(const serve::WalRecord& record) {
  switch (record.type) {
    case serve::WalRecord::kEvent:
      observe(record.event);
      break;
    case serve::WalRecord::kSweep:
      advance(record.sweep_now);
      break;
    default:
      break;
  }
}

void SessionWindowCollector::advance(double now) {
  clock_ = std::max(clock_, now);
  std::vector<std::string> idle;
  for (const auto& [key, window] : open_) {
    if (clock_ - window.last_seen > config_.gap_seconds) idle.push_back(key);
  }
  close_keys_in_order(std::move(idle));
}

void SessionWindowCollector::flush() {
  std::vector<std::string> keys;
  keys.reserve(open_.size());
  for (const auto& [key, window] : open_) keys.push_back(key);
  close_keys_in_order(std::move(keys));
}

void SessionWindowCollector::close_keys_in_order(std::vector<std::string> keys) {
  std::sort(keys.begin(), keys.end());
  for (const auto& key : keys) close_window(key);
}

void SessionWindowCollector::evict_stalest() {
  // Deterministic LRU: oldest event time, ties broken by smallest key.
  const std::string* victim = nullptr;
  for (const auto& [key, window] : open_) {
    if (victim == nullptr || window.last_seen < open_.at(*victim).last_seen ||
        (window.last_seen == open_.at(*victim).last_seen && key < *victim)) {
      victim = &key;
    }
  }
  if (victim != nullptr) close_window(*victim);
}

void SessionWindowCollector::close_window(const std::string& key) {
  auto it = open_.find(key);
  if (it == open_.end()) return;
  std::vector<int> actions = std::move(it->second.actions);
  open_.erase(it);

  auto& instruments = learn_metrics();
  if (actions.size() < config_.min_actions) {
    ++discarded_;
    instruments.windows_discarded.inc();
    return;
  }

  // Label the window under the current active model: same monitor + same
  // accumulation as every other consumer of the online regime.
  core::OnlineMonitor monitor(*model_, monitor_);
  core::SessionAccumulator accumulator;
  for (int action : actions) accumulator.add(monitor.observe(action));
  const core::SessionMonitorReport report = accumulator.report();

  if (report.alarms > config_.max_alarm_steps) {
    // Suspected misuse never enters the training corpus.
    ++discarded_;
    instruments.windows_discarded.inc();
    return;
  }

  ++admitted_;
  instruments.windows_collected.inc();
  if (config_.eval_every != 0 && admitted_ % config_.eval_every == 0) {
    eval_.emplace_back(eval_seen_++, std::move(actions));
    while (eval_.size() > config_.eval_buffer_windows) eval_.pop_front();
    return;
  }

  auto& buffer = buffers_[report.voted_cluster];
  buffer.push_back(std::move(actions));
  while (buffer.size() > config_.buffer_windows) buffer.pop_front();
  update_buffer_gauge();
}

std::vector<std::vector<std::vector<int>>> SessionWindowCollector::training_windows() const {
  std::vector<std::vector<std::vector<int>>> out(buffers_.size());
  for (std::size_t c = 0; c < buffers_.size(); ++c) {
    out[c].assign(buffers_[c].begin(), buffers_[c].end());
  }
  return out;
}

void SessionWindowCollector::clear_training() {
  for (auto& buffer : buffers_) buffer.clear();
  update_buffer_gauge();
}

std::size_t SessionWindowCollector::buffered_windows() const {
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer.size();
  return total;
}

std::vector<std::vector<int>> SessionWindowCollector::eval_windows() const {
  std::vector<std::vector<int>> out;
  out.reserve(eval_.size());
  for (const auto& [index, window] : eval_) out.push_back(window);
  return out;
}

std::vector<std::vector<int>> SessionWindowCollector::eval_windows_since(std::size_t mark) const {
  std::vector<std::vector<int>> out;
  for (const auto& [index, window] : eval_) {
    if (index >= mark) out.push_back(window);
  }
  return out;
}

void SessionWindowCollector::update_buffer_gauge() const {
  learn_metrics().buffer_windows.set(static_cast<std::int64_t>(buffered_windows()));
}

}  // namespace misuse::learn

#include "learn/metrics.hpp"

namespace misuse::learn {

LearnMetrics& learn_metrics() {
  static LearnMetrics instruments{
      metrics().counter("learn.windows_collected"),
      metrics().counter("learn.windows_discarded"),
      metrics().gauge("learn.buffer_windows"),
      metrics().counter("learn.cycles"),
      metrics().counter("learn.candidates_published"),
      metrics().histogram("learn.train_seconds"),
      metrics().histogram("learn.cycle_seconds"),
      metrics().counter("learn.promotions"),
      metrics().counter("learn.rejections"),
      metrics().counter("learn.rollbacks"),
      metrics().gauge("learn.phase"),
      metrics().gauge("learn.candidate_version"),
      metrics().gauge("learn.flip_rate_micro"),
  };
  return instruments;
}

}  // namespace misuse::learn

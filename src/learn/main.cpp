// misusedet_learnd — the continuous-learning daemon (DESIGN.md
// "Continuous learning"). Tails a serve node's WAL directory (or replays
// an NDJSON event file) into the session-window collector, periodically
// fine-tunes a candidate from the active registry version, publishes it
// staging→canary (nudging the serve node's reloader via SIGHUP so its
// shadow scorer follows), shadow-evaluates it on held-out windows, and
// applies the guarded promotion policy. Every decision is one flat-JSON
// audit line (also echoed to stdout) and the live state lands in
// <registry>/LEARN_STATUS for /statusz and misusedet_top.
//
// Replay mode is the determinism contract: with a fixed seed and a fixed
// input, two runs produce byte-identical candidate archives, decisions,
// and audit logs. Each positional FILE is one input segment; after each
// segment the daemon flushes the collector, runs the drift watch, and —
// while under --max-cycles — one training cycle.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/observability.hpp"
#include "learn/loop.hpp"
#include "serve/wal.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

void usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s --registry=DIR [FILE...] [--wal-dir=DIR]\n"
               "  input (pick one):\n"
               "    FILE...                  NDJSON event segments, replayed in order ('-' = stdin)\n"
               "    --wal-dir=DIR            tail a live serve node's WAL directory\n"
               "  loop:\n"
               "    --min-train-windows=N    buffered windows needed to train (default 32)\n"
               "    --max-cycles=N           training cycles to run, 0 = unlimited (default 0)\n"
               "    --once                   exit after the first non-skip decision (tail mode)\n"
               "    --poll-ms=N              WAL poll interval (default 200)\n"
               "    --idle-exit-ms=N         tail mode: exit after N ms without records (default 0 = never)\n"
               "    --serve-pid=PID          SIGHUP this pid after each registry change\n"
               "  trainer:\n"
               "    --epochs=N --learning-rate=F --min-cluster-sessions=N --seed=N\n"
               "  collector:\n"
               "    --gap-seconds=F --buffer-windows=N --eval-every=N --max-alarm-steps=N\n"
               "  policy:\n"
               "    --eval-budget=N --max-flip-rate=F --max-loss-delta=F\n"
               "    --drift-margin=F --rollback-drift-margin=F --watch-min-windows=N\n"
               "  output:\n"
               "    --audit=PATH --status=PATH --note=STR --metrics-out=PATH\n",
               program);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace misuse;
  CliArgs args(argc, argv);
  const std::string registry_root = args.str("registry");
  if (registry_root.empty() || args.flag("help")) {
    usage(args.program().c_str());
    return registry_root.empty() ? 2 : 0;
  }

  learn::LearnLoopConfig config;
  config.trainer.epochs = static_cast<std::size_t>(args.integer("epochs", 2));
  config.trainer.learning_rate = static_cast<float>(args.real("learning-rate", 2e-4));
  config.trainer.min_cluster_sessions =
      static_cast<std::size_t>(args.integer("min-cluster-sessions", 8));
  config.trainer.seed = static_cast<std::uint64_t>(args.integer("seed", 97));
  config.collector.gap_seconds = args.real("gap-seconds", 900.0);
  config.collector.buffer_windows = static_cast<std::size_t>(args.integer("buffer-windows", 512));
  config.collector.eval_every = static_cast<std::size_t>(args.integer("eval-every", 5));
  config.collector.max_alarm_steps =
      static_cast<std::size_t>(args.integer("max-alarm-steps", 0));
  config.policy.eval_budget_steps = static_cast<std::size_t>(args.integer("eval-budget", 500));
  config.policy.max_flip_rate = args.real("max-flip-rate", 0.02);
  config.policy.max_loss_delta = args.real("max-loss-delta", 0.05);
  config.policy.drift_margin = args.real("drift-margin", 0.005);
  config.policy.rollback_drift_margin = args.real("rollback-drift-margin", 0.01);
  config.min_train_windows = static_cast<std::size_t>(args.integer("min-train-windows", 32));
  config.watch_min_windows = static_cast<std::size_t>(args.integer("watch-min-windows", 8));
  if (args.has("note")) config.note = args.str("note");

  core::MetricsExport metrics_export(args.str("metrics-out"));
  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  try {
    learn::LearnLoop loop(registry_root, config, args.str("audit"), args.str("status"));

    const long serve_pid = args.integer("serve-pid", 0);
    if (serve_pid > 0) {
      loop.set_registry_change_hook([serve_pid](std::string_view what) {
        log_info() << "registry " << what << "; SIGHUP -> " << serve_pid;
        kill(static_cast<pid_t>(serve_pid), SIGHUP);
      });
    }

    const std::uint64_t max_cycles = static_cast<std::uint64_t>(args.integer("max-cycles", 0));
    const auto cycle_allowed = [&] { return max_cycles == 0 || loop.cycles() < max_cycles; };
    const auto emit = [](const learn::AuditRecord& record) {
      std::fputs(learn::render_audit_record(record).c_str(), stdout);
      std::fflush(stdout);
    };

    const std::string wal_dir = args.str("wal-dir");
    if (!wal_dir.empty()) {
      // -- Tail mode: follow a live serve node ------------------------------
      serve::WalTailer tailer(wal_dir);
      const auto poll_interval =
          std::chrono::milliseconds(args.integer("poll-ms", 200));
      const long idle_exit_ms = args.integer("idle-exit-ms", 0);
      const bool once = args.flag("once");
      long idle_ms = 0;
      std::vector<serve::WalRecord> records;
      while (g_stop == 0) {
        records.clear();
        if (tailer.poll(records) == 0) {
          idle_ms += static_cast<long>(poll_interval.count());
          if (idle_exit_ms > 0 && idle_ms >= idle_exit_ms) break;
          std::this_thread::sleep_for(poll_interval);
        } else {
          idle_ms = 0;
          for (const auto& record : records) loop.observe(record);
        }
        if (auto rollback = loop.watch()) emit(*rollback);
        if (cycle_allowed() && loop.collector().buffered_windows() >= config.min_train_windows) {
          const learn::AuditRecord record = loop.run_cycle();
          emit(record);
          if (once && record.reason != "insufficient_windows") break;
        }
      }
      // Drain: close what remains so the final state reflects the stream,
      // then train on it — a stream that went idle (or a short replayed
      // WAL) may hold a full buffer of windows the in-loop check never
      // saw closed, exactly like a replay segment ending.
      loop.flush();
      if (auto rollback = loop.watch()) emit(*rollback);
      if (cycle_allowed() && loop.collector().buffered_windows() >= config.min_train_windows) {
        emit(loop.run_cycle());
      }
      return 0;
    }

    // -- Replay mode: positional NDJSON segments ----------------------------
    std::vector<std::string> segments = args.positional();
    if (segments.empty()) {
      usage(args.program().c_str());
      return 2;
    }
    for (const auto& segment : segments) {
      std::ifstream file;
      std::istream* in = &std::cin;
      if (segment != "-") {
        file.open(segment);
        if (!file) {
          log_error() << "cannot open " << segment;
          return 1;
        }
        in = &file;
      }
      std::string line;
      std::string error;
      while (std::getline(*in, line)) {
        if (line.empty()) continue;
        serve::Event event;
        if (!serve::parse_event(line, event, error)) {
          log_warn() << "skipping bad event line: " << error;
          continue;
        }
        loop.observe(event);
      }
      loop.flush();
      if (auto rollback = loop.watch()) emit(*rollback);
      if (cycle_allowed()) emit(loop.run_cycle());
    }
    return 0;
  } catch (const std::exception& e) {
    log_error() << "learnd: " << e.what();
    return 1;
  }
}

#include "router/hash_ring.hpp"

namespace misuse::router {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

namespace {

/// Rebuilds the position map from the node set. Iterating names in
/// sorted order and keeping the first inserter on a position collision
/// makes ownership a pure function of the node *set* — the order
/// add_node/remove_node were called in can never matter.
std::map<std::uint64_t, std::string> build(const std::set<std::string>& names,
                                           std::size_t vnodes) {
  std::map<std::uint64_t, std::string> ring;
  for (const std::string& name : names) {
    for (std::size_t i = 0; i < vnodes; ++i) {
      ring.emplace(fnv1a64(name + "#" + std::to_string(i)), name);
    }
  }
  return ring;
}

}  // namespace

void HashRing::add_node(const std::string& name) {
  if (!names_.insert(name).second) return;
  ring_ = build(names_, vnodes_);
}

void HashRing::remove_node(const std::string& name) {
  if (names_.erase(name) == 0) return;
  ring_ = build(names_, vnodes_);
}

const std::string* HashRing::owner(std::uint64_t key_hash) const {
  if (ring_.empty()) return nullptr;
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return &it->second;
}

}  // namespace misuse::router

// misusedet_router: the horizontal-scaling tier of the serving stack.
// Clients speak the same NDJSON event protocol as misusedet_serve; the
// router consistent-hashes each session (FNV-1a of user_id+session_id —
// the same stable hash the in-node shard layer uses) onto one of N
// serve nodes, forwards the event over a pooled upstream connection,
// and routes the node's verdict lines back to the originating client.
//
// Guarantees (DESIGN.md "Cluster serving"):
//   * session affinity — every event of a session goes to one node, so
//     each per-session score stream is bit-identical to a single-node
//     deployment;
//   * in-order replies — one upstream connection per node, verdicts
//     return in submission order, attributed to sessions via an
//     in-flight FIFO (session reports self-identify and pass through);
//   * failure handoff — a node that dies (reply stream breaks, forward
//     fails, or /healthz goes unhealthy for `health_failures_down`
//     consecutive probes) is removed from the ring and each of its live
//     sessions is replayed, from the router's per-session journal, to
//     the session's new owner. Scoring is deterministic, so the replay
//     reproduces the node-local state byte-exactly (the WAL-recovery
//     argument of PR 4, applied across nodes); verdicts the client
//     already saw are suppressed during replay, verdicts the dead node
//     never delivered are emitted by the new owner — no event is lost
//     and no verdict is duplicated;
//   * per-tenant quotas — token-bucket admission per user_id at the
//     router (router/quota.hpp), rejected events answered with an
//     "error" record, layered on the nodes' own backpressure modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "router/hash_ring.hpp"
#include "router/quota.hpp"
#include "serve/epoll_loop.hpp"
#include "util/metrics.hpp"
#include "util/socket.hpp"

namespace misuse::router {

struct NodeEndpoint {
  std::string host;
  std::uint16_t port = 0;        // NDJSON scoring port (misusedet_serve --listen)
  std::uint16_t admin_port = 0;  // /healthz probe target; 0 = no active probing
  std::string name() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port" or "host:port:admin_port". Returns nullopt on
/// malformed input.
std::optional<NodeEndpoint> parse_node_endpoint(const std::string& spec);

struct RouterConfig {
  std::uint16_t listen_port = 0;  // 0 = ephemeral (read back via port())
  std::string listen_host = "0.0.0.0";
  std::vector<NodeEndpoint> nodes;
  std::size_t vnodes = 64;
  QuotaConfig quota;
  double health_interval_seconds = 1.0;
  /// Consecutive failed /healthz probes before a node is declared down.
  std::size_t health_failures_down = 3;
  /// SO_SNDTIMEO on upstream connections: a forward blocked this long
  /// fails and downs the node instead of wedging the router.
  double upstream_write_timeout_seconds = 5.0;
  /// Router-side journal TTL. Idle-evicted sessions report on the
  /// owning node's *stdout* (the operator plane), not the upstream
  /// connection, so the router cannot see them finish — it prunes its
  /// own journal map after this much idle wall time instead. Must be
  /// comfortably longer than the nodes' --idle-ttl so a handoff never
  /// loses a session the node still holds.
  double session_ttl_seconds = 900.0;
  /// The nodes' --idle-ttl, when the operator knows it (0 = unknown).
  /// The constructor rejects session_ttl_seconds <= node_ttl_seconds
  /// (the router would prune journals for sessions the node still
  /// holds, making handoff replay impossible) and warns when the margin
  /// is under 2x.
  double node_ttl_seconds = 0.0;
  double tick_seconds = 0.2;
};

/// router.* instrument bundle (util/metrics registry).
struct RouterMetrics {
  Counter& events;             // router.events — events forwarded upstream
  Counter& replies;            // router.replies — verdict lines routed to clients
  Counter& parse_errors;       // router.parse_errors — rejected client lines
  Counter& quota_rejected;     // router.quota_rejected — token-bucket rejections
  Counter& nodes_lost;         // router.nodes_lost — nodes declared down
  Counter& handoffs;           // router.handoffs — ring-change handoff runs
  Counter& sessions_migrated;  // router.sessions_migrated — sessions replayed over
  Counter& replay_events;      // router.replay_events — journal lines resent
  Counter& replay_suppressed;  // router.replay_suppressed — duplicate verdicts dropped
  Counter& sessions_finished;  // router.sessions_finished — session reports routed
  Gauge& nodes_up;             // router.nodes_up
  Gauge& sessions_active;      // router.sessions_active — journaled live sessions
};
RouterMetrics& router_metrics();

class Router {
 public:
  /// Binds the client listener and connects every node; throws
  /// std::runtime_error when the listener cannot bind or *no* node is
  /// reachable (unreachable nodes are declared down immediately and
  /// their keys fall to the survivors).
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::uint16_t port() const { return loop_->port(); }

  /// Serves until request_stop(); call from one thread.
  void run();
  /// Thread-safe shutdown trigger.
  void request_stop();

  /// Nodes currently in the ring (health view; thread-safe).
  std::size_t live_nodes() const;
  /// Sessions with a journal entry (live, unfinished sessions).
  std::size_t active_sessions() const;

 private:
  struct Inflight {
    std::string session_key;
    bool replayed = false;  // suppress the verdict — the client saw it already
  };

  struct Upstream {
    NodeEndpoint endpoint;
    std::optional<TcpStream> stream;  // write side; send_upstream only
    /// Read-side view of the same fd. The reader thread's blocking
    /// reads run without state_mutex_ while send_upstream writes under
    /// it; sharing one std::iostream would race on the stream-state
    /// flags (sentry/good() vs. flush), so each direction gets its own
    /// stream object over the shared descriptor.
    std::unique_ptr<FdStreamBuf> read_buf;
    std::unique_ptr<std::istream> read_stream;
    std::thread reader;
    bool up = false;
    std::size_t health_fails = 0;
    /// FIFO of events sent but not yet answered; one upstream
    /// connection + sequential per-connection scoring on the node means
    /// verdicts return in exactly this order.
    std::deque<Inflight> inflight;
  };

  struct SessionState {
    std::string owner;          // node name
    std::uint64_t client = 0;   // EpollLoop connection id (may be gone)
    std::vector<std::string> journal;  // every forwarded event line, in order
    std::size_t confirmed = 0;  // verdicts already delivered to the client
    double last_active_seconds = 0.0;  // wall clock; journal TTL pruning
  };

  void on_client_line(std::uint64_t conn, std::string_view line, std::string& replies);
  void reader_loop(const std::string& node_name);
  void health_loop();
  /// Declares `name` down and hands its sessions off. Caller must NOT
  /// hold state_mutex_. Safe to call repeatedly / concurrently.
  void node_down(const std::string& name, const std::string& why);
  /// state_mutex_ held: forwards one framed line to `node`, returns
  /// false (and leaves the node to be downed by the caller) on failure.
  bool send_upstream(Upstream& node, const std::string& framed);
  bool probe_health(const NodeEndpoint& endpoint);

  RouterConfig config_;
  std::unique_ptr<serve::EpollLoop> loop_;
  std::atomic<bool> stop_{false};

  /// One mutex over ring + sessions + upstream inflight/up state: the
  /// router's control plane is correctness-critical and low-rate
  /// relative to node-side scoring, so simplicity wins over sharding.
  mutable std::mutex state_mutex_;
  HashRing ring_;
  std::unordered_map<std::string, std::unique_ptr<Upstream>> upstreams_;
  std::unordered_map<std::string, SessionState> sessions_;
  TenantQuotas quotas_;

  std::thread health_thread_;
};

}  // namespace misuse::router

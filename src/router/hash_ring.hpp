// Consistent-hash ring for the scoring cluster (misusedet_router): maps
// session keys onto serve nodes so that adding or removing one node
// remaps only the sessions that node owns/owned — every other session
// stays put, which is what makes failure handoff (DESIGN.md "Cluster
// serving") a bounded replay instead of a cluster-wide reshuffle.
//
// Layout: each node contributes `vnodes` virtual points at
// fnv1a64("<name>#<i>"); a key (hashed with the same stable FNV-1a the
// shard layer uses, serve::session_shard_hash) is owned by the first
// point clockwise from the key's hash. Virtual points smooth the load:
// with v points per node the expected per-node share deviates by
// O(1/sqrt(v)). Everything is deterministic — no RNG, no pointer or
// platform dependence — so every router instance given the same node
// list computes the same ownership, and tests can pin exact remap sets.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace misuse::router {

/// Stable 64-bit FNV-1a (same parameters as serve::session_shard_hash).
std::uint64_t fnv1a64(std::string_view data);

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64);

  /// Inserts `name`'s virtual points. Adding a present node is a no-op.
  void add_node(const std::string& name);

  /// Removes `name`'s virtual points; its keys fall to their clockwise
  /// successors. Removing an absent node is a no-op.
  void remove_node(const std::string& name);

  bool has_node(const std::string& name) const { return names_.count(name) > 0; }
  std::size_t node_count() const { return names_.size(); }
  std::size_t vnodes_per_node() const { return vnodes_; }

  /// Node names in deterministic (lexicographic) order.
  std::vector<std::string> nodes() const { return {names_.begin(), names_.end()}; }

  /// Owner of a pre-hashed key: the first virtual point at or clockwise
  /// after `key_hash` (wrapping). nullptr when the ring is empty. The
  /// pointer stays valid until the next add/remove.
  const std::string* owner(std::uint64_t key_hash) const;

  /// Convenience: owner of an unhashed key.
  const std::string* owner_of(std::string_view key) const { return owner(fnv1a64(key)); }

 private:
  std::size_t vnodes_;
  /// position -> node name. Position collisions across nodes resolve to
  /// the first inserter; since insertion is set-ordered by replay of the
  /// same operations, ownership stays deterministic.
  std::map<std::uint64_t, std::string> ring_;
  std::set<std::string> names_;
};

}  // namespace misuse::router

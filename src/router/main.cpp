// misusedet_router: consistent-hash front door for a misusedet_serve
// cluster. Clients connect to the router and speak the same NDJSON
// event protocol as a single serve node; the router hashes each session
// onto one of the nodes (sticky, deterministic), forwards events,
// routes verdicts back, health-checks the nodes, and replays a dead
// node's sessions to the survivors from its per-session journal so the
// cluster's scored output stays byte-identical to a single node's.
// See DESIGN.md "Cluster serving".
//
//   misusedet_router --nodes=host:port[:admin_port],... [--listen=PORT]
//       [--vnodes=N] [--quota-rate=X] [--quota-burst=X]
//       [--health-interval=SECONDS] [--health-failures=N]
//       [--session-ttl=SECONDS] [--node-ttl=SECONDS] [--metrics-out=PATH]
#include <csignal>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/observability.hpp"
#include "router/router.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace misuse::router {
namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void usage(std::ostream& out) {
  out << "usage: misusedet_router --nodes=HOST:PORT[:ADMIN],... [options]\n"
      << "  --nodes=LIST            comma-separated serve nodes; the optional third\n"
      << "                          field is the node's admin port for /healthz probing\n"
      << "  --listen=PORT           client listen port (default 0 = ephemeral)\n"
      << "  --host=ADDR             client listen address (default 0.0.0.0)\n"
      << "  --vnodes=N              virtual points per node on the hash ring (default 64)\n"
      << "  --quota-rate=X          per-tenant events/second admitted (default 0 = off)\n"
      << "  --quota-burst=X         per-tenant token-bucket capacity (default max(rate,1))\n"
      << "  --health-interval=SEC   /healthz probe cadence (default 1.0)\n"
      << "  --health-failures=N     consecutive probe failures before a node is declared\n"
      << "                          down and its sessions handed off (default 3)\n"
      << "  --session-ttl=SEC       drop a session's replay journal after this much idle\n"
      << "                          time; keep it longer than the nodes' --idle-ttl\n"
      << "                          (default 900)\n"
      << "  --node-ttl=SEC          the nodes' --idle-ttl, for startup validation: the\n"
      << "                          router refuses --session-ttl <= --node-ttl and warns\n"
      << "                          under a 2x margin (default 0 = skip the check)\n"
      << "  --metrics-out=PATH      write the metrics/trace snapshot on exit\n";
}

int router_main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.flag("help")) {
    usage(std::cout);
    return 0;
  }

  RouterConfig config;
  const std::string nodes = args.str("nodes");
  if (nodes.empty()) {
    usage(std::cerr);
    return 2;
  }
  std::stringstream list(nodes);
  std::string spec;
  while (std::getline(list, spec, ',')) {
    if (spec.empty()) continue;
    const auto endpoint = parse_node_endpoint(spec);
    if (!endpoint) {
      std::cerr << "bad node spec '" << spec << "' (want host:port[:admin_port])\n";
      return 2;
    }
    config.nodes.push_back(*endpoint);
  }
  config.listen_port = static_cast<std::uint16_t>(args.integer("listen", 0));
  config.listen_host = args.str("host", "0.0.0.0");
  config.vnodes = static_cast<std::size_t>(args.integer("vnodes", 64));
  config.quota.rate = args.real("quota-rate", 0.0);
  config.quota.burst = args.real("quota-burst", 0.0);
  config.health_interval_seconds = args.real("health-interval", 1.0);
  config.health_failures_down = static_cast<std::size_t>(args.integer("health-failures", 3));
  config.session_ttl_seconds = args.real("session-ttl", 900.0);
  config.node_ttl_seconds = args.real("node-ttl", 0.0);

  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A dying client or node must not kill the router mid-write.
  ::signal(SIGPIPE, SIG_IGN);

  core::MetricsExport metrics_export(args.str("metrics-out"));

  try {
    Router router(std::move(config));
    // Same stderr handshake as misusedet_serve: drivers scrape the port.
    log_info() << "listening on port " << router.port() << " (router, "
               << router.live_nodes() << " nodes)";
    std::thread stopper([&router] {
      while (!g_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      router.request_stop();
    });
    router.run();
    g_stop.store(true, std::memory_order_relaxed);
    stopper.join();
  } catch (const std::exception& e) {
    std::cerr << "misusedet_router: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace misuse::router

int main(int argc, char** argv) { return misuse::router::router_main(argc, argv); }

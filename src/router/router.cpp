#include "router/router.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "serve/event.hpp"
#include "util/line_io.hpp"
#include "util/logging.hpp"

namespace misuse::router {

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RouterMetrics& router_metrics() {
  static RouterMetrics instruments{
      metrics().counter("router.events"),
      metrics().counter("router.replies"),
      metrics().counter("router.parse_errors"),
      metrics().counter("router.quota_rejected"),
      metrics().counter("router.nodes_lost"),
      metrics().counter("router.handoffs"),
      metrics().counter("router.sessions_migrated"),
      metrics().counter("router.replay_events"),
      metrics().counter("router.replay_suppressed"),
      metrics().counter("router.sessions_finished"),
      metrics().gauge("router.nodes_up"),
      metrics().gauge("router.sessions_active"),
  };
  return instruments;
}

std::optional<NodeEndpoint> parse_node_endpoint(const std::string& spec) {
  NodeEndpoint out;
  const std::size_t first = spec.find(':');
  if (first == std::string::npos || first == 0) return std::nullopt;
  out.host = spec.substr(0, first);
  const std::size_t second = spec.find(':', first + 1);
  try {
    const std::string port_str = second == std::string::npos
                                     ? spec.substr(first + 1)
                                     : spec.substr(first + 1, second - first - 1);
    const unsigned long port = std::stoul(port_str);
    if (port == 0 || port > 65535) return std::nullopt;
    out.port = static_cast<std::uint16_t>(port);
    if (second != std::string::npos) {
      const unsigned long admin = std::stoul(spec.substr(second + 1));
      if (admin == 0 || admin > 65535) return std::nullopt;
      out.admin_port = static_cast<std::uint16_t>(admin);
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return out;
}

Router::Router(RouterConfig config)
    : config_(std::move(config)), ring_(config_.vnodes), quotas_(config_.quota) {
  if (config_.nodes.empty()) throw std::runtime_error("router: no upstream nodes given");
  if (config_.node_ttl_seconds > 0.0) {
    // The handoff guarantee needs the router's journal to outlive the
    // node-side session: a journal pruned while the node still holds
    // the session cannot be replayed, and the session's next event
    // re-enters as a fresh session (possibly on another node).
    if (config_.session_ttl_seconds <= config_.node_ttl_seconds) {
      throw std::runtime_error(
          "router: --session-ttl (" + std::to_string(config_.session_ttl_seconds) +
          "s) must exceed the nodes' --idle-ttl (" + std::to_string(config_.node_ttl_seconds) +
          "s); the replay journal would be pruned while nodes still hold the session");
    }
    if (config_.session_ttl_seconds < 2.0 * config_.node_ttl_seconds) {
      log_warn() << "router: --session-ttl (" << config_.session_ttl_seconds
                 << "s) is under twice the nodes' --idle-ttl (" << config_.node_ttl_seconds
                 << "s); keep a comfortable margin or a handoff near the TTL boundary "
                    "may find its journal already pruned";
    }
  }

  for (const NodeEndpoint& endpoint : config_.nodes) {
    auto up = std::make_unique<Upstream>();
    up->endpoint = endpoint;
    const std::string name = endpoint.name();
    if (upstreams_.count(name) > 0) throw std::runtime_error("router: duplicate node " + name);
    try {
      up->stream.emplace(tcp_connect(endpoint.host, endpoint.port));
      up->stream->set_write_timeout(config_.upstream_write_timeout_seconds);
      up->read_buf = std::make_unique<FdStreamBuf>(up->stream->fd());
      up->read_stream = std::make_unique<std::istream>(up->read_buf.get());
      up->up = true;
      ring_.add_node(name);
    } catch (const std::runtime_error& e) {
      log_warn() << "router: node " << name << " unreachable at startup: " << e.what();
    }
    upstreams_.emplace(name, std::move(up));
  }
  if (ring_.node_count() == 0) throw std::runtime_error("router: no upstream node reachable");
  router_metrics().nodes_up.set(static_cast<std::int64_t>(ring_.node_count()));

  serve::EpollConfig loop_config;
  loop_config.port = config_.listen_port;
  loop_config.host = config_.listen_host;
  loop_config.tick_seconds = config_.tick_seconds;
  serve::EpollHandlers handlers;
  handlers.on_line = [this](std::uint64_t conn, std::string_view line, std::string& replies) {
    on_client_line(conn, line, replies);
  };
  handlers.on_close = [this](std::uint64_t conn) {
    // The client is gone; detach its sessions so replies stop, but keep
    // the journals — the node-side state still finishes to the node's
    // stdout report stream, and a node failure after the client left
    // must still hand that state off for the final report to be exact.
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (auto& [key, session] : sessions_) {
      if (session.client == conn) session.client = 0;
    }
  };
  handlers.on_tick = [this] {
    std::lock_guard<std::mutex> lock(state_mutex_);
    const double now = wall_seconds();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (now - it->second.last_active_seconds > config_.session_ttl_seconds) {
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    router_metrics().sessions_active.set(static_cast<std::int64_t>(sessions_.size()));
  };
  loop_ = std::make_unique<serve::EpollLoop>(loop_config, std::move(handlers));

  // Reader threads start only after `loop_` exists: they post() replies
  // through it.
  for (auto& [name, up] : upstreams_) {
    if (!up->up) continue;
    up->reader = std::thread([this, node = name] { reader_loop(node); });
  }
}

Router::~Router() {
  request_stop();
  if (health_thread_.joinable()) health_thread_.join();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (auto& [name, up] : upstreams_) {
      if (up->stream) {
        up->stream->shutdown_read();  // unblocks the reader's blocking read
        up->stream->shutdown_write();
      }
    }
  }
  for (auto& [name, up] : upstreams_) {
    if (up->reader.joinable()) up->reader.join();
  }
}

void Router::run() {
  health_thread_ = std::thread([this] { health_loop(); });
  loop_->run();
}

void Router::request_stop() {
  stop_.store(true, std::memory_order_release);
  loop_->request_stop();
}

std::size_t Router::live_nodes() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return ring_.node_count();
}

std::size_t Router::active_sessions() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return sessions_.size();
}

bool Router::send_upstream(Upstream& node, const std::string& framed) {
  if (!node.up || !node.stream) return false;
  std::iostream& io = node.stream->io();
  io.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  io.flush();
  return io.good();
}

void Router::on_client_line(std::uint64_t conn, std::string_view line, std::string& replies) {
  RouterMetrics& rm = router_metrics();
  serve::Event event;
  std::string error;
  if (!serve::parse_event(line, event, error)) {
    rm.parse_errors.inc();
    replies += serve::render_error_record(error, line);
    replies += '\n';
    return;
  }

  std::string down_node;  // node to declare dead once the lock is dropped
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // Quota refill clock: producer event time when stamped (so replayed
    // traces throttle deterministically), wall clock otherwise. The
    // bucket keeps a per-tenant baseline per domain — epoch timestamps
    // and seconds-since-boot are never compared to each other.
    const bool stamped = event.has_timestamp;
    const double now = stamped ? event.timestamp : wall_seconds();
    const QuotaClock clock = stamped ? QuotaClock::kEvent : QuotaClock::kWall;
    if (!quotas_.admit(event.user_id, now, clock)) {
      rm.quota_rejected.inc();
      replies += serve::render_error_record("tenant quota exceeded: " + event.user_id, line);
      replies += '\n';
      return;
    }

    const std::string key = serve::session_key(event);
    auto [it, inserted] = sessions_.try_emplace(key);
    SessionState& session = it->second;
    if (inserted) {
      const std::string* owner = ring_.owner_of(key);
      if (owner == nullptr) {
        sessions_.erase(it);
        replies += serve::render_error_record("no upstream nodes available", line);
        replies += '\n';
        return;
      }
      session.owner = *owner;
    }
    session.client = conn;
    session.last_active_seconds = wall_seconds();

    std::string framed(line);
    framed += '\n';
    session.journal.push_back(framed);

    Upstream& node = *upstreams_.at(session.owner);
    node.inflight.push_back(Inflight{key, false});
    if (!send_upstream(node, framed)) {
      // The journal already holds this event; handoff replays it to the
      // new owner, whose reply reaches the client (it is unconfirmed).
      down_node = session.owner;
    }
    rm.events.inc();
  }
  if (!down_node.empty()) node_down(down_node, "forward failed");
}

void Router::reader_loop(const std::string& node_name) {
  RouterMetrics& rm = router_metrics();
  std::istream* in = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    Upstream& node = *upstreams_.at(node_name);
    if (!node.read_stream) return;
    in = node.read_stream.get();
  }
  // The blocking read below runs without the lock; node_down() wakes it
  // with shutdown_read() rather than destroying the stream (the Upstream
  // object and its TcpStream live until ~Router). It reads through the
  // node's dedicated read_stream, never stream->io(): send_upstream
  // writes that iostream under state_mutex_, and two threads sharing
  // one stream's state flags would be a data race even though the
  // streambuf get/put areas are distinct.
  LineReader reader(*in);
  std::string line;
  while (reader.next(line)) {
    std::vector<JsonField> fields;
    std::string parse_error;
    std::string type;
    if (parse_flat_json(line, fields, parse_error)) {
      type = get_string(fields, "type").value_or("");
    }

    std::uint64_t deliver_to = 0;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      Upstream& node = *upstreams_.at(node_name);
      if (type == "session_report") {
        // Reports self-identify (capacity/swap evictions ride the
        // upstream connection out of order with step replies) — route by
        // content, never the FIFO.
        const std::string user = get_string(fields, "user_id").value_or("");
        const std::string sess = get_string(fields, "session_id").value_or("");
        const auto it = sessions_.find(serve::session_key(user, sess));
        if (it != sessions_.end()) {
          deliver_to = it->second.client;
          sessions_.erase(it);
        }
        rm.sessions_finished.inc();
      } else if (!node.inflight.empty()) {
        // step / error verdicts answer forwarded events in FIFO order.
        const Inflight entry = node.inflight.front();
        node.inflight.pop_front();
        const auto it = sessions_.find(entry.session_key);
        if (it != sessions_.end() && !entry.replayed) {
          // `confirmed` is the client-visible verdict prefix. A replayed
          // (suppressed) reply answers a verdict already inside that
          // prefix — counting it again would inflate `confirmed` past
          // what the client has seen, and a second failure mid-replay
          // would then suppress verdicts that were never delivered.
          it->second.confirmed += 1;
          deliver_to = it->second.client;
        }
        if (entry.replayed) rm.replay_suppressed.inc();
      } else {
        log_warn() << "router: unattributed reply from " << node_name << ": " << line;
      }
    }
    if (deliver_to != 0) {
      loop_->post(deliver_to, line + "\n");
      rm.replies.inc();
    }
  }
  if (!stop_.load(std::memory_order_acquire)) node_down(node_name, "reply stream closed");
}

bool Router::probe_health(const NodeEndpoint& endpoint) {
  try {
    TcpStream probe = tcp_connect(endpoint.host, endpoint.admin_port);
    probe.set_read_timeout(2.0);
    probe.set_write_timeout(2.0);
    probe.io() << "GET /healthz HTTP/1.1\r\nHost: " << endpoint.host
               << "\r\nConnection: close\r\n\r\n";
    probe.io().flush();
    std::string status_line;
    if (!std::getline(probe.io(), status_line)) return false;
    // "HTTP/1.1 200 OK" — 200 covers ok and degraded; 503 is unhealthy.
    return status_line.find(" 200") != std::string::npos;
  } catch (const std::runtime_error&) {
    return false;
  }
}

void Router::health_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<std::pair<std::string, NodeEndpoint>> targets;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      for (const auto& [name, up] : upstreams_) {
        if (up->up && up->endpoint.admin_port != 0) targets.emplace_back(name, up->endpoint);
      }
    }
    for (const auto& [name, endpoint] : targets) {
      if (stop_.load(std::memory_order_acquire)) return;
      const bool healthy = probe_health(endpoint);
      bool declare_down = false;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = upstreams_.find(name);
        if (it == upstreams_.end() || !it->second->up) continue;
        Upstream& node = *it->second;
        node.health_fails = healthy ? 0 : node.health_fails + 1;
        declare_down = node.health_fails >= config_.health_failures_down;
      }
      if (declare_down) node_down(name, "healthz failing");
    }
    // Sleep in small slices so stop latency stays well under a probe
    // interval even when the interval is long.
    const auto interval = std::chrono::duration<double>(config_.health_interval_seconds);
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void Router::node_down(const std::string& name, const std::string& why) {
  RouterMetrics& rm = router_metrics();
  // Nodes that fail *during* a handoff replay queue up behind the first:
  // the loop drains them one at a time, so a cascading failure (replay
  // target dies mid-replay) terminates with either every session on a
  // survivor or an error record to the client when the ring empties.
  std::vector<std::string> downed{name};
  std::vector<std::string> reasons{why};
  while (!downed.empty()) {
    const std::string target = std::move(downed.back());
    const std::string reason = std::move(reasons.back());
    downed.pop_back();
    reasons.pop_back();

    std::vector<std::pair<std::uint64_t, std::string>> client_errors;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      const auto up_it = upstreams_.find(target);
      if (up_it == upstreams_.end() || !up_it->second->up) continue;  // already down
      Upstream& dead = *up_it->second;
      dead.up = false;
      dead.inflight.clear();
      if (dead.stream) {
        dead.stream->shutdown_read();  // unblock the reader thread
        dead.stream->shutdown_write();
      }
      ring_.remove_node(target);
      rm.nodes_lost.inc();
      rm.handoffs.inc();
      rm.nodes_up.set(static_cast<std::int64_t>(ring_.node_count()));
      log_warn() << "router: node " << target << " down (" << reason << "), "
                 << ring_.node_count() << " node(s) remain";

      // Replay every session the dead node owned to its new owner.
      // Scoring is deterministic, so the replayed journal reconstructs
      // the node-local state byte-exactly; verdicts the client already
      // saw (`confirmed`) are marked for suppression.
      std::string failed_target;
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        SessionState& session = it->second;
        if (session.owner != target) {
          ++it;
          continue;
        }
        const std::string* new_owner = ring_.owner_of(it->first);
        if (new_owner == nullptr) {
          if (session.client != 0) {
            client_errors.emplace_back(
                session.client,
                serve::render_error_record("all upstream nodes lost", it->first) + "\n");
          }
          it = sessions_.erase(it);
          continue;
        }
        session.owner = *new_owner;
        Upstream& successor = *upstreams_.at(*new_owner);
        rm.sessions_migrated.inc();
        bool sent_all = true;
        for (std::size_t i = 0; i < session.journal.size(); ++i) {
          successor.inflight.push_back(Inflight{it->first, i < session.confirmed});
          rm.replay_events.inc();
          if (!send_upstream(successor, session.journal[i])) {
            sent_all = false;
            break;
          }
        }
        if (!sent_all && failed_target.empty()) failed_target = *new_owner;
        // `confirmed` stays as-is: it counts client deliveries, and a
        // re-handoff after a cascading failure must suppress the same
        // prefix again.
        ++it;
      }
      if (!failed_target.empty()) {
        downed.push_back(failed_target);
        reasons.emplace_back("forward failed during handoff");
      }
    }
    for (auto& [conn, record] : client_errors) loop_->post(conn, std::move(record));
  }
}

}  // namespace misuse::router

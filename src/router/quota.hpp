// Per-tenant token-bucket admission for the router: each tenant
// (user_id) owns a bucket of `burst` tokens refilled at `rate`
// tokens/second; an event spends one token, and an empty bucket rejects
// the event at the router — a misbehaving tenant is throttled *before*
// its traffic can saturate a node's shard queues, layering on top of
// the per-node backpressure modes (block / drop_oldest) rather than
// replacing them.
//
// Refill runs on the caller's clock. The router feeds event time when
// the producer stamps timestamps (so replayed traces throttle
// deterministically — the contract the quota tests pin) and falls back
// to wall clock for unstamped traffic. Time moving backwards refills
// nothing; it never drains a bucket.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>

namespace misuse::router {

struct QuotaConfig {
  double rate = 0.0;   // tokens (events) per second; <= 0 disables quotas
  double burst = 0.0;  // bucket capacity; <= 0 defaults to max(rate, 1)
};

class TenantQuotas {
 public:
  explicit TenantQuotas(const QuotaConfig& config) : config_(config) {
    if (config_.burst <= 0.0) config_.burst = std::max(config_.rate, 1.0);
  }

  bool enabled() const { return config_.rate > 0.0; }

  /// True when `tenant` may send an event at `now_seconds` (and spends
  /// the token); false when the bucket is empty. Unlimited when quotas
  /// are disabled. New tenants start with a full bucket.
  bool admit(const std::string& tenant, double now_seconds) {
    if (!enabled()) return true;
    auto [it, inserted] = buckets_.try_emplace(tenant, Bucket{config_.burst, now_seconds});
    Bucket& bucket = it->second;
    if (!inserted) {
      const double elapsed = std::max(0.0, now_seconds - bucket.last_seconds);
      bucket.tokens = std::min(config_.burst, bucket.tokens + elapsed * config_.rate);
      bucket.last_seconds = std::max(bucket.last_seconds, now_seconds);
    }
    if (bucket.tokens < 1.0) return false;
    bucket.tokens -= 1.0;
    return true;
  }

  std::size_t tenants() const { return buckets_.size(); }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_seconds = 0.0;
  };
  QuotaConfig config_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace misuse::router

// Per-tenant token-bucket admission for the router: each tenant
// (user_id) owns a bucket of `burst` tokens refilled at `rate`
// tokens/second; an event spends one token, and an empty bucket rejects
// the event at the router — a misbehaving tenant is throttled *before*
// its traffic can saturate a node's shard queues, layering on top of
// the per-node backpressure modes (block / drop_oldest) rather than
// replacing them.
//
// Refill runs on the caller's clock, and the caller names which clock
// it is. The router feeds event time when the producer stamps
// timestamps (so replayed traces throttle deterministically — the
// contract the quota tests pin) and falls back to wall clock for
// unstamped traffic. The two domains are incomparable (producer epoch
// time vs. seconds-since-boot), so each bucket keeps an independent
// baseline per domain per tenant: a tenant whose stamped events carry
// large epoch timestamps still refills normally on later unstamped
// (wall-clock) traffic, and one tenant's future timestamps never
// inflate another tenant's refill. Within a domain, time moving
// backwards refills nothing; it never drains a bucket.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>

namespace misuse::router {

struct QuotaConfig {
  double rate = 0.0;   // tokens (events) per second; <= 0 disables quotas
  double burst = 0.0;  // bucket capacity; <= 0 defaults to max(rate, 1)
};

/// Which clock `now_seconds` was read from. Elapsed time is only ever
/// measured between two readings of the same clock.
enum class QuotaClock { kWall, kEvent };

class TenantQuotas {
 public:
  explicit TenantQuotas(const QuotaConfig& config) : config_(config) {
    if (config_.burst <= 0.0) config_.burst = std::max(config_.rate, 1.0);
  }

  bool enabled() const { return config_.rate > 0.0; }

  /// True when `tenant` may send an event at `now_seconds` on `clock`
  /// (and spends the token); false when the bucket is empty. Unlimited
  /// when quotas are disabled. New tenants start with a full bucket.
  bool admit(const std::string& tenant, double now_seconds,
             QuotaClock clock = QuotaClock::kWall) {
    if (!enabled()) return true;
    auto [it, inserted] = buckets_.try_emplace(tenant, Bucket{config_.burst});
    Bucket& bucket = it->second;
    const bool is_wall = clock == QuotaClock::kWall;
    double& last = is_wall ? bucket.last_wall : bucket.last_event;
    bool& seen = is_wall ? bucket.seen_wall : bucket.seen_event;
    if (seen) {
      const double elapsed = std::max(0.0, now_seconds - last);
      bucket.tokens = std::min(config_.burst, bucket.tokens + elapsed * config_.rate);
      last = std::max(last, now_seconds);
    } else {
      // First reading in this domain: a baseline, never a refill (the
      // other domain's baseline says nothing about elapsed time here).
      last = now_seconds;
      seen = true;
    }
    if (bucket.tokens < 1.0) return false;
    bucket.tokens -= 1.0;
    return true;
  }

  std::size_t tenants() const { return buckets_.size(); }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_wall = 0.0;   // valid only when seen_wall
    double last_event = 0.0;  // valid only when seen_event
    bool seen_wall = false;
    bool seen_event = false;
  };
  QuotaConfig config_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace misuse::router

#include "synth/archetype.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace misuse::synth {

BehaviorArchetype::BehaviorArchetype(ArchetypeConfig config) : config_(std::move(config)) {
  assert(!config_.pool.empty());
  assert(config_.workflow_size > 0 && config_.workflow_size <= config_.pool.size());
  const double total = config_.advance_prob + config_.repeat_prob + config_.restart_prob +
                       config_.common_prob;
  assert(std::abs(total - 1.0) < 1e-6);
  (void)total;
}

std::size_t BehaviorArchetype::sample_length(Rng& rng) const {
  const double raw = rng.lognormal(config_.log_len_mu, config_.log_len_sigma);
  const auto len = static_cast<std::size_t>(std::llround(raw));
  return std::max<std::size_t>(len, 2);
}

std::vector<int> BehaviorArchetype::generate(Rng& rng, std::size_t length) const {
  assert(length >= 1);
  const std::size_t w = config_.workflow_size;
  const std::size_t commons = config_.pool.size() - w;
  std::vector<int> out;
  out.reserve(length);

  // Sessions start near the beginning of the workflow (search/lookup
  // phase), occasionally mid-way (resumed work).
  std::size_t pos = rng.bernoulli(0.8) ? rng.uniform_index(std::max<std::size_t>(w / 4, 1))
                                       : rng.uniform_index(w);
  bool in_common_detour = false;
  std::size_t saved_pos = pos;

  for (std::size_t i = 0; i < length; ++i) {
    if (in_common_detour) {
      // Common detours last one action, then return to the workflow.
      out.push_back(config_.pool[w + rng.uniform_index(std::max<std::size_t>(commons, 1))]);
      pos = saved_pos;
      in_common_detour = false;
      continue;
    }
    out.push_back(config_.pool[pos]);
    const double u = rng.uniform();
    if (u < config_.advance_prob) {
      pos = (pos + 1) % w;  // workflow progresses; wraps into a fresh pass
    } else if (u < config_.advance_prob + config_.repeat_prob) {
      // repeat current action (e.g. paging through results)
    } else if (u < config_.advance_prob + config_.repeat_prob + config_.restart_prob) {
      pos = rng.uniform_index(std::max<std::size_t>(w / 4, 1));  // restart the task
    } else if (commons > 0) {
      saved_pos = pos;
      in_common_detour = true;
    }
  }
  return out;
}

std::vector<int> BehaviorArchetype::generate(Rng& rng) const {
  return generate(rng, sample_length(rng));
}

}  // namespace misuse::synth

// The portal simulator: generates a corpus shaped like the paper's
// dataset (§IV-A: 31 days, ~15,000 sessions, ~1,400 users, ~300 actions,
// mean session length 15, 98th percentile below 91, max above 800) from
// 13 ground-truth behavior archetypes with strongly unequal prevalence
// (the paper's smallest cluster held 177 of ~15,000 sessions).
//
// The archetype of every generated session is recorded as hidden ground
// truth: the detection pipeline never sees it, but evaluation oracles use
// it to verify that informed clustering recovers real structure.
#pragma once

#include <cstdint>
#include <vector>

#include "sessions/store.hpp"
#include "synth/actions.hpp"
#include "synth/archetype.hpp"

namespace misuse::synth {

struct PortalConfig {
  std::size_t sessions = 15000;
  std::size_t users = 1400;
  std::size_t action_count = 300;
  std::size_t days = 31;
  std::uint64_t seed = 42;
  /// Probability that a user's session follows their primary archetype
  /// rather than a random one (users are creatures of habit).
  double habit_strength = 0.8;
  /// Fraction of sessions replaced by injected misuses (0 reproduces the
  /// paper's unlabeled setting).
  double misuse_fraction = 0.0;
};

/// Kinds of injected misuse, modeled on the alarming behaviours the
/// paper's experts described (§IV-D): mass modification of user profiles,
/// structureless (scripted/random) activity, and behaviour that jumps
/// across unrelated task areas.
enum class MisuseKind : int {
  kMassProfileModification = 0,
  kRandomActivity,
  kAreaHopping,
  kCount
};

const char* misuse_kind_name(MisuseKind kind);

class Portal {
 public:
  explicit Portal(const PortalConfig& config);

  const PortalConfig& config() const { return config_; }
  const std::vector<BehaviorArchetype>& archetypes() const { return archetypes_; }
  const std::vector<double>& archetype_weights() const { return weights_; }

  /// Generates the full corpus (vocabulary + sessions, chronologically
  /// ordered by start time).
  SessionStore generate() const;

  /// Generates one misuse session of the given kind against the portal's
  /// vocabulary. Public so experiments can build dedicated attack sets.
  Session make_misuse(MisuseKind kind, Rng& rng) const;

  /// The paper's artificial abnormal test set (§IV-D): sessions with
  /// random length in [5, 25] and actions drawn uniformly from A.
  SessionStore generate_random_sessions(std::size_t count, std::uint64_t seed) const;

  /// Vocabulary used by generated sessions (same ids as generate()).
  const ActionVocab& vocab() const { return vocab_; }

 private:
  std::vector<int> area_pool(Area area) const;

  PortalConfig config_;
  ActionVocab vocab_;
  std::vector<std::vector<int>> actions_by_area_;
  std::vector<BehaviorArchetype> archetypes_;
  std::vector<double> weights_;
};

}  // namespace misuse::synth

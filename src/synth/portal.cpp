#include "synth/portal.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "synth/actions.hpp"

namespace misuse::synth {

const char* misuse_kind_name(MisuseKind kind) {
  switch (kind) {
    case MisuseKind::kMassProfileModification: return "mass-profile-modification";
    case MisuseKind::kRandomActivity: return "random-activity";
    case MisuseKind::kAreaHopping: return "area-hopping";
    case MisuseKind::kCount: break;
  }
  return "?";
}

namespace {

struct ArchetypeSpec {
  const char* name;
  Area home;
  double weight;
  double log_len_mu;
  double log_len_sigma;
  // Which half of the home area's actions to use, so two archetypes can
  // share an area with only partial overlap: 0 = first 60%, 1 = last 60%,
  // 2 = all.
  int pool_slice;
};

// Thirteen archetypes, matching the paper's 13 expert-identified clusters
// (k = 13) with strongly unequal prevalence. Length laws are calibrated
// so the mixed corpus reproduces Fig. 3's statistics.
const ArchetypeSpec kSpecs[] = {
    {"user-offboarding", Area::kUserLifecycle, 0.012, 2.20, 0.80, 1},
    {"market-agreement-config", Area::kMarket, 0.018, 2.10, 0.85, 2},
    {"cross-area-administration", Area::kGroupPerm, 0.024, 2.40, 0.90, 1},
    {"tfa-security-administration", Area::kSecurityRule, 0.033, 2.20, 0.85, 2},
    {"group-permission-management", Area::kGroupPerm, 0.042, 2.30, 0.85, 0},
    {"queue-bulk-processing", Area::kQueue, 0.055, 3.22, 1.25, 2},
    {"user-onboarding", Area::kUserLifecycle, 0.065, 2.40, 0.85, 0},
    {"office-edition", Area::kOffice, 0.075, 2.30, 0.85, 2},
    {"role-modification", Area::kRole, 0.090, 2.25, 0.85, 2},
    {"user-unlock", Area::kUserAccess, 0.105, 2.10, 0.80, 0},
    {"password-reset", Area::kUserAccess, 0.130, 2.15, 0.80, 1},
    {"audit-review", Area::kReporting, 0.151, 2.45, 0.90, 2},
    {"profile-lookup", Area::kProfile, 0.200, 2.20, 0.85, 2},
};

std::vector<int> slice_pool(const std::vector<int>& area_actions, int slice) {
  const std::size_t n = area_actions.size();
  if (n == 0) return {};
  const auto cut = [&](double frac) { return static_cast<std::size_t>(frac * static_cast<double>(n)); };
  switch (slice) {
    case 0: return {area_actions.begin(), area_actions.begin() + static_cast<std::ptrdiff_t>(std::max<std::size_t>(cut(0.6), 1))};
    case 1: return {area_actions.begin() + static_cast<std::ptrdiff_t>(cut(0.4)), area_actions.end()};
    default: return area_actions;
  }
}

}  // namespace

Portal::Portal(const PortalConfig& config) : config_(config) {
  assert(config.sessions > 0 && config.users > 0 && config.action_count >= 32);
  const auto catalogue = build_action_catalogue(config.action_count);
  actions_by_area_ = intern_catalogue(catalogue, vocab_);

  Rng rng(config.seed);
  weights_.clear();
  archetypes_.clear();
  double weight_sum = 0.0;
  for (const auto& spec : kSpecs) {
    ArchetypeConfig ac;
    ac.name = spec.name;
    std::vector<int> workflow = slice_pool(actions_by_area_[static_cast<std::size_t>(spec.home)],
                                           spec.pool_slice);
    // The cross-area archetype mixes three areas (it models senior admins
    // touching many subsystems in one session).
    if (std::string_view(spec.name) == "cross-area-administration") {
      const auto& offices = actions_by_area_[static_cast<std::size_t>(Area::kOffice)];
      const auto& roles = actions_by_area_[static_cast<std::size_t>(Area::kRole)];
      workflow.insert(workflow.end(), offices.begin(),
                      offices.begin() + static_cast<std::ptrdiff_t>(offices.size() / 3));
      workflow.insert(workflow.end(), roles.begin(),
                      roles.begin() + static_cast<std::ptrdiff_t>(roles.size() / 3));
    }
    rng.shuffle(workflow);
    // Keep workflows compact so each archetype has a recognizable,
    // learnable grammar.
    if (workflow.size() > 20) workflow.resize(20);
    ac.workflow_size = workflow.size();
    // Append a sample of common actions as detour targets.
    const auto& commons = actions_by_area_[static_cast<std::size_t>(Area::kCommon)];
    std::vector<int> common_sample = commons;
    rng.shuffle(common_sample);
    const std::size_t n_common = std::min<std::size_t>(6, common_sample.size());
    workflow.insert(workflow.end(), common_sample.begin(),
                    common_sample.begin() + static_cast<std::ptrdiff_t>(n_common));
    ac.pool = std::move(workflow);
    ac.log_len_mu = spec.log_len_mu;
    ac.log_len_sigma = spec.log_len_sigma;
    archetypes_.emplace_back(std::move(ac));
    weights_.push_back(spec.weight);
    weight_sum += spec.weight;
  }
  assert(std::abs(weight_sum - 1.0) < 1e-9);
  (void)weight_sum;
}

std::vector<int> Portal::area_pool(Area area) const {
  return actions_by_area_[static_cast<std::size_t>(area)];
}

SessionStore Portal::generate() const {
  Rng rng(config_.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  SessionStore store(vocab_);

  // Users are creatures of habit: each has a primary archetype drawn from
  // the global prevalence.
  std::vector<std::size_t> user_primary(config_.users);
  for (auto& p : user_primary) p = rng.categorical(weights_);

  std::vector<Session> sessions;
  sessions.reserve(config_.sessions);
  for (std::size_t i = 0; i < config_.sessions; ++i) {
    Session s;
    s.id = i + 1;
    s.user = static_cast<std::uint32_t>(rng.uniform_index(config_.users));
    const std::size_t day = rng.uniform_index(config_.days);
    // Working-hours diurnal pattern centered at 13:00.
    const double minute_of_day = std::clamp(rng.normal(13.0 * 60.0, 3.0 * 60.0), 0.0, 1439.0);
    s.start_minute = day * 1440 + static_cast<std::uint64_t>(minute_of_day);

    if (config_.misuse_fraction > 0.0 && rng.bernoulli(config_.misuse_fraction)) {
      const auto kind = static_cast<MisuseKind>(
          rng.uniform_index(static_cast<std::size_t>(MisuseKind::kCount)));
      Session misuse = make_misuse(kind, rng);
      misuse.id = s.id;
      misuse.user = s.user;
      misuse.start_minute = s.start_minute;
      sessions.push_back(std::move(misuse));
      continue;
    }

    const std::size_t archetype = rng.bernoulli(config_.habit_strength)
                                      ? user_primary[s.user]
                                      : rng.categorical(weights_);
    s.archetype = static_cast<int>(archetype);
    s.actions = archetypes_[archetype].generate(rng);
    sessions.push_back(std::move(s));
  }

  std::sort(sessions.begin(), sessions.end(),
            [](const Session& a, const Session& b) { return a.start_minute < b.start_minute; });
  for (auto& s : sessions) store.add(std::move(s));
  return store;
}

Session Portal::make_misuse(MisuseKind kind, Rng& rng) const {
  Session s;
  s.archetype = -1;
  s.injected_misuse = true;
  switch (kind) {
    case MisuseKind::kMassProfileModification: {
      // The paper's §IV-D example: bursts of create/delete/unlock/reset
      // over many user profiles, interleaved with searches.
      static const char* kSensitive[] = {
          "ActionDeleteUser", "ActionWarningDeleteUser", "ActionCreateUser",
          "ActionUnLockUser", "ActionResetPwdUnlock", "ActionUnLockDisplayedUser"};
      std::vector<int> pool;
      for (const char* name : kSensitive) {
        if (const auto id = vocab_.find(name)) pool.push_back(*id);
      }
      const auto search = vocab_.find("ActionSearchUsr");
      const std::size_t length = 10 + rng.uniform_index(31);
      for (std::size_t i = 0; i < length; ++i) {
        if (search && rng.bernoulli(0.25)) {
          s.actions.push_back(*search);
        } else {
          const int action = pool[rng.uniform_index(pool.size())];
          // Mass modification: the same sensitive action repeats in runs.
          const std::size_t run = 1 + rng.uniform_index(4);
          for (std::size_t r = 0; r < run && s.actions.size() < length; ++r) {
            s.actions.push_back(action);
          }
        }
      }
      break;
    }
    case MisuseKind::kRandomActivity: {
      const std::size_t length = 5 + rng.uniform_index(21);  // [5, 25]
      for (std::size_t i = 0; i < length; ++i) {
        s.actions.push_back(static_cast<int>(rng.uniform_index(vocab_.size())));
      }
      break;
    }
    case MisuseKind::kAreaHopping: {
      const std::size_t hops = 4 + rng.uniform_index(8);
      for (std::size_t h = 0; h < hops; ++h) {
        const auto& archetype = archetypes_[rng.uniform_index(archetypes_.size())];
        const std::size_t burst = 1 + rng.uniform_index(3);
        const auto& pool = archetype.pool();
        for (std::size_t b = 0; b < burst; ++b) {
          s.actions.push_back(pool[rng.uniform_index(archetype.config().workflow_size)]);
        }
      }
      break;
    }
    case MisuseKind::kCount: assert(false);
  }
  if (s.actions.size() < 2) s.actions.push_back(s.actions.empty() ? 0 : s.actions.front());
  return s;
}

SessionStore Portal::generate_random_sessions(std::size_t count, std::uint64_t seed) const {
  Rng rng(seed);
  SessionStore store(vocab_);
  for (std::size_t i = 0; i < count; ++i) {
    Session s;
    s.id = i + 1;
    s.user = static_cast<std::uint32_t>(rng.uniform_index(config_.users));
    s.archetype = -1;
    const std::size_t length = 5 + rng.uniform_index(21);  // [5, 25] as in §IV-D
    s.actions.reserve(length);
    for (std::size_t j = 0; j < length; ++j) {
      s.actions.push_back(static_cast<int>(rng.uniform_index(vocab_.size())));
    }
    store.add(std::move(s));
  }
  return store;
}

}  // namespace misuse::synth

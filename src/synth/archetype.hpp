// Behavior archetypes: the ground-truth "semantically meaningful clusters
// of interactions" that the paper's experts discovered through the visual
// interface (13 of them on the DiSIEM dataset, e.g. user-unlock flows,
// role modifications, office edition — §IV-B).
//
// Each archetype is a first-order task grammar over a pool of actions
// from its home functional area(s) plus the common navigation actions:
// workflows progress forward through the pool with occasional repeats,
// backtracking and detours through common actions. Session lengths follow
// a per-archetype log-normal law calibrated so the global corpus matches
// the paper's statistics (mean ~15, p98 < 91, max > 800 — Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace misuse::synth {

struct ArchetypeConfig {
  std::string name;
  std::vector<int> pool;     // action ids, workflow order; commons appended
  std::size_t workflow_size = 0;  // first `workflow_size` entries of pool are the ordered workflow
  double log_len_mu = 2.3;   // log-normal length parameters
  double log_len_sigma = 0.9;
  double advance_prob = 0.55;  // move to next workflow step
  double repeat_prob = 0.15;   // repeat current action
  double restart_prob = 0.12;  // jump back to a workflow start
  double common_prob = 0.18;   // detour through a common action
};

/// Generates sessions from a fixed archetype grammar.
class BehaviorArchetype {
 public:
  explicit BehaviorArchetype(ArchetypeConfig config);

  const std::string& name() const { return config_.name; }
  const ArchetypeConfig& config() const { return config_; }

  /// Draws a session length (>= 2) from the archetype's length law.
  std::size_t sample_length(Rng& rng) const;

  /// Generates a full action sequence of the given length.
  std::vector<int> generate(Rng& rng, std::size_t length) const;

  /// Convenience: sample length, then generate.
  std::vector<int> generate(Rng& rng) const;

  /// The action ids this archetype can emit (workflow + commons).
  const std::vector<int>& pool() const { return config_.pool; }

 private:
  ArchetypeConfig config_;
};

}  // namespace misuse::synth

#include "synth/actions.hpp"

#include <array>
#include <cassert>

namespace misuse::synth {

const char* area_name(Area area) {
  switch (area) {
    case Area::kCommon: return "common";
    case Area::kUserAccess: return "user-access";
    case Area::kUserLifecycle: return "user-lifecycle";
    case Area::kRole: return "role";
    case Area::kOffice: return "office";
    case Area::kSecurityRule: return "security-rule";
    case Area::kReporting: return "reporting";
    case Area::kProfile: return "profile";
    case Area::kGroupPerm: return "group-permission";
    case Area::kMarket: return "market";
    case Area::kQueue: return "queue";
    case Area::kCount: break;
  }
  return "?";
}

namespace {
struct AreaSpec {
  Area area;
  std::vector<const char*> verbs;
  std::vector<const char*> nouns;
  // Hand-written names that must exist verbatim (quoted in the paper).
  std::vector<const char*> fixed;
};

const std::vector<AreaSpec>& area_specs() {
  static const std::vector<AreaSpec> specs = {
      {Area::kCommon,
       {"Search", "Display", "List", "Filter", "Sort", "Open", "Close", "Refresh"},
       {"Usr", "User", "Home", "Menu", "Result", "Page", "Help", "Dashboard"},
       {"ActionLogin", "ActionLogout", "ActionSearchUsr", "ActionSearchUser",
        "ActionDisplayUser", "ActionSearchOffice"}},
      {Area::kUserAccess,
       {"Lock", "Unlock", "Reset", "Display", "Verify", "Warning", "Confirm"},
       {"User", "LockedUser", "Pwd", "PwdUnlock", "AccessRight", "Credential", "LoginHistory"},
       {"ActionUnLockUser", "ActionUnLockDisplayedUser", "ActionResetPwdUnlock",
        "ActionDisplayLockedUsers"}},
      {Area::kUserLifecycle,
       {"Create", "Delete", "Warning", "Confirm", "Copy", "Validate", "Review", "Approve"},
       {"User", "NewUser", "UserDraft", "UserTemplate", "Onboarding", "Offboarding"},
       {"ActionCreateUser", "ActionDeleteUser", "ActionWarningDeleteUser"}},
      {Area::kRole,
       {"Assign", "Revoke", "Display", "Modify", "List", "Copy", "Compare", "Audit"},
       {"Role", "RoleSet", "RoleTemplate", "RoleMapping", "Entitlement", "Delegation"},
       {"ActionModifyUserRole", "ActionDisplayRoles"}},
      {Area::kOffice,
       {"Create", "Modify", "Delete", "Display", "Merge", "Move", "List", "Validate"},
       {"Office", "OneOffice", "OfficeGroup", "OfficeProfile", "OfficeAgreement", "Corporate"},
       {"ActionDisplayOneOffice", "ActionEditOffice"}},
      {Area::kSecurityRule,
       {"Display", "Create", "Modify", "Delete", "Enable", "Disable", "Test"},
       {"TFARule", "DirectTFARule", "PwdRule", "SecurityPolicy", "IPRange", "SessionPolicy"},
       {"ActionDisplayDirectTFARule"}},
      {Area::kReporting,
       {"Open", "Run", "Export", "Schedule", "Display", "Download", "Archive"},
       {"Report", "AuditLog", "ActivityLog", "UsageStats", "ComplianceReport", "AccessReport"},
       {}},
      {Area::kProfile,
       {"Display", "Modify", "Verify", "Compare", "Annotate", "Review"},
       {"Profile", "ProfileHistory", "ContactInfo", "Preferences", "Signature"},
       {}},
      {Area::kGroupPerm,
       {"Create", "Delete", "Assign", "Revoke", "Display", "List", "Sync"},
       {"Group", "GroupMember", "Permission", "PermissionSet", "AccessList"},
       {}},
      {Area::kMarket,
       {"Display", "Modify", "Create", "Approve", "Suspend", "List"},
       {"Market", "Agreement", "Contract", "Provider", "Carrier", "Partnership"},
       {}},
      {Area::kQueue,
       {"Open", "Process", "Assign", "Close", "Display", "Purge", "Requeue", "Count"},
       {"Queue", "QueueItem", "Partition", "WorkBasket", "Batch", "Task"},
       {}},
  };
  return specs;
}
}  // namespace

std::vector<ActionDef> build_action_catalogue(std::size_t target_count) {
  const auto& specs = area_specs();
  std::vector<ActionDef> out;
  out.reserve(target_count + 32);

  // Fixed (paper-quoted) names first so they always exist.
  for (const auto& spec : specs) {
    for (const char* name : spec.fixed) out.push_back({name, spec.area});
  }

  // Then verb x noun products, round-robin over areas until the target is
  // reached, skipping duplicates of fixed names.
  auto exists = [&out](const std::string& name) {
    for (const auto& a : out) {
      if (a.name == name) return true;
    }
    return false;
  };
  std::size_t pair_index = 0;
  while (out.size() < target_count) {
    bool added_any = false;
    for (const auto& spec : specs) {
      if (out.size() >= target_count) break;
      const std::size_t vi = pair_index % spec.verbs.size();
      const std::size_t ni = (pair_index / spec.verbs.size()) % spec.nouns.size();
      if (pair_index >= spec.verbs.size() * spec.nouns.size()) continue;
      std::string name = std::string("Action") + spec.verbs[vi] + spec.nouns[ni];
      if (!exists(name)) {
        out.push_back({std::move(name), spec.area});
        added_any = true;
      }
    }
    ++pair_index;
    if (!added_any && pair_index > 512) break;  // all products exhausted
  }
  return out;
}

std::vector<std::vector<int>> intern_catalogue(const std::vector<ActionDef>& catalogue,
                                               ActionVocab& vocab) {
  std::vector<std::vector<int>> by_area(kAreaCount);
  for (const auto& def : catalogue) {
    const int id = vocab.intern(def.name);
    by_area[static_cast<std::size_t>(def.area)].push_back(id);
  }
  return by_area;
}

}  // namespace misuse::synth

// ADFA-style host-intrusion workload. The paper's future work (§V) plans
// evaluation on "one of the publicly available datasets (such as ADFA)"
// — system-call traces from a Linux host with normal program activity and
// labeled attacks (Creech & Hu 2013, the paper's reference [29]). The
// real dataset is not redistributable here, so this generator produces a
// corpus with the same structure: traces over a genuine Linux syscall
// vocabulary, drawn from normal program archetypes (server loops, shells,
// compilers, backup jobs) plus labeled attack traces whose syscall
// patterns mimic the ADFA attack classes (password brute force, web
// shell, privilege escalation, data exfiltration).
//
// The pipeline consumes these exactly like portal sessions — a trace is a
// "session" whose actions are syscalls — which is the point: the paper's
// method is supposed to transfer to this domain unchanged.
#pragma once

#include <cstdint>

#include "sessions/store.hpp"
#include "synth/archetype.hpp"

namespace misuse::synth {

enum class SyscallAttack : int {
  kBruteForceLogin = 0,  // repeated auth file reads + failed setuid
  kWebShell,             // accept -> fork -> execve loops
  kPrivilegeEscalation,  // mmap/mprotect/ptrace + setuid chains
  kExfiltration,         // open/read/sendto sweeps
  kCount
};

const char* syscall_attack_name(SyscallAttack attack);

struct SyscallWorkloadConfig {
  std::size_t normal_traces = 3000;
  std::size_t hosts = 50;             // plays the "user" role
  std::uint64_t seed = 4242;
  double attack_fraction = 0.0;       // attacks mixed into generate()
};

class SyscallWorkload {
 public:
  explicit SyscallWorkload(const SyscallWorkloadConfig& config);

  const SyscallWorkloadConfig& config() const { return config_; }
  const ActionVocab& vocab() const { return vocab_; }
  const std::vector<BehaviorArchetype>& programs() const { return programs_; }

  /// Normal traces (plus attacks when attack_fraction > 0).
  SessionStore generate() const;

  /// One labeled attack trace.
  Session make_attack(SyscallAttack attack, Rng& rng) const;

  /// A batch of attack traces cycling over all attack kinds.
  std::vector<Session> make_attack_set(std::size_t count, std::uint64_t seed) const;

 private:
  std::vector<int> ids(std::initializer_list<const char*> names) const;

  SyscallWorkloadConfig config_;
  ActionVocab vocab_;
  std::vector<BehaviorArchetype> programs_;
  std::vector<double> weights_;
};

}  // namespace misuse::synth

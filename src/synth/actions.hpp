// Synthetic action vocabulary for the administrative portal simulator.
//
// The paper's system logs ~300 distinct actions with names like
// 'ActionSearchUser', 'ActionDeleteUser', 'ActionResetPwdUnlock',
// 'ActionDisplayOneOffice', 'ActionDisplayDirectTFARule' (§I, §IV-D). We
// reproduce that shape: verb x entity combinations grouped into
// functional areas, so behavior archetypes can draw from coherent pools.
#pragma once

#include <string>
#include <vector>

#include "sessions/vocab.hpp"

namespace misuse::synth {

/// Functional areas of the simulated portal. Archetypes own one or two
/// home areas; kCommon holds navigation/search actions shared by all.
enum class Area : int {
  kCommon = 0,
  kUserAccess,    // lock/unlock/reset flows
  kUserLifecycle, // create/delete/onboard flows
  kRole,
  kOffice,
  kSecurityRule,  // TFA / password rules
  kReporting,
  kProfile,
  kGroupPerm,
  kMarket,
  kQueue,
  kCount
};

constexpr std::size_t kAreaCount = static_cast<std::size_t>(Area::kCount);

const char* area_name(Area area);

/// One generated action with its area tag.
struct ActionDef {
  std::string name;
  Area area;
};

/// Builds a deterministic catalogue of approximately `target_count`
/// actions (exact count returned may differ by a few) covering all areas.
/// Includes the concrete action names quoted in the paper.
std::vector<ActionDef> build_action_catalogue(std::size_t target_count);

/// Interns a catalogue into a vocabulary; returns per-area id lists
/// (indexed by Area) aligned with the vocab ids.
std::vector<std::vector<int>> intern_catalogue(const std::vector<ActionDef>& catalogue,
                                               ActionVocab& vocab);

}  // namespace misuse::synth

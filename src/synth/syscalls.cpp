#include "synth/syscalls.hpp"

#include <algorithm>
#include <cassert>

namespace misuse::synth {

const char* syscall_attack_name(SyscallAttack attack) {
  switch (attack) {
    case SyscallAttack::kBruteForceLogin: return "brute-force-login";
    case SyscallAttack::kWebShell: return "web-shell";
    case SyscallAttack::kPrivilegeEscalation: return "privilege-escalation";
    case SyscallAttack::kExfiltration: return "exfiltration";
    case SyscallAttack::kCount: break;
  }
  return "?";
}

namespace {
// A realistic subset of the Linux syscall table; order defines the ids.
const char* const kSyscalls[] = {
    "read",        "write",      "open",       "close",      "stat",       "fstat",
    "lstat",       "poll",       "lseek",      "mmap",       "mprotect",   "munmap",
    "brk",         "rt_sigaction", "rt_sigprocmask", "ioctl", "pread64",   "pwrite64",
    "readv",       "writev",     "access",     "pipe",       "select",     "sched_yield",
    "mremap",      "msync",      "madvise",    "dup",        "dup2",       "pause",
    "nanosleep",   "getitimer",  "alarm",      "setitimer",  "getpid",     "sendfile",
    "socket",      "connect",    "accept",     "sendto",     "recvfrom",   "sendmsg",
    "recvmsg",     "shutdown",   "bind",       "listen",     "getsockname","getpeername",
    "socketpair",  "setsockopt", "getsockopt", "clone",      "fork",       "vfork",
    "execve",      "exit",       "wait4",      "kill",       "uname",      "fcntl",
    "flock",       "fsync",      "fdatasync",  "truncate",   "ftruncate",  "getdents",
    "getcwd",      "chdir",      "fchdir",     "rename",     "mkdir",      "rmdir",
    "creat",       "link",       "unlink",     "symlink",    "readlink",   "chmod",
    "fchmod",      "chown",      "fchown",     "umask",      "gettimeofday","getrlimit",
    "getrusage",   "sysinfo",    "times",      "ptrace",     "getuid",     "syslog",
    "getgid",      "setuid",     "setgid",     "geteuid",    "getegid",    "setpgid",
    "getppid",     "getpgrp",    "setsid",     "setreuid",   "setregid",   "getgroups",
    "setgroups",   "capget",     "capset",     "sigaltstack","utime",      "mknod",
    "statfs",      "fstatfs",    "getpriority","setpriority","prctl",      "arch_prctl",
    "sync",        "mount",      "umount2",    "sethostname","openat",     "mkdirat",
    "fstatat",     "unlinkat",   "renameat",   "faccessat",  "epoll_create","epoll_wait",
    "epoll_ctl",   "inotify_init","inotify_add_watch", "futex", "getrandom", "clock_gettime",
};

struct ProgramSpec {
  const char* name;
  double weight;
  double log_len_mu;
  double log_len_sigma;
  std::initializer_list<const char*> workflow;
};

// Normal program archetypes: each workflow is a plausible syscall loop.
const ProgramSpec kPrograms[] = {
    {"web-server", 0.25, 3.0, 0.8,
     {"accept", "getpeername", "recvfrom", "stat", "openat", "fstat", "read", "sendto",
      "close", "epoll_wait", "clock_gettime", "write"}},
    {"interactive-shell", 0.20, 2.4, 0.9,
     {"read", "ioctl", "rt_sigaction", "fork", "execve", "wait4", "write", "getcwd",
      "chdir", "getdents", "stat", "dup2"}},
    {"compiler-job", 0.15, 3.2, 0.9,
     {"openat", "fstat", "mmap", "read", "brk", "mprotect", "write", "close", "unlink",
      "rename", "access", "getrandom"}},
    {"backup-daemon", 0.12, 3.4, 1.0,
     {"getdents", "stat", "openat", "read", "write", "fsync", "close", "utime", "chmod",
      "link", "statfs", "nanosleep"}},
    {"database-worker", 0.18, 2.8, 0.8,
     {"pread64", "pwrite64", "fdatasync", "futex", "mmap", "madvise", "lseek", "fcntl",
      "flock", "clock_gettime", "write", "read"}},
    {"media-player", 0.10, 2.6, 0.8,
     {"openat", "read", "mmap", "ioctl", "poll", "writev", "nanosleep", "clock_gettime",
      "munmap", "close", "lseek", "select"}},
};
}  // namespace

std::vector<int> SyscallWorkload::ids(std::initializer_list<const char*> names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const char* n : names) {
    const auto id = vocab_.find(n);
    assert(id.has_value());
    out.push_back(*id);
  }
  return out;
}

SyscallWorkload::SyscallWorkload(const SyscallWorkloadConfig& config) : config_(config) {
  for (const char* name : kSyscalls) vocab_.intern(name);

  Rng rng(config.seed);
  double weight_sum = 0.0;
  for (const auto& spec : kPrograms) {
    ArchetypeConfig ac;
    ac.name = spec.name;
    ac.pool = ids(spec.workflow);
    ac.workflow_size = ac.pool.size();
    // Shared "common" syscalls every program sprinkles in.
    for (const int common : ids({"brk", "rt_sigprocmask", "getpid", "uname"})) {
      ac.pool.push_back(common);
    }
    ac.log_len_mu = spec.log_len_mu;
    ac.log_len_sigma = spec.log_len_sigma;
    // Syscall loops are tighter than portal click-streams.
    ac.advance_prob = 0.62;
    ac.repeat_prob = 0.18;
    ac.restart_prob = 0.10;
    ac.common_prob = 0.10;
    programs_.emplace_back(std::move(ac));
    weights_.push_back(spec.weight);
    weight_sum += spec.weight;
  }
  assert(std::abs(weight_sum - 1.0) < 1e-9);
  (void)weight_sum;
}

SessionStore SyscallWorkload::generate() const {
  Rng rng(config_.seed ^ 0x5ca1ab1e5ca1ab1eULL);
  SessionStore store(vocab_);
  for (std::size_t i = 0; i < config_.normal_traces; ++i) {
    if (config_.attack_fraction > 0.0 && rng.bernoulli(config_.attack_fraction)) {
      Session s = make_attack(
          static_cast<SyscallAttack>(
              rng.uniform_index(static_cast<std::size_t>(SyscallAttack::kCount))),
          rng);
      s.id = i + 1;
      s.user = static_cast<std::uint32_t>(rng.uniform_index(config_.hosts));
      store.add(std::move(s));
      continue;
    }
    Session s;
    s.id = i + 1;
    s.user = static_cast<std::uint32_t>(rng.uniform_index(config_.hosts));
    s.start_minute = rng.uniform_index(31 * 1440);
    const std::size_t program = rng.categorical(weights_);
    s.archetype = static_cast<int>(program);
    s.actions = programs_[program].generate(rng);
    store.add(std::move(s));
  }
  return store;
}

Session SyscallWorkload::make_attack(SyscallAttack attack, Rng& rng) const {
  Session s;
  s.archetype = -1;
  s.injected_misuse = true;
  const auto emit_loop = [&](const std::vector<int>& pattern, std::size_t repeats,
                             double dropout) {
    for (std::size_t r = 0; r < repeats; ++r) {
      for (int a : pattern) {
        if (!rng.bernoulli(dropout)) s.actions.push_back(a);
      }
    }
  };
  switch (attack) {
    case SyscallAttack::kBruteForceLogin:
      // Hydra-style loop: open the auth database, read, fail a setuid,
      // repeat far more times than any normal login flow.
      emit_loop(ids({"openat", "read", "close", "setuid", "rt_sigaction", "nanosleep"}),
                4 + rng.uniform_index(8), 0.1);
      break;
    case SyscallAttack::kWebShell:
      // A listener that forks a shell per request.
      emit_loop(ids({"accept", "recvfrom", "fork", "execve", "wait4", "sendto", "close"}),
                3 + rng.uniform_index(6), 0.1);
      break;
    case SyscallAttack::kPrivilegeEscalation:
      emit_loop(ids({"ptrace", "mmap", "mprotect", "capset", "setuid", "setgid", "execve"}),
                2 + rng.uniform_index(4), 0.15);
      break;
    case SyscallAttack::kExfiltration:
      emit_loop(ids({"getdents", "openat", "read", "sendto", "close"}),
                5 + rng.uniform_index(10), 0.05);
      break;
    case SyscallAttack::kCount: assert(false);
  }
  if (s.actions.size() < 2) s.actions = ids({"openat", "read"});
  return s;
}

std::vector<Session> SyscallWorkload::make_attack_set(std::size_t count,
                                                      std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<Session> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto kind =
        static_cast<SyscallAttack>(i % static_cast<std::size_t>(SyscallAttack::kCount));
    Session s = make_attack(kind, rng);
    s.id = i + 1;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace misuse::synth

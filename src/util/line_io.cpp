#include "util/line_io.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/failpoint.hpp"

namespace misuse {

bool LineReader::next(std::string& line) {
  if (truncated_) return false;
  // Injected mid-stream EOF: producers vanishing between lines must look
  // exactly like a normal end of stream (graceful drain, not an error).
  if (MISUSEDET_FAILPOINT("line_io.eof")) return false;
  line.clear();
  char c;
  while (in_.get(c)) {
    if (c == '\n') {
      ++lines_read_;
      return true;
    }
    // CRLF terminators are consumed as a unit so the '\r' never counts
    // toward the line-size cap: a line of exactly max_line_bytes parses
    // identically whether the producer ends it with "\n" or "\r\n". A
    // bare '\r' not followed by '\n' stays payload (stripped only at a
    // final unterminated line, below).
    if (c == '\r' && in_.peek() == '\n') {
      in_.get(c);
      ++lines_read_;
      return true;
    }
    if (line.size() >= max_line_bytes_) {
      truncated_ = true;
      return false;
    }
    line.push_back(c);
  }
  // EOF: surface a final unterminated line, if any.
  if (!line.empty()) {
    if (line.back() == '\r') line.pop_back();
    ++lines_read_;
    return true;
  }
  return false;
}

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

bool fail(std::string& error, const std::string& message) {
  error = message;
  return false;
}

/// Parses a JSON string literal starting at the opening quote; leaves the
/// cursor after the closing quote. Handles the standard escapes plus
/// \uXXXX (BMP code points, encoded to UTF-8; surrogate pairs are
/// rejected as out of scope for action/user identifiers).
bool parse_string(Cursor& c, std::string& out, std::string& error) {
  ++c.pos;  // opening quote
  out.clear();
  while (!c.done()) {
    const char ch = c.text[c.pos];
    if (ch == '"') {
      ++c.pos;
      return true;
    }
    if (ch == '\\') {
      if (c.pos + 1 >= c.text.size()) return fail(error, "dangling escape");
      const char esc = c.text[c.pos + 1];
      c.pos += 2;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (c.pos + 4 > c.text.size()) return fail(error, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = c.text[c.pos + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail(error, "bad \\u escape");
            }
          }
          c.pos += 4;
          if (code >= 0xD800 && code <= 0xDFFF) return fail(error, "surrogate \\u escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail(error, "unknown escape");
      }
      continue;
    }
    out.push_back(ch);
    ++c.pos;
  }
  return fail(error, "unterminated string");
}

bool is_token_char(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '+' || ch == '-' ||
         ch == '.' || ch == 'e' || ch == 'E';
}

}  // namespace

bool parse_flat_json(std::string_view line, std::vector<JsonField>& fields, std::string& error) {
  fields.clear();
  error.clear();
  Cursor c{line};
  c.skip_ws();
  if (c.done() || c.peek() != '{') return fail(error, "expected '{'");
  ++c.pos;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.pos;
    c.skip_ws();
    return c.done() ? true : fail(error, "trailing characters after object");
  }
  while (true) {
    c.skip_ws();
    if (c.done() || c.peek() != '"') return fail(error, "expected key string");
    JsonField field;
    if (!parse_string(c, field.key, error)) return false;
    c.skip_ws();
    if (c.done() || c.peek() != ':') return fail(error, "expected ':'");
    ++c.pos;
    c.skip_ws();
    if (c.done()) return fail(error, "missing value");
    const char v = c.peek();
    if (v == '"') {
      field.is_string = true;
      if (!parse_string(c, field.value, error)) return false;
    } else if (v == '{' || v == '[') {
      return fail(error, "nested values are not supported");
    } else {
      const std::size_t start = c.pos;
      while (!c.done() && is_token_char(c.peek())) ++c.pos;
      if (c.pos == start) return fail(error, "empty value");
      field.value = std::string(line.substr(start, c.pos - start));
    }
    fields.push_back(std::move(field));
    c.skip_ws();
    if (c.done()) return fail(error, "unterminated object");
    if (c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (c.peek() == '}') {
      ++c.pos;
      c.skip_ws();
      return c.done() ? true : fail(error, "trailing characters after object");
    }
    return fail(error, "expected ',' or '}'");
  }
}

const JsonField* find_field(const std::vector<JsonField>& fields, std::string_view key) {
  for (const auto& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

std::optional<std::string> get_string(const std::vector<JsonField>& fields,
                                      std::string_view key) {
  const JsonField* f = find_field(fields, key);
  if (f == nullptr) return std::nullopt;
  // Tolerate numeric ids where a string is expected ("user_id": 17).
  return f->value;
}

std::optional<double> get_number(const std::vector<JsonField>& fields, std::string_view key) {
  const JsonField* f = find_field(fields, key);
  if (f == nullptr) return std::nullopt;
  const char* begin = f->value.data();
  const char* end = begin + f->value.size();
  double parsed = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return parsed;
}

}  // namespace misuse

// Minimal POSIX TCP helpers for the serving layer: a listener bound to a
// local port, an accepted/connected stream exposed as a std::iostream
// (via a small fd-backed streambuf), and a loopback connect for tests
// and the replay client. IPv4 only, blocking IO — the scoring server
// multiplexes users per *line*, not per connection, so one thread per
// connection with blocking reads is the simplest correct model.
#pragma once

#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <streambuf>
#include <string>

namespace misuse {

/// std::streambuf over a file descriptor with fixed-size read/write
/// buffers. Does not own the fd.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_out();

  static constexpr std::size_t kBufSize = 1 << 14;
  int fd_;
  char in_buf_[kBufSize];
  char out_buf_[kBufSize];
};

/// An open TCP stream (accepted or connected). Owns the fd.
class TcpStream {
 public:
  explicit TcpStream(int fd);
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  std::iostream& io() { return *io_; }
  int fd() const { return fd_; }

  /// Arms SO_RCVTIMEO so blocking reads fail (stream goes bad) after
  /// `seconds` without data instead of hanging forever. Used by the
  /// admin plane so a stalled scraper cannot wedge its handler thread.
  void set_read_timeout(double seconds);

  /// Arms SO_SNDTIMEO: a blocking write into a full socket buffer fails
  /// after `seconds` instead of wedging the writer. The router arms this
  /// on upstream node connections so a stuck node surfaces as a failed
  /// forward (-> node down + handoff), never a hung router.
  void set_write_timeout(double seconds);

  /// Half-closes the write side so the peer sees EOF after our last byte.
  void shutdown_write();
  /// Shuts down the read side; unblocks a concurrent blocking read on
  /// this fd (used by cross-thread graceful shutdown).
  void shutdown_read();
  /// Closes the fd (subsequent io() use fails); idempotent.
  void close();

 private:
  int fd_ = -1;
  std::unique_ptr<FdStreamBuf> buf_;
  std::unique_ptr<std::iostream> io_;
};

/// Listening socket. `port` 0 binds an ephemeral port (read it back via
/// port()). Throws std::runtime_error on failure.
class TcpListener {
 public:
  static TcpListener bind(std::uint16_t port, const std::string& host = "0.0.0.0");
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// The listening descriptor, for callers that multiplex the accept
  /// themselves (serve/epoll_loop registers it with epoll after
  /// set_nonblocking). -1 once closed. The listener keeps ownership.
  int fd() const { return fd_.load(std::memory_order_acquire); }

  /// Blocks for the next connection; nullopt once the listener is closed
  /// (close() from another thread unblocks the accept).
  std::optional<TcpStream> accept();

  /// Shuts the listening socket down; a pending accept() unblocks and it
  /// and all future accept() calls return nullopt. Safe to call from a
  /// signal-driven shutdown path's thread while accept() is blocked —
  /// the fd itself is released only by the destructor, so a concurrent
  /// accept() can never observe a recycled descriptor.
  void close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Connects to host:port (IPv4 dotted quad or "localhost"). Throws
/// std::runtime_error on failure.
TcpStream tcp_connect(const std::string& host, std::uint16_t port);

// -- Nonblocking primitives (serve/epoll_loop.hpp) --------------------------
//
// The epoll front end multiplexes thousands of connections on one
// thread, so its reads and writes must never block *and* never spin: a
// full socket buffer surfaces as kWouldBlock and the caller re-arms
// EPOLLOUT (or waits for EPOLLIN) instead of retrying in a loop. EINTR
// is the one transient retried here — a signal landing mid-syscall is
// not an IO event and epoll would not report one.

/// Result of one nonblocking read/write attempt.
enum class IoStatus {
  kOk,          // >= 1 byte transferred
  kWouldBlock,  // EAGAIN/EWOULDBLOCK — wait for epoll readiness, do not retry
  kEof,         // read: orderly peer shutdown (half-close)
  kError,       // fatal errno (EPIPE, ECONNRESET, ...) — close the fd
};

/// Sets/clears O_NONBLOCK. Returns false when fcntl fails.
bool set_nonblocking(int fd, bool enabled = true);

/// One read(2) attempt into buf[0..cap). EINTR retries internally;
/// EAGAIN maps to kWouldBlock (failpoint "socket.nb.read" injects it).
/// On kOk, `n` holds the byte count.
IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t& n);

/// One write(2) attempt of buf[0..len). EINTR retries internally; a
/// partial write returns kOk with `n` < len (the caller keeps its cursor
/// and waits for the next EPOLLOUT); EAGAIN maps to kWouldBlock with
/// `n` == 0. Never loops on EAGAIN — that retry belongs to epoll
/// writability, not a busy-spin (failpoints "socket.nb.write.block" and
/// "socket.nb.write.short" inject EAGAIN and 1-byte writes).
IoStatus write_some(int fd, const char* buf, std::size_t len, std::size_t& n);

/// Retry schedule for tcp_connect_retry: exponential backoff with
/// full jitter, deterministic for a given seed (Rng::stream(seed,
/// attempt) draws the jitter, so retries are reproducible and uncorrelated
/// across clients started with different seeds).
struct RetryConfig {
  std::size_t attempts = 5;          // total tries, including the first
  double base_delay_seconds = 0.05;  // delay before the second try
  double max_delay_seconds = 2.0;    // backoff cap
  std::uint64_t seed = 0;            // jitter stream
};

/// tcp_connect with retries: sleeps uniform(0, min(max, base * 2^k)]
/// between attempts. Throws the final connect error once the budget is
/// exhausted. Failpoint "socket.connect" fails an attempt for testing.
TcpStream tcp_connect_retry(const std::string& host, std::uint16_t port,
                            const RetryConfig& retry = {});

}  // namespace misuse

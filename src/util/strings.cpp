#include "util/strings.hpp"

#include <cctype>

namespace misuse {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string with_thousands(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace misuse

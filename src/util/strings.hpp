// Small string helpers shared by the log parser, CLI, and viz exporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace misuse {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);

/// "1234567" -> "1,234,567" for table readability.
std::string with_thousands(long long v);

}  // namespace misuse

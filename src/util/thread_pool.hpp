// Deterministic thread-pool execution layer. Every parallel stage of the
// pipeline (LDA ensemble runs, per-cluster OC-SVM / LSTM training,
// blocked GEMM, batch session scoring) fans out over this pool and merges
// its results in index order, so the output of any computation is
// bit-identical to the single-threaded run regardless of worker count.
//
// Determinism contract:
//   * tasks never share mutable state — each task owns its slot of a
//     pre-sized output vector, indexed by the task's position;
//   * per-task randomness is seeded *before* the fan-out from the task
//     index (see util/rng.hpp for the seeding scheme), never drawn from a
//     generator shared across tasks;
//   * floating-point reductions keep the serial association order: a
//     parallel_for over matrix rows computes every row exactly as the
//     serial loop would, and cross-task sums are accumulated by the
//     caller in ascending index order.
//
// Worker count resolution (first match wins):
//   1. set_global_threads(n) with n >= 1,
//   2. the MISUSEDET_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
// A count of 1 short-circuits every entry point to plain inline
// execution — the exact serial code path, no threads created at all.
//
// Telemetry (util/metrics.hpp): the pool publishes "pool.queue_depth"
// (gauge; its high-water mark is the backlog record), the
// "pool.tasks_executed" counter, and one "pool.worker<N>.busy_nanos"
// counter per worker. None of it affects scheduling or results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/trace.hpp"

namespace misuse {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 resolves to hardware_concurrency().
  /// A pool of size 1 spawns no threads and runs everything inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (>= 1; 1 means inline execution).
  std::size_t size() const { return size_; }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Schedules a callable and returns its future. Exceptions thrown by
  /// the task surface from future::get(). Calls from inside a worker of
  /// this pool execute inline (already-parallel context), which makes
  /// nested submission deadlock-free by construction. The submitting
  /// thread's open trace span (util/trace.hpp) is adopted by the worker
  /// for the task's duration, so spans opened inside the task attach
  /// under the span that scheduled it.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (size_ == 1 || on_worker_thread()) {
      (*task)();
      return result;
    }
    enqueue([task, span = trace_detail::current_node()] {
      trace_detail::ContextGuard trace_context(span);
      (*task)();
    });
    return result;
  }

  /// Calls fn(i) for every i in [begin, end), distributing contiguous
  /// index chunks over the workers; the calling thread participates, so
  /// the pool is never idle-blocked on its own caller. Returns when every
  /// index has run. If any invocation throws, the exception thrown at the
  /// lowest index is rethrown (deterministically, independent of thread
  /// timing). Nested calls from a worker thread run serially inline.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t worker_id);

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool used by all pipeline stages. Built lazily on
/// first use from MISUSEDET_THREADS / hardware_concurrency.
ThreadPool& global_pool();

/// Rebuilds the global pool with `threads` workers (0 = re-resolve from
/// the environment). No-op when the pool already has that many workers.
/// Not safe to call while parallel work is in flight.
void set_global_threads(std::size_t threads);

/// Worker count of the global pool (>= 1) without forcing construction
/// order side effects beyond what global_pool() itself does.
std::size_t global_thread_count();

}  // namespace misuse

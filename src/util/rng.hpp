// Deterministic pseudo-random number generation for all stochastic
// components (data synthesis, LDA Gibbs sampling, neural-net init,
// dropout, t-SNE). Every experiment in the paper reproduction is seeded,
// so runs are bit-reproducible on a given platform.
//
// Seeding scheme under parallel execution
// ---------------------------------------
// An Rng instance is NOT thread-safe and must never be shared across the
// thread pool: a draw order that depends on scheduling would break the
// bit-for-bit determinism contract (util/thread_pool.hpp). Instead, every
// parallel task derives its own independent stream from data that is
// fixed *before* the fan-out:
//   * Rng::stream(base_seed, stream_id) — the canonical derivation: both
//     words pass through splitmix64, so adjacent ids yield uncorrelated
//     states. Use the task index as stream_id.
//   * additive offsets (base_seed + cluster_id) — the historical scheme
//     kept by the per-cluster OC-SVM (assigner.cpp) and language-model
//     (detector.cpp) training; safe because each offset seeds a private
//     generator through splitmix64 inside the Rng constructor.
//   * pre-drawn seeds — the LDA ensemble draws one seed per run from a
//     serial seeder generator before the runs fan out (ensemble.cpp).
// Audit note: split() advances this generator's state, so calling it
// from inside parallel tasks is order-dependent — derive streams before
// the fan-out, never inside it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace misuse {

/// xoshiro256++ generator (Blackman & Vigna). Small, fast, and good
/// statistical quality; satisfies UniformRandomBitGenerator so it can be
/// handed to <algorithm> shuffles as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via splitmix64,
  /// guaranteeing a non-zero state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);
  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(std::span<const double> weights);
  /// Geometric-like draw: number of failures before the first success
  /// with success probability p in (0, 1].
  std::size_t geometric(double p);
  /// Log-normal draw with the given underlying normal parameters.
  double lognormal(double mu, double sigma);

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// A derived generator with independent state; used to give each
  /// component (per-cluster model, per-LDA-run) its own stream. Advances
  /// this generator — call serially, never from parallel tasks.
  Rng split();

  /// Independent, reproducible stream for worker/task `stream_id` under
  /// `base_seed`. Pure function of its arguments (no shared state), so it
  /// can be called from any thread; the canonical way to seed randomness
  /// inside parallel_for bodies.
  static Rng stream(std::uint64_t base_seed, std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step; exposed for seeding utilities and tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace misuse

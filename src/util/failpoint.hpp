// Deterministic fault-injection framework. Code sprinkles *named sites*
// into failure-prone paths (file IO, sockets, WAL fsync, archive load,
// shard queues):
//
//   if (MISUSEDET_FAILPOINT("wal.fsync")) return false;  // injected fault
//
// The site decides what its failure means (error return, short write,
// thrown exception); the framework only decides *whether* this hit
// fires. Sites are activated at process start via the environment,
//
//   MISUSEDET_FAILPOINTS="wal.fsync=nth:3;socket.write.short=every:2"
//
// or programmatically from tests (failpoints::set / clear). Trigger
// policies:
//   * always        — every evaluation fires
//   * off           — never fires (site stays registered for hit counts)
//   * nth:N         — exactly the Nth evaluation fires (1-based)
//   * every:K       — every Kth evaluation fires (K, 2K, ...)
//   * prob:P[:SEED] — each evaluation fires with probability P, decided
//                     by Rng::stream(SEED, hit_index): deterministic for
//                     a given seed regardless of thread interleaving.
//
// Zero cost when compiled out: unless the build defines
// MISUSEDET_FAILPOINTS_ENABLED=1 (CMake -DMISUSEDET_FAILPOINTS=ON; the
// default everywhere except Release), MISUSEDET_FAILPOINT(...) expands
// to the constant false and the site disappears entirely — verified by
// the bench-smoke CI job, which builds with failpoints off.
#pragma once

#include <cstdint>
#include <string>

namespace misuse::failpoints {

/// True when sites were compiled in (build-time switch).
bool compiled_in();

/// Evaluates the site against its configured policy; counts the hit.
/// Unconfigured sites never fire. Thread-safe.
bool evaluate(const char* site);

/// Replaces the whole configuration from a spec string
/// ("site=policy;site=policy"). Malformed entries are skipped with a
/// warning. An empty spec clears everything.
void configure(const std::string& spec);

/// Sets (or replaces) one site's policy, e.g. set("wal.fsync", "nth:2").
/// Returns false on an unparseable policy.
bool set(const std::string& site, const std::string& policy);

/// Removes every configured site and resets all counters.
void clear();

/// Evaluations of the site so far (configured sites only).
std::uint64_t hits(const std::string& site);

/// Evaluations that fired.
std::uint64_t triggered(const std::string& site);

}  // namespace misuse::failpoints

#if defined(MISUSEDET_FAILPOINTS_ENABLED) && MISUSEDET_FAILPOINTS_ENABLED
#define MISUSEDET_FAILPOINT(site) (::misuse::failpoints::evaluate(site))
#else
#define MISUSEDET_FAILPOINT(site) (false)
#endif

#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace misuse {

namespace {
// Workers log concurrently (the thread pool fans every training stage
// out), so the threshold is an atomic read on every call site and the
// default honors MISUSEDET_LOG_LEVEL before main() runs.
std::atomic<int> g_level{static_cast<int>(default_log_level())};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel default_log_level() {
  if (const char* env = std::getenv("MISUSEDET_LOG_LEVEL")) return parse_log_level(env);
  return LogLevel::kInfo;
}

namespace detail {

int thread_log_id() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1);
  return id;
}

void emit(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  // One fprintf per line so concurrent writers never interleave within a
  // line (stderr is line-buffered at worst; the single call is atomic
  // enough for POSIX streams).
  std::fprintf(stderr, "[%s %s t%02d] %s\n", stamp, level_tag(level), thread_log_id(),
               message.c_str());
}

}  // namespace detail

}  // namespace misuse

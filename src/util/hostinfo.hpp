// Best-effort host description for stamping benchmark artifacts and
// /statusz. Performance numbers are meaningless without knowing the
// host that produced them (ROADMAP: BENCH_parallel was once recorded on
// a single-core runner and read as a regression), so every BENCH_*.json
// carries a "host" member written through this helper.
#pragma once

#include <cstddef>
#include <string>

namespace misuse {

class JsonWriter;

struct HostInfo {
  std::size_t cores = 0;  ///< std::thread::hardware_concurrency()
  std::string cpu_model;  ///< /proc/cpuinfo "model name" (empty off Linux)
  std::string cpu_flags;  ///< /proc/cpuinfo "flags", space-separated ISA flags
};

/// Probes once per process and caches; never fails (unknown fields stay
/// empty / zero).
const HostInfo& host_info();

/// Emits `"host":{"cores":N,"cpu_model":...,"cpu_flags":...}` as a
/// member of the object currently open on `json`.
void write_host_info(JsonWriter& json);

}  // namespace misuse

#include "util/cli.hpp"

#include <cstdlib>

namespace misuse {

namespace {
bool is_truthy(const std::string& v) {
  return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}
}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (body.rfind("no-", 0) == 0) {
      values_[body.substr(3)] = "false";
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare boolean "--key".
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      if (next.rfind("--", 0) != 0) {
        values_[body] = std::move(next);
        ++i;
        continue;
      }
    }
    values_[body] = "";
  }
}

bool CliArgs::flag(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return is_truthy(it->second);
}

std::string CliArgs::str(const std::string& name, const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t CliArgs::integer(const std::string& name, std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::real(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace misuse

#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace misuse {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_, in_buf_, in_buf_);
  setp(out_buf_, out_buf_ + kBufSize);
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    // Injected EINTR: proves a signal landing mid-read only retries.
    if (MISUSEDET_FAILPOINT("socket.read")) {
      errno = EINTR;
      n = -1;
      continue;
    }
    n = ::read(fd_, in_buf_, kBufSize);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_buf_, in_buf_, in_buf_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flush_out() {
  const char* p = pbase();
  while (p < pptr()) {
    // Injected dead peer: with SIGPIPE ignored (serve/main.cpp) a write
    // to a closed connection fails with EPIPE, which must surface as a
    // stream error, never a crash.
    if (MISUSEDET_FAILPOINT("socket.write.fail")) {
      errno = EPIPE;
      return false;
    }
    // Injected short write: cap the chunk at one byte so the partial-
    // write loop below does the reassembly.
    std::size_t chunk = static_cast<std::size_t>(pptr() - p);
    if (MISUSEDET_FAILPOINT("socket.write.short")) chunk = 1;
    ssize_t n;
    do {
      n = ::write(fd_, p, chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    p += n;
  }
  setp(out_buf_, out_buf_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_out()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_out() ? 0 : -1; }

TcpStream::TcpStream(int fd)
    : fd_(fd),
      buf_(std::make_unique<FdStreamBuf>(fd)),
      io_(std::make_unique<std::iostream>(buf_.get())) {}

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)), io_(std::move(other.io_)) {
  other.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    io_ = std::move(other.io_);
    other.fd_ = -1;
  }
  return *this;
}

void TcpStream::set_read_timeout(double seconds) {
  if (fd_ < 0 || seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void TcpStream::set_write_timeout(double seconds) {
  if (fd_ < 0 || seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void TcpStream::shutdown_write() {
  if (fd_ >= 0) {
    io_->flush();
    ::shutdown(fd_, SHUT_WR);
  }
}

void TcpStream::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    if (io_) io_->flush();
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::bind(std::uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpListener::~TcpListener() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)), port_(other.port_) {}

std::optional<TcpStream> TcpListener::accept() {
  while (true) {
    const int listen_fd = fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return std::nullopt;
    // Injected transient accept failure (EINTR path: loop and retry).
    if (MISUSEDET_FAILPOINT("socket.accept")) {
      errno = EINTR;
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // listener shut down (EINVAL) or fatal error
  }
}

void TcpListener::close() {
  // shutdown() unblocks a concurrent accept() on Linux, after which every
  // accept() fails with EINVAL. The fd is deliberately NOT ::close()d
  // here: releasing it while another thread sits in accept() would let
  // the kernel recycle the descriptor under that thread. The destructor
  // (which must not run concurrently with accept()) releases it.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool set_nonblocking(int fd, bool enabled) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t& n) {
  n = 0;
  while (true) {
    // Injected EAGAIN: proves the loop parks the connection instead of
    // spinning on a socket with nothing to read.
    if (MISUSEDET_FAILPOINT("socket.nb.read")) return IoStatus::kWouldBlock;
    const ssize_t got = ::read(fd, buf, cap);
    if (got > 0) {
      n = static_cast<std::size_t>(got);
      return IoStatus::kOk;
    }
    if (got == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

IoStatus write_some(int fd, const char* buf, std::size_t len, std::size_t& n) {
  n = 0;
  if (len == 0) return IoStatus::kOk;
  // Injected full socket buffer: the caller must arm EPOLLOUT and hand
  // the cursor back to the event loop, never retry inline.
  if (MISUSEDET_FAILPOINT("socket.nb.write.block")) return IoStatus::kWouldBlock;
  // Injected short write: 1-byte chunks force the caller's cursor
  // arithmetic through every offset.
  if (MISUSEDET_FAILPOINT("socket.nb.write.short")) len = 1;
  while (true) {
    const ssize_t put = ::write(fd, buf, len);
    if (put > 0) {
      n = static_cast<std::size_t>(put);
      return IoStatus::kOk;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

TcpStream tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad connect address: " + host);
  }
  // Injected connect failure: exercises tcp_connect_retry's backoff.
  if (MISUSEDET_FAILPOINT("socket.connect")) {
    ::close(fd);
    errno = ECONNREFUSED;
    throw_errno("connect " + resolved + " (injected)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect " + resolved);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

TcpStream tcp_connect_retry(const std::string& host, std::uint16_t port,
                            const RetryConfig& retry) {
  const std::size_t attempts = std::max<std::size_t>(1, retry.attempts);
  double backoff = retry.base_delay_seconds;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return tcp_connect(host, port);
    } catch (const std::runtime_error&) {
      if (attempt + 1 >= attempts) throw;
    }
    // Full jitter: uniform in (0, backoff]. Deterministic per (seed,
    // attempt) so a replayed client waits the same schedule.
    Rng rng = Rng::stream(retry.seed, attempt);
    const double delay = rng.uniform() * std::min(backoff, retry.max_delay_seconds);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    backoff *= 2.0;
  }
}

}  // namespace misuse

#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace misuse {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_, in_buf_, in_buf_);
  setp(out_buf_, out_buf_ + kBufSize);
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::read(fd_, in_buf_, kBufSize);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_buf_, in_buf_, in_buf_ + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreamBuf::flush_out() {
  const char* p = pbase();
  while (p < pptr()) {
    ssize_t n;
    do {
      n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    p += n;
  }
  setp(out_buf_, out_buf_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_out()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_out() ? 0 : -1; }

TcpStream::TcpStream(int fd)
    : fd_(fd),
      buf_(std::make_unique<FdStreamBuf>(fd)),
      io_(std::make_unique<std::iostream>(buf_.get())) {}

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)), io_(std::move(other.io_)) {
  other.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    io_ = std::move(other.io_);
    other.fd_ = -1;
  }
  return *this;
}

void TcpStream::shutdown_write() {
  if (fd_ >= 0) {
    io_->flush();
    ::shutdown(fd_, SHUT_WR);
  }
}

void TcpStream::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    if (io_) io_->flush();
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::bind(std::uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpListener::~TcpListener() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)), port_(other.port_) {}

std::optional<TcpStream> TcpListener::accept() {
  while (true) {
    const int listen_fd = fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return std::nullopt;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    return std::nullopt;  // listener shut down (EINVAL) or fatal error
  }
}

void TcpListener::close() {
  // shutdown() unblocks a concurrent accept() on Linux, after which every
  // accept() fails with EINVAL. The fd is deliberately NOT ::close()d
  // here: releasing it while another thread sits in accept() would let
  // the kernel recycle the descriptor under that thread. The destructor
  // (which must not run concurrently with accept()) releases it.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

TcpStream tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad connect address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect " + resolved);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

}  // namespace misuse

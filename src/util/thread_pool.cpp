#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>

#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace misuse {

namespace {
// Worker threads mark themselves with their owning pool so nested
// submit()/parallel_for() calls can detect an already-parallel context
// and degrade to inline execution instead of deadlocking.
thread_local const ThreadPool* t_owning_pool = nullptr;

// Spawning more workers than this is never useful and a wrapped negative
// or fat-fingered request would otherwise abort inside std::thread.
constexpr std::size_t kMaxThreads = 512;

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested >= 1) return std::min(requested, kMaxThreads);
  if (const char* env = std::getenv("MISUSEDET_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return std::min(static_cast<std::size_t>(v), kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : size_(resolve_thread_count(threads)) {
  if (size_ == 1) return;  // inline mode: no threads at all
  workers_.reserve(size_);
  for (std::size_t w = 0; w < size_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const { return t_owning_pool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  // Registered once; the registry outlives every pool (it is never
  // destroyed), so caching the references here is safe.
  static Gauge& queue_depth = metrics().gauge("pool.queue_depth");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
    queue_depth.set(static_cast<std::int64_t>(tasks_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  t_owning_pool = this;
  static Gauge& queue_depth = metrics().gauge("pool.queue_depth");
  static Counter& executed = metrics().counter("pool.tasks_executed");
  Counter& busy = metrics().counter("pool.worker" + std::to_string(worker_id) + ".busy_nanos");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      queue_depth.set(static_cast<std::int64_t>(tasks_.size()));
    }
    Timer task_timer;
    task();
    busy.inc(static_cast<std::uint64_t>(task_timer.seconds() * 1e9));
    executed.inc();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (size_ == 1 || n == 1 || on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Static chunking: a few chunks per lane balances load without making
  // the per-chunk dispatch overhead dominate tiny bodies.
  const std::size_t grain = std::max<std::size_t>(1, n / (size_ * 4));
  const std::size_t chunk_count = (n + grain - 1) / grain;

  struct Shared {
    std::atomic<std::size_t> next_chunk{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t chunks_done = 0;
    std::size_t chunk_total = 0;
    // Lowest-index failure wins so the rethrown exception does not depend
    // on which worker happened to run first.
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
  };
  auto shared = std::make_shared<Shared>();
  shared->chunk_total = chunk_count;

  // fn is captured by pointer: every chunk is claimed-then-run, and the
  // caller blocks below until all claimed chunks have completed, so the
  // referent outlives every use. Helpers that wake after the last chunk
  // was claimed touch only `shared`. The caller's open trace span is
  // adopted by every helper so spans opened inside fn attach under it.
  const auto* body = &fn;
  auto run_chunks = [shared, body, begin, end, grain,
                     span = trace_detail::current_node()] {
    trace_detail::ContextGuard trace_context(span);
    for (;;) {
      const std::size_t c = shared->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= shared->chunk_total) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          (*body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->done_mutex);
          if (i < shared->error_index) {
            shared->error_index = i;
            shared->error = std::current_exception();
          }
        }
      }
      std::lock_guard<std::mutex> lock(shared->done_mutex);
      if (++shared->chunks_done == shared->chunk_total) shared->done_cv.notify_all();
    }
  };

  const std::size_t helpers = std::min(size_, chunk_count) - 1;
  for (std::size_t h = 0; h < helpers; ++h) enqueue(run_chunks);
  run_chunks();  // the caller works too; never blocks waiting on itself

  std::unique_lock<std::mutex> lock(shared->done_mutex);
  shared->done_cv.wait(lock, [&shared] { return shared->chunks_done == shared->chunk_total; });
  if (shared->error) std::rethrow_exception(shared->error);
}

namespace {
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex g_global_pool_mutex;
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void set_global_threads(std::size_t threads) {
  const std::size_t resolved = resolve_thread_count(threads);
  std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  auto& slot = global_pool_slot();
  if (slot && slot->size() == resolved) return;
  slot = std::make_unique<ThreadPool>(resolved);
}

std::size_t global_thread_count() { return global_pool().size(); }

}  // namespace misuse

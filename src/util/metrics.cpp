#include "util/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "util/json.hpp"

namespace misuse {

namespace {
std::atomic<bool> g_metrics_enabled{true};

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------

void Gauge::raise_high_water(std::int64_t v) {
  std::int64_t seen = high_water_.load(std::memory_order_relaxed);
  while (v > seen && !high_water_.compare_exchange_weak(seen, v, std::memory_order_relaxed,
                                                        std::memory_order_relaxed)) {
  }
}

void Gauge::set(std::int64_t v) {
  if (!metrics_enabled()) return;
  value_.store(v, std::memory_order_relaxed);
  raise_high_water(v);
}

void Gauge::add(std::int64_t delta) {
  if (!metrics_enabled()) return;
  const std::int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_high_water(now);
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  high_water_.store(0, std::memory_order_relaxed);
}

// --- HistogramMetric ---------------------------------------------------------

std::vector<double> exponential_buckets(double start, double factor, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& latency_buckets() {
  static const std::vector<double> bounds = exponential_buckets(1e-6, 2.0, 28);
  return bounds;
}

HistogramMetric::HistogramMetric(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  // Bounds must be strictly ascending for the binary search; a misuse
  // here is a programming error, so just sort/dedupe defensively.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void HistogramMetric::record(double value) {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
}

std::uint64_t HistogramMetric::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramMetric::sum() const { return sum_.load(std::memory_order_relaxed); }

double HistogramMetric::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the requested quantile (1-based), then walk the cumulative
  // counts and interpolate linearly inside the bucket that crosses it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const std::uint64_t next = cumulative + in_bucket;
    if (rank <= static_cast<double>(next)) {
      if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void HistogramMetric::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------

namespace {
// Generic sorted-vector upsert shared by the three instrument kinds.
template <typename T, typename Make>
T& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& map,
                  std::string_view name, const Make& make) {
  const auto it = std::lower_bound(
      map.begin(), map.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != map.end() && it->first == name) return *it->second;
  return *map.insert(it, {std::string(name), make()})->second;
}
}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name,
                        [&] { return std::make_unique<Counter>(std::string(name)); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name, [&] { return std::make_unique<Gauge>(std::string(name)); });
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name,
                        [&] { return std::make_unique<HistogramMetric>(std::string(name), bounds); });
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json.begin_object();

  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : counters_) json.member(name, c->value());
  json.end_object();

  json.key("gauges");
  json.begin_object();
  for (const auto& [name, g] : gauges_) {
    json.key(name);
    json.begin_object();
    json.member("value", static_cast<long long>(g->value()));
    json.member("high_water", static_cast<long long>(g->high_water()));
    json.end_object();
  }
  json.end_object();

  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms_) {
    json.key(name);
    json.begin_object();
    const std::uint64_t n = h->count();
    json.member("count", n);
    json.member("sum", h->sum());
    json.member("mean", n > 0 ? h->sum() / static_cast<double>(n) : 0.0);
    json.member("p50", h->quantile(0.50));
    json.member("p90", h->quantile(0.90));
    json.member("p99", h->quantile(0.99));
    json.key("buckets");
    json.begin_array();
    for (std::size_t i = 0; i < h->buckets(); ++i) {
      const std::uint64_t in_bucket = h->bucket_count(i);
      if (in_bucket == 0) continue;  // sparse: empty buckets carry no information
      json.begin_object();
      if (i < h->bounds().size()) {
        json.member("le", h->bounds()[i]);
      } else {
        json.member("le", "inf");
      }
      json.member("count", in_bucket);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.end_object();
}

// --- Prometheus exposition ---------------------------------------------

std::string prometheus_name(std::string_view name) {
  std::string out = "misusedet_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

namespace {
// Prometheus floats: shortest round-trippable-ish decimal, with the
// spec's spellings for the non-finite values ("+Inf" bucket bounds).
void write_prom_value(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "NaN";
    return;
  }
  if (std::isinf(v)) {
    out << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out << buf;
}
}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);

  for (const auto& [name, c] : counters_) {
    const std::string prom = prometheus_name(name) + "_total";
    out << "# TYPE " << prom << " counter\n";
    out << prom << ' ' << c->value() << '\n';
  }

  for (const auto& [name, g] : gauges_) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << ' ' << g->value() << '\n';
    out << "# TYPE " << prom << "_high_water gauge\n";
    out << prom << "_high_water " << g->high_water() << '\n';
  }

  for (const auto& [name, h] : histograms_) {
    const std::string prom = prometheus_name(name);
    // One consistent copy of the bucket counts: writers may race the
    // scrape, but rendering from the copy keeps the cumulative counts
    // monotone and makes the +Inf bucket equal _count by construction.
    const std::vector<double>& bounds = h->bounds();
    std::vector<std::uint64_t> counts(h->buckets());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = h->bucket_count(i);
      total += counts[i];
    }

    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out << prom << "_bucket{le=\"";
      write_prom_value(out, i < bounds.size() ? bounds[i]
                                              : std::numeric_limits<double>::infinity());
      out << "\"} " << cumulative << '\n';
    }
    out << prom << "_sum ";
    write_prom_value(out, h->sum());
    out << '\n';
    out << prom << "_count " << total << '\n';

    // Companion summary family so scrapers that don't do bucket math
    // still get the headline quantiles.
    out << "# TYPE " << prom << "_summary summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      out << prom << "_summary{quantile=\"";
      write_prom_value(out, q);
      out << "\"} ";
      write_prom_value(out, h->quantile(q));
      out << '\n';
    }
    out << prom << "_summary_sum ";
    write_prom_value(out, h->sum());
    out << '\n';
    out << prom << "_summary_count " << total << '\n';
  }
}

// --- Snapshot / delta ---------------------------------------------------

namespace {
double steady_now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.at_seconds = steady_now_seconds();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = static_cast<double>(g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Histogram& hist = snap.histograms[name];
    const std::vector<double>& bounds = h->bounds();
    hist.cumulative.reserve(h->buckets());
    double cumulative = 0.0;
    for (std::size_t i = 0; i < h->buckets(); ++i) {
      cumulative += static_cast<double>(h->bucket_count(i));
      hist.cumulative.emplace_back(
          i < bounds.size() ? bounds[i] : std::numeric_limits<double>::infinity(), cumulative);
    }
    hist.count = cumulative;
    hist.sum = h->sum();
  }
  return snap;
}

MetricsDelta::MetricsDelta(MetricsSnapshot earlier, MetricsSnapshot later)
    : earlier_(std::move(earlier)), later_(std::move(later)) {
  seconds_ = std::max(0.0, later_.at_seconds - earlier_.at_seconds);
}

double MetricsDelta::counter_delta(const std::string& name) const {
  const auto it = later_.counters.find(name);
  if (it == later_.counters.end()) return 0.0;
  const auto prev = earlier_.counters.find(name);
  const double before = prev == earlier_.counters.end() ? 0.0 : prev->second;
  return std::max(0.0, it->second - before);
}

double MetricsDelta::rate(const std::string& name) const {
  if (seconds_ <= 0.0) return 0.0;
  return counter_delta(name) / seconds_;
}

double MetricsDelta::gauge(const std::string& name) const {
  const auto it = later_.gauges.find(name);
  return it == later_.gauges.end() ? 0.0 : it->second;
}

double MetricsDelta::histogram_count_delta(const std::string& name) const {
  const auto it = later_.histograms.find(name);
  if (it == later_.histograms.end()) return 0.0;
  const auto prev = earlier_.histograms.find(name);
  const double before = prev == earlier_.histograms.end() ? 0.0 : prev->second.count;
  return std::max(0.0, it->second.count - before);
}

double MetricsDelta::histogram_quantile(const std::string& name, double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto it = later_.histograms.find(name);
  if (it == later_.histograms.end()) return 0.0;
  const MetricsSnapshot::Histogram& now = it->second;
  const auto prev_it = earlier_.histograms.find(name);
  const MetricsSnapshot::Histogram* before =
      prev_it == earlier_.histograms.end() ? nullptr : &prev_it->second;

  // Per-bucket counts recorded during the interval: difference of the
  // two cumulative curves, matched by bucket index when the layouts
  // agree (same registry / same scrape target) and treated as growth
  // from zero otherwise.
  std::vector<double> in_bucket(now.cumulative.size(), 0.0);
  double total = 0.0;
  double prev_cum_now = 0.0;
  double prev_cum_before = 0.0;
  const bool aligned = before != nullptr && before->cumulative.size() == now.cumulative.size();
  for (std::size_t i = 0; i < now.cumulative.size(); ++i) {
    const double cum_now = now.cumulative[i].second;
    const double cum_before = aligned ? before->cumulative[i].second : 0.0;
    in_bucket[i] = std::max(0.0, (cum_now - prev_cum_now) - (cum_before - prev_cum_before));
    total += in_bucket[i];
    prev_cum_now = cum_now;
    prev_cum_before = cum_before;
  }
  if (total <= 0.0) return 0.0;

  const double rank = q * total;
  double cumulative = 0.0;
  double last_finite = 0.0;
  for (std::size_t i = 0; i < in_bucket.size(); ++i) {
    const double hi = now.cumulative[i].first;
    if (std::isfinite(hi)) last_finite = hi;
    if (in_bucket[i] <= 0.0) continue;
    const double next = cumulative + in_bucket[i];
    if (rank <= next) {
      if (!std::isfinite(hi)) return last_finite;  // overflow bucket: report the last bound
      const double lo = i == 0 ? 0.0 : now.cumulative[i - 1].first;
      const double within = (rank - cumulative) / in_bucket[i];
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return last_finite;
}

MetricsRegistry& metrics() {
  // Deliberately leaked (still reachable through this pointer): pool
  // workers may record into instruments while static destructors run, so
  // the registry must never be torn down before them.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace misuse

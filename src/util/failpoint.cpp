#include "util/failpoint.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace misuse::failpoints {

namespace {

enum class PolicyKind { kOff, kAlways, kNth, kEvery, kProb };

struct Site {
  PolicyKind kind = PolicyKind::kOff;
  std::uint64_t n = 0;          // nth / every parameter
  double probability = 0.0;     // prob parameter
  std::uint64_t seed = 0;       // prob rng stream seed
  std::uint64_t hits = 0;
  std::uint64_t triggered = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
  bool env_loaded = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: evaluated from destructors
  return *r;
}

bool parse_policy(const std::string& policy, Site& site) {
  const auto parts = split(policy, ':');
  if (parts.empty()) return false;
  const std::string& kind = parts[0];
  try {
    if (kind == "off" && parts.size() == 1) {
      site.kind = PolicyKind::kOff;
    } else if (kind == "always" && parts.size() == 1) {
      site.kind = PolicyKind::kAlways;
    } else if (kind == "nth" && parts.size() == 2) {
      site.kind = PolicyKind::kNth;
      site.n = std::stoull(parts[1]);
      if (site.n == 0) return false;
    } else if (kind == "every" && parts.size() == 2) {
      site.kind = PolicyKind::kEvery;
      site.n = std::stoull(parts[1]);
      if (site.n == 0) return false;
    } else if (kind == "prob" && (parts.size() == 2 || parts.size() == 3)) {
      site.kind = PolicyKind::kProb;
      site.probability = std::stod(parts[1]);
      site.seed = parts.size() == 3 ? std::stoull(parts[2]) : 0;
      if (site.probability < 0.0 || site.probability > 1.0) return false;
    } else {
      return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

void configure_locked(Registry& r, const std::string& spec) {
  r.sites.clear();
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    const std::string site = entry.substr(0, eq);
    const std::string policy = eq == std::string::npos ? "always" : entry.substr(eq + 1);
    Site parsed;
    if (site.empty() || !parse_policy(policy, parsed)) {
      log_warn() << "ignoring malformed failpoint spec entry '" << entry << "'";
      continue;
    }
    r.sites[site] = parsed;
  }
}

void ensure_env_loaded(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  if (const char* env = std::getenv("MISUSEDET_FAILPOINTS"); env != nullptr && *env != '\0') {
    configure_locked(r, env);
    log_info() << "failpoints active: " << env;
  }
}

}  // namespace

bool compiled_in() {
#if defined(MISUSEDET_FAILPOINTS_ENABLED) && MISUSEDET_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

bool evaluate(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ensure_env_loaded(r);
  const auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  const std::uint64_t hit = ++s.hits;
  bool fire = false;
  switch (s.kind) {
    case PolicyKind::kOff: break;
    case PolicyKind::kAlways: fire = true; break;
    case PolicyKind::kNth: fire = hit == s.n; break;
    case PolicyKind::kEvery: fire = hit % s.n == 0; break;
    case PolicyKind::kProb: {
      // One private stream per hit: the decision for hit i is a pure
      // function of (seed, i), independent of thread interleaving.
      Rng rng = Rng::stream(s.seed, hit);
      fire = rng.bernoulli(s.probability);
      break;
    }
  }
  if (fire) {
    ++s.triggered;
    log_debug() << "failpoint '" << site << "' fired (hit " << hit << ")";
  }
  return fire;
}

void configure(const std::string& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.env_loaded = true;  // explicit configuration overrides the environment
  configure_locked(r, spec);
}

bool set(const std::string& site, const std::string& policy) {
  Site parsed;
  if (site.empty() || !parse_policy(policy, parsed)) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.env_loaded = true;
  r.sites[site] = parsed;
  return true;
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.env_loaded = true;
  r.sites.clear();
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t triggered(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.triggered;
}

}  // namespace misuse::failpoints

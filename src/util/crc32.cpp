#include "util/crc32.hpp"

#include <array>

namespace misuse {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = table();
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < size; ++i) {
    c = t[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace misuse

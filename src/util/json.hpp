// Minimal JSON *writer* used to export the visual-interface artifacts
// (topic projection coordinates, topic-action matrix, chord weights) so an
// external UI can render the interactive views the paper's experts used.
// We only ever emit JSON, never parse it, so this is a streaming writer
// with structural validation rather than a DOM.
#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace misuse {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter() { assert(stack_.empty() && "unclosed JSON containers"); }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Introduces "key": inside an object; must be followed by a value.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(std::size_t v) { value(static_cast<long long>(v)); }
  void value(bool v);
  void null();

  /// key + value in one call.
  template <typename T>
  void member(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

  /// Emits a numeric array in one call.
  void number_array(std::string_view name, const std::vector<double>& xs);

  /// Emits pre-rendered JSON verbatim as the next value. The caller
  /// guarantees `json` is one well-formed JSON value (used to splice
  /// producer-rendered trace-event args without re-parsing them).
  void raw_value(std::string_view json);

 private:
  enum class Frame { kObjectAwaitKey, kObjectAwaitValue, kArray };

  void before_value();
  void write_escaped(std::string_view s);

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;
};

}  // namespace misuse

// Aligned text tables. Every bench binary prints the paper's figure/table
// as rows through this class so the terminal output is readable and the
// CSV export is trivially diffable against results/ archives.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace misuse {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Pretty-prints with column alignment and a separator rule.
  void print(std::ostream& out) const;

  /// Writes RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  void write_csv(std::ostream& out) const;
  /// Writes CSV to a file path, creating parent directories if needed.
  void write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace misuse

#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace misuse {

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kArray) {
    if (!first_.back()) out_ << ',';
    first_.back() = false;
  } else if (stack_.back() == Frame::kObjectAwaitValue) {
    stack_.back() = Frame::kObjectAwaitKey;
  } else {
    assert(false && "value emitted where a key was expected");
  }
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::kObjectAwaitKey);
  first_.push_back(true);
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::kObjectAwaitKey);
  stack_.pop_back();
  first_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  stack_.pop_back();
  first_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back() == Frame::kObjectAwaitKey);
  if (!first_.back()) out_ << ',';
  first_.back() = false;
  write_escaped(name);
  out_ << ':';
  stack_.back() = Frame::kObjectAwaitValue;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; emit null so downstream tooling fails loudly
    // instead of silently mis-parsing.
    out_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ << buf;
}

void JsonWriter::value(long long v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw_value(std::string_view json) {
  before_value();
  out_ << json;
}

void JsonWriter::number_array(std::string_view name, const std::vector<double>& xs) {
  key(name);
  begin_array();
  for (double x : xs) value(x);
  end_array();
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace misuse

// Binary serialization for model persistence (trained pipelines can be
// saved after the training phase and reloaded by the online monitor, as
// the paper's deployment diagram in Fig. 2 implies). Little-endian,
// length-prefixed, with a magic/version header per archive.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace misuse {

/// Thrown on malformed/truncated archives and version mismatches.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void write_magic(std::uint32_t magic, std::uint32_t version);

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write(T value) {
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void write_string(const std::string& s);

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write_vector(std::span<const T> v) {
    write<std::uint64_t>(v.size());
    if (!v.empty()) {
      out_.write(reinterpret_cast<const char*>(v.data()),
                 static_cast<std::streamsize>(v.size() * sizeof(T)));
    }
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write_vector(const std::vector<T>& v) {
    write_vector(std::span<const T>(v));
  }

  void write_string_vector(const std::vector<std::string>& v);

 private:
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  /// Checks magic and returns the archive version; throws on mismatch.
  std::uint32_t read_magic(std::uint32_t expected_magic);

  template <typename T>
    requires std::is_arithmetic_v<T>
  T read() {
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_) throw SerializeError("truncated archive while reading scalar");
    return value;
  }

  std::string read_string();

  template <typename T>
    requires std::is_arithmetic_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    if (n > (1ULL << 34) / sizeof(T)) throw SerializeError("implausible vector length");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      in_.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(T)));
      if (!in_) throw SerializeError("truncated archive while reading vector");
    }
    return v;
  }

  std::vector<std::string> read_string_vector();

 private:
  std::istream& in_;
};

}  // namespace misuse

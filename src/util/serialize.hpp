// Binary serialization for model persistence (trained pipelines can be
// saved after the training phase and reloaded by the online monitor, as
// the paper's deployment diagram in Fig. 2 implies). Little-endian,
// length-prefixed, with a magic/version header per archive.
//
// Integrity: both endpoints can accumulate a running CRC-32 over the
// bytes they move (begin_crc()/crc()), which the detector archive uses
// for its whole-file footer and per-model section checksums — truncation
// and bit-rot are then detected at load instead of surfacing as NaN
// scores downstream (see core/detector.cpp and DESIGN.md "Fault
// tolerance").
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/crc32.hpp"

namespace misuse {

/// Thrown on malformed/truncated archives and version mismatches.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void write_magic(std::uint32_t magic, std::uint32_t version);

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write(T value) {
    write_bytes(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void write_string(const std::string& s);

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write_vector(std::span<const T> v) {
    write<std::uint64_t>(v.size());
    if (!v.empty()) {
      write_bytes(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
    }
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  void write_vector(const std::vector<T>& v) {
    write_vector(std::span<const T>(v));
  }

  void write_string_vector(const std::vector<std::string>& v);

  /// Raw bytes with no length prefix (the caller frames them — used for
  /// the CRC'd model sections of the detector archive).
  void write_raw(const std::string& bytes) { write_bytes(bytes.data(), bytes.size()); }

  /// Starts (or restarts) CRC accumulation over subsequently written
  /// bytes. crc() reads the running value without disturbing it.
  void begin_crc() {
    crc_.reset();
    crc_enabled_ = true;
  }
  std::uint32_t crc() const { return crc_.value(); }

 private:
  void write_bytes(const char* data, std::size_t size) {
    out_.write(data, static_cast<std::streamsize>(size));
    if (crc_enabled_) crc_.update(data, size);
  }

  std::ostream& out_;
  Crc32 crc_;
  bool crc_enabled_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  /// Checks magic and returns the archive version; throws on mismatch.
  std::uint32_t read_magic(std::uint32_t expected_magic);

  template <typename T>
    requires std::is_arithmetic_v<T>
  T read() {
    T value{};
    read_bytes(reinterpret_cast<char*>(&value), sizeof(T), "scalar");
    return value;
  }

  std::string read_string();

  template <typename T>
    requires std::is_arithmetic_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    if (n > (1ULL << 34) / sizeof(T)) throw SerializeError("implausible vector length");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      read_bytes(reinterpret_cast<char*>(v.data()), static_cast<std::size_t>(n) * sizeof(T),
                 "vector");
    }
    return v;
  }

  std::vector<std::string> read_string_vector();

  /// Exactly `n` raw bytes (no length prefix); throws on truncation.
  std::string read_raw(std::size_t n) {
    std::string s(n, '\0');
    if (n > 0) read_bytes(s.data(), n, "raw bytes");
    return s;
  }

  /// Starts (or restarts) CRC accumulation over subsequently read bytes.
  void begin_crc() {
    crc_.reset();
    crc_enabled_ = true;
  }
  std::uint32_t crc() const { return crc_.value(); }

 private:
  void read_bytes(char* data, std::size_t size, const char* what) {
    in_.read(data, static_cast<std::streamsize>(size));
    if (!in_) throw SerializeError(std::string("truncated archive while reading ") + what);
    if (crc_enabled_) crc_.update(data, size);
  }

  std::istream& in_;
  Crc32 crc_;
  bool crc_enabled_ = false;
};

}  // namespace misuse

#include "util/serialize.hpp"

namespace misuse {

void BinaryWriter::write_magic(std::uint32_t magic, std::uint32_t version) {
  write<std::uint32_t>(magic);
  write<std::uint32_t>(version);
}

void BinaryWriter::write_string(const std::string& s) {
  write<std::uint64_t>(s.size());
  if (!s.empty()) write_bytes(s.data(), s.size());
}

void BinaryWriter::write_string_vector(const std::vector<std::string>& v) {
  write<std::uint64_t>(v.size());
  for (const auto& s : v) write_string(s);
}

std::uint32_t BinaryReader::read_magic(std::uint32_t expected_magic) {
  const auto magic = read<std::uint32_t>();
  if (magic != expected_magic) throw SerializeError("bad archive magic");
  return read<std::uint32_t>();
}

std::string BinaryReader::read_string() {
  const auto n = read<std::uint64_t>();
  if (n > (1ULL << 30)) throw SerializeError("implausible string length");
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) read_bytes(s.data(), static_cast<std::size_t>(n), "string");
  return s;
}

std::vector<std::string> BinaryReader::read_string_vector() {
  const auto n = read<std::uint64_t>();
  if (n > (1ULL << 28)) throw SerializeError("implausible string-vector length");
  std::vector<std::string> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_string());
  return v;
}

}  // namespace misuse

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for integrity checking of
// persisted state: the detector-archive footer and per-model sections
// (core/detector.cpp), WAL record framing, and session-table snapshots
// (serve/wal.cpp). Software table-driven implementation — these paths
// checksum kilobytes on load/append, never per-event hot loops, so
// portability beats hardware CRC instructions here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace misuse {

/// Incremental CRC-32. Feed bytes in any chunking; value() is the
/// standard (reflected, final-xor) checksum of everything fed so far.
class Crc32 {
 public:
  void update(const void* data, std::size_t size);
  void update(std::string_view bytes) { update(bytes.data(), bytes.size()); }

  std::uint32_t value() const { return state_ ^ 0xffffffffu; }
  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience over a contiguous buffer.
std::uint32_t crc32(const void* data, std::size_t size);
inline std::uint32_t crc32(std::string_view bytes) { return crc32(bytes.data(), bytes.size()); }

}  // namespace misuse

#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace misuse {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_value(xs);
  s.p25 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.p75 = percentile(xs, 75.0);
  s.p98 = percentile(xs, 98.0);
  s.max = max_value(xs);
  return s;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) t += c;
  return t;
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

std::size_t Histogram::bin_of(double x) const {
  assert(!counts.empty());
  if (x <= lo) return 0;
  if (x >= hi) return counts.size() - 1;
  const auto i = static_cast<std::size_t>((x - lo) / bin_width());
  return std::min(i, counts.size() - 1);
}

double Histogram::bin_lo(std::size_t i) const { return lo + static_cast<double>(i) * bin_width(); }

Histogram make_histogram(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  assert(hi > lo);
  assert(bins > 0);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  for (double x : xs) ++h.counts[h.bin_of(x)];
  return h;
}

std::string render_histogram(const Histogram& h, std::size_t bar_width) {
  std::ostringstream out;
  std::size_t peak = 0;
  for (std::size_t c : h.counts) peak = std::max(peak, c);
  if (peak == 0) peak = 1;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double b_lo = h.bin_lo(i);
    const double b_hi = b_lo + h.bin_width();
    const std::size_t len = h.counts[i] * bar_width / peak;
    out << "[" << static_cast<long long>(b_lo) << ", " << static_cast<long long>(b_hi) << ")\t"
        << h.counts[i] << "\t" << std::string(len, '#') << "\n";
  }
  return out.str();
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace misuse

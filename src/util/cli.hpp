// Tiny command-line flag parser used by every bench/example binary.
// Supported syntax: --key=value, --key value, and boolean --flag /
// --no-flag. Unknown flags are collected so binaries can reject typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace misuse {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True when --name or --name=<truthy> was passed.
  bool flag(const std::string& name, bool default_value = false) const;

  std::string str(const std::string& name, const std::string& default_value = "") const;
  std::int64_t integer(const std::string& name, std::int64_t default_value) const;
  double real(const std::string& name, double default_value) const;

  bool has(const std::string& name) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Flags present on the command line, for --help/typo reporting.
  std::vector<std::string> keys() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace misuse

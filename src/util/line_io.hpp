// Line-oriented IO helpers for the streaming serving path: a buffered
// line reader over any std::istream (stdin or a socket stream) and a
// parser for *flat* single-line JSON objects — the NDJSON event format
// the scoring server consumes. We deliberately do not grow a general
// JSON DOM: events are one-level objects of strings/numbers/bools, and
// rejecting nesting keeps the parser small enough to audit and fast
// enough for the per-event hot path.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace misuse {

/// Reads '\n'-terminated lines, stripping the trailing '\n' and any '\r'
/// before it (NDJSON producers on Windows emit CRLF). The terminator —
/// "\n" or "\r\n" — never counts toward the size cap, so CRLF input
/// parses identically to LF input at every line length. A final
/// unterminated line is still returned (a trailing '\r' at EOF is
/// stripped). Lines longer than `max_line_bytes` abort the stream
/// (next() returns false and truncated() reports why): an unbounded line
/// is either a protocol violation or an attack on the server's memory,
/// never a valid event.
class LineReader {
 public:
  explicit LineReader(std::istream& in, std::size_t max_line_bytes = 1 << 20)
      : in_(in), max_line_bytes_(max_line_bytes) {}

  /// Fills `line` with the next line; returns false on EOF or overflow.
  bool next(std::string& line);

  /// True when the stream was abandoned because a line exceeded the cap.
  bool truncated() const { return truncated_; }

  /// Lines returned so far (1-based index of the last returned line).
  std::uint64_t lines_read() const { return lines_read_; }

 private:
  std::istream& in_;
  std::size_t max_line_bytes_;
  std::uint64_t lines_read_ = 0;
  bool truncated_ = false;
};

/// One member of a flat JSON object. For string values, `value` holds the
/// unescaped text; for numbers/booleans/null it holds the raw token
/// ("12.5", "true", "null").
struct JsonField {
  std::string key;
  std::string value;
  bool is_string = false;
};

/// Parses a single-line flat JSON object ({"k": "v", "n": 1, ...}) into
/// fields. Returns false and sets `error` on malformed input or on nested
/// arrays/objects. Duplicate keys are kept in order (lookup returns the
/// first).
bool parse_flat_json(std::string_view line, std::vector<JsonField>& fields, std::string& error);

/// First field with the given key, or nullptr.
const JsonField* find_field(const std::vector<JsonField>& fields, std::string_view key);

/// Typed accessors over a parsed field list. A missing key yields
/// nullopt; a present key with the wrong shape (e.g. get_number on a
/// string that is not numeric) also yields nullopt.
std::optional<std::string> get_string(const std::vector<JsonField>& fields, std::string_view key);
std::optional<double> get_number(const std::vector<JsonField>& fields, std::string_view key);

}  // namespace misuse

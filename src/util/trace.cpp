#include "util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace misuse {

namespace trace_detail {

struct TraceNode {
  std::string name;
  TraceNode* parent = nullptr;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_nanos{0};
  std::atomic<std::uint64_t> min_nanos{UINT64_MAX};
  std::atomic<std::uint64_t> max_nanos{0};
  // Structure (children) is guarded by g_tree_mutex; nodes are never
  // removed, so raw pointers into the tree stay valid for the process
  // lifetime.
  std::vector<std::unique_ptr<TraceNode>> children;
};

namespace {

std::mutex g_tree_mutex;

TraceNode* root() {
  // Leaked on purpose (reachable): worker threads may close spans while
  // static destructors run.
  static TraceNode* node = [] {
    auto* n = new TraceNode();
    n->name = "run";
    return n;
  }();
  return node;
}

thread_local TraceNode* t_current = nullptr;

TraceNode* child_of(TraceNode* parent, std::string_view name) {
  std::lock_guard<std::mutex> lock(g_tree_mutex);
  for (const auto& child : parent->children) {
    if (child->name == name) return child.get();
  }
  auto node = std::make_unique<TraceNode>();
  node->name = std::string(name);
  node->parent = parent;
  parent->children.push_back(std::move(node));
  return parent->children.back().get();
}

void record(TraceNode* node, double seconds) {
  const auto nanos = static_cast<std::uint64_t>(seconds * 1e9);
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_nanos.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = node->min_nanos.load(std::memory_order_relaxed);
  while (nanos < seen && !node->min_nanos.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
  seen = node->max_nanos.load(std::memory_order_relaxed);
  while (nanos > seen && !node->max_nanos.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

void reset_stats(TraceNode* node) {
  node->count.store(0, std::memory_order_relaxed);
  node->total_nanos.store(0, std::memory_order_relaxed);
  node->min_nanos.store(UINT64_MAX, std::memory_order_relaxed);
  node->max_nanos.store(0, std::memory_order_relaxed);
  for (const auto& child : node->children) reset_stats(child.get());
}

TraceStats snapshot_node(const TraceNode* node) {
  TraceStats out;
  out.name = node->name;
  out.count = node->count.load(std::memory_order_relaxed);
  out.total_seconds = static_cast<double>(node->total_nanos.load(std::memory_order_relaxed)) / 1e9;
  const std::uint64_t min_nanos = node->min_nanos.load(std::memory_order_relaxed);
  out.min_seconds = min_nanos == UINT64_MAX ? 0.0 : static_cast<double>(min_nanos) / 1e9;
  out.max_seconds = static_cast<double>(node->max_nanos.load(std::memory_order_relaxed)) / 1e9;
  out.children.reserve(node->children.size());
  for (const auto& child : node->children) out.children.push_back(snapshot_node(child.get()));
  // Creation order can differ between thread counts when sibling stages
  // first open inside pool workers; sort so exports are deterministic.
  std::sort(out.children.begin(), out.children.end(),
            [](const TraceStats& a, const TraceStats& b) { return a.name < b.name; });
  return out;
}

}  // namespace

TraceNode* current_node() { return t_current != nullptr ? t_current : root(); }

ContextGuard::ContextGuard(TraceNode* node) : saved_(t_current) { t_current = node; }

ContextGuard::~ContextGuard() { t_current = saved_; }

}  // namespace trace_detail

using trace_detail::TraceNode;

Span::Span(std::string_view name)
    : node_(trace_detail::child_of(trace_detail::current_node(), name)),
      saved_(trace_detail::t_current) {
  trace_detail::t_current = node_;
}

double Span::stop() {
  if (!stopped_) {
    elapsed_ = timer_.seconds();
    stopped_ = true;
    trace_detail::record(node_, elapsed_);
    trace_detail::t_current = saved_;
  }
  return elapsed_;
}

Span::~Span() { stop(); }

TraceStats trace_snapshot() {
  std::lock_guard<std::mutex> lock(trace_detail::g_tree_mutex);
  return trace_detail::snapshot_node(trace_detail::root());
}

const TraceStats* find_span(const TraceStats& root, std::string_view name) {
  if (root.name == name) return &root;
  for (const TraceStats& child : root.children) {
    if (const TraceStats* found = find_span(child, name)) return found;
  }
  return nullptr;
}

void trace_ensure_path(const std::vector<std::string_view>& path) {
  TraceNode* node = trace_detail::root();
  for (const std::string_view name : path) node = trace_detail::child_of(node, name);
}

void trace_reset() {
  std::lock_guard<std::mutex> lock(trace_detail::g_tree_mutex);
  trace_detail::reset_stats(trace_detail::root());
}

namespace {

void format_node(const TraceStats& node, std::size_t depth, std::string& out) {
  if (depth > 0) {  // the synthetic root carries no timing of its own
    char line[160];
    const std::string indent(2 * (depth - 1), ' ');
    if (node.count > 1) {
      std::snprintf(line, sizeof(line), "%s%-32s %6llu x %9.3fs  (min %.3fs max %.3fs)\n",
                    indent.c_str(), node.name.c_str(),
                    static_cast<unsigned long long>(node.count), node.total_seconds,
                    node.min_seconds, node.max_seconds);
    } else {
      std::snprintf(line, sizeof(line), "%s%-32s %6llu x %9.3fs\n", indent.c_str(),
                    node.name.c_str(), static_cast<unsigned long long>(node.count),
                    node.total_seconds);
    }
    out += line;
  }
  for (const TraceStats& child : node.children) format_node(child, depth + 1, out);
}

void write_node_json(JsonWriter& json, const TraceStats& node) {
  json.begin_object();
  json.member("name", node.name);
  json.member("count", node.count);
  json.member("total_seconds", node.total_seconds);
  json.member("min_seconds", node.min_seconds);
  json.member("max_seconds", node.max_seconds);
  json.key("children");
  json.begin_array();
  for (const TraceStats& child : node.children) write_node_json(json, child);
  json.end_array();
  json.end_object();
}

}  // namespace

std::string format_trace_tree(const TraceStats& root) {
  std::string out;
  format_node(root, 0, out);
  return out;
}

void write_trace_json(JsonWriter& json) { write_node_json(json, trace_snapshot()); }

// --- Sampled trace events ----------------------------------------------

std::uint64_t trace_now_nanos() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void TraceEventLog::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.resize(capacity_);
  head_ = 0;
  size_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceEventLog::disable() { enabled_.store(false, std::memory_order_relaxed); }

void TraceEventLog::record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;  // enable() never ran
  if (size_ == capacity_) {
    ring_[head_] = std::move(event);  // overwrite the oldest slot
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring_[(head_ + size_) % capacity_] = std::move(event);
  ++size_;
}

std::vector<TraceEvent> TraceEventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

std::size_t TraceEventLog::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceEventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  size_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
}

TraceEventLog& trace_events() {
  // Leaked like metrics(): producers may record during static teardown.
  static TraceEventLog* log = new TraceEventLog();
  return *log;
}

namespace {
// Stable small tid per distinct track name, in order of first appearance.
std::vector<std::pair<std::string, int>> assign_track_ids(const std::vector<TraceEvent>& events) {
  std::vector<std::pair<std::string, int>> tracks;
  for (const TraceEvent& e : events) {
    bool seen = false;
    for (const auto& [name, id] : tracks) {
      if (name == e.track) {
        seen = true;
        break;
      }
    }
    if (!seen) tracks.emplace_back(e.track, static_cast<int>(tracks.size()) + 1);
  }
  return tracks;
}

int track_id(const std::vector<std::pair<std::string, int>>& tracks, const std::string& name) {
  for (const auto& [track, id] : tracks) {
    if (track == name) return id;
  }
  return 0;
}
}  // namespace

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events) {
  JsonWriter json(out);
  const auto tracks = assign_track_ids(events);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  for (const auto& [name, id] : tracks) {
    json.begin_object();
    json.member("name", "thread_name");
    json.member("ph", "M");
    json.member("pid", 1);
    json.member("tid", id);
    json.key("args");
    json.begin_object();
    json.member("name", name);
    json.end_object();
    json.end_object();
  }
  for (const TraceEvent& e : events) {
    json.begin_object();
    json.member("name", e.name);
    json.member("ph", "X");
    json.member("pid", 1);
    json.member("tid", track_id(tracks, e.track));
    // Chrome traces use microsecond doubles; keep sub-us resolution.
    json.member("ts", static_cast<double>(e.start_nanos) / 1e3);
    json.member("dur", static_cast<double>(e.duration_nanos) / 1e3);
    if (!e.args.empty()) {
      json.key("args");
      json.raw_value("{" + e.args + "}");
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_trace_events_ndjson(std::ostream& out, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    std::ostringstream line;
    JsonWriter json(line);
    json.begin_object();
    json.member("name", e.name);
    json.member("track", e.track);
    json.member("start_nanos", e.start_nanos);
    json.member("duration_nanos", e.duration_nanos);
    json.end_object();
    std::string text = line.str();
    if (!e.args.empty()) {
      text.pop_back();  // strip the closing '}' to splice in the args
      text += ",";
      text += e.args;
      text += "}";
    }
    out << text << '\n';
  }
}

}  // namespace misuse

#include "util/table.hpp"

#include <cassert>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace misuse {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << " |\n";
  };
  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& out) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

void Table::write_csv_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  write_csv(out);
}

}  // namespace misuse

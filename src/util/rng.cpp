#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace misuse {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state; splitmix64 cannot emit
  // four zeros in a row, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<std::size_t>(x % n);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is bounded away from zero so log() is finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underflow in the subtraction chain: return the last
  // index with positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::size_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return static_cast<std::size_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t base_seed, std::uint64_t stream_id) {
  // Mix both words through separate splitmix64 chains before combining:
  // consecutive stream ids land in unrelated regions of the seed space,
  // and (base, id) pairs cannot collide by simple addition.
  std::uint64_t b = base_seed;
  std::uint64_t s = stream_id ^ 0x5851f42d4c957f2dULL;
  const std::uint64_t mixed_base = splitmix64(b);
  const std::uint64_t mixed_stream = splitmix64(s);
  return Rng(mixed_base ^ rotl(mixed_stream, 31));
}

}  // namespace misuse

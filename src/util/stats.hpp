// Descriptive statistics used throughout the evaluation: the paper
// characterizes its dataset via mean/percentile session lengths (Fig. 3)
// and reports per-cluster averages with variance bands (Figs. 4-12).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace misuse {

double mean(std::span<const double> xs);
/// Unbiased sample variance; 0 for fewer than two samples.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty xs.
double percentile(std::span<const double> xs, double p);

/// Summary of a sample, printable as one table row.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p98 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi] with the given number of bins;
/// values outside the range are clamped into the edge bins.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  std::size_t total() const;
  /// Bin index for a value (clamped).
  std::size_t bin_of(double x) const;
  double bin_width() const;
  /// Lower edge of bin i.
  double bin_lo(std::size_t i) const;
};

Histogram make_histogram(std::span<const double> xs, double lo, double hi, std::size_t bins);

/// Renders the histogram as rows of "low..high | count | bar" suitable for
/// terminal output (used by the Fig. 3 bench).
std::string render_histogram(const Histogram& h, std::size_t bar_width = 50);

/// Pearson correlation; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace misuse

// Small filesystem helpers shared by every durability layer (the serving
// WAL's snapshots/MANIFEST and the model registry's archives, metadata,
// and CURRENT pointer). The core primitive is the atomic publish idiom:
// write to `<path>.tmp`, fsync the bytes, rename over `path`, and fsync
// the parent directory so the rename itself survives a machine crash.
// Readers therefore observe either the old file or the complete new one,
// never a torn intermediate.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace misuse {

/// Atomically replaces `path` with `contents` (tmp + fsync + rename +
/// parent-dir fsync). Returns false on any I/O failure, leaving the old
/// file untouched. Failpoint "fsio.atomic_write" forces a failure.
bool write_file_atomic(const std::string& path, std::string_view contents);

/// Whole file as bytes; nullopt when the file is missing or unreadable.
std::optional<std::string> read_file(const std::string& path);

/// write(2) the full buffer with EINTR/partial-write retry.
bool write_fully(int fd, const char* data, std::size_t size);

/// fsync a directory so a rename inside it is durable. Best-effort:
/// returns false when the directory cannot be opened or synced.
bool fsync_dir(const std::string& dir);

}  // namespace misuse

// RAII trace spans aggregated into a process-global stage tree. A Span
// names the pipeline stage the current thread is executing; nested spans
// become children, and spans with the same name under the same parent
// aggregate (count, total/min/max wall seconds) instead of growing an
// event log — the tree is an instrument panel, not a profiler dump.
//
// Cross-thread semantics: ThreadPool propagates the submitting thread's
// open span to its workers (via TraceContextGuard), so a span opened
// inside a parallel_for body attaches under the span that issued the
// fan-out, and the per-thread trees merge into one stage hierarchy.
//
// Writing (span open/close) takes a global mutex only to resolve the
// child node once per span; the duration bookkeeping is relaxed atomics.
// Spans are therefore meant for stage-grained work (training phases,
// session replays), not per-action events — use a metrics Histogram
// (util/metrics.hpp) for those.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace misuse {

class JsonWriter;

namespace trace_detail {
struct TraceNode;

/// The calling thread's innermost open span node (the tree root when no
/// span is open). Exposed for ThreadPool's context propagation.
TraceNode* current_node();

/// Scoped adoption of another thread's span as this thread's context.
class ContextGuard {
 public:
  explicit ContextGuard(TraceNode* node);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceNode* saved_;
};
}  // namespace trace_detail

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now and returns its wall seconds; the destructor
  /// becomes a no-op. Repeated calls return the first result.
  double stop();

  /// Wall seconds since the span opened (without ending it) — the
  /// progress-logging replacement for the old ad-hoc Timer reads.
  double seconds() const { return stopped_ ? elapsed_ : timer_.seconds(); }

 private:
  trace_detail::TraceNode* node_;
  trace_detail::TraceNode* saved_;
  Timer timer_;
  double elapsed_ = 0.0;
  bool stopped_ = false;
};

/// Immutable copy of one aggregated tree node.
struct TraceStats {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::vector<TraceStats> children;  // name-sorted
};

/// Copies the whole tree (root is the synthetic "run" node).
TraceStats trace_snapshot();

/// Depth-first search by node name; nullptr when absent.
const TraceStats* find_span(const TraceStats& root, std::string_view name);

/// Pre-registers a root-to-leaf chain of span nodes so exports always
/// show the canonical stage skeleton (count 0 when a stage did not run).
void trace_ensure_path(const std::vector<std::string_view>& path);

/// Zeroes every node's statistics; the structure and any pointers held
/// by open spans stay valid. Call between benchmark rounds, not while
/// spans are concurrently closing.
void trace_reset();

/// Human-readable indented stage tree ("name  count x  total s ...").
std::string format_trace_tree(const TraceStats& root);

/// {"name": ..., "count": ..., "total_seconds": ..., "children": [...]}.
void write_trace_json(JsonWriter& json);

// --- Sampled trace events ----------------------------------------------
//
// The aggregated tree above deliberately has no per-event memory. For
// live debugging a serve node additionally records *sampled* discrete
// events (one per monitor step of a head-sampled session) into a
// bounded ring, exportable as Chrome trace-event JSON (chrome://tracing
// / Perfetto) or NDJSON while the process runs. Disabled by default:
// record() is one relaxed load when off.

/// Monotonic nanosecond clock shared by all trace events.
std::uint64_t trace_now_nanos();

/// One sampled event. `track` groups events into a display lane (the
/// session key on the serve path); `args` is either empty or the inner
/// body of a flat JSON object (`"k":1,"s":"v"`), pre-rendered by the
/// producer so recording never walks a structure.
struct TraceEvent {
  std::string name;
  std::string track;
  std::uint64_t start_nanos = 0;
  std::uint64_t duration_nanos = 0;
  std::string args;
};

/// Bounded mutex-guarded ring of sampled events. Overflow drops the
/// oldest event and counts it; snapshot() copies oldest-first.
class TraceEventLog {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Turns recording on with the given ring capacity (>= 1), clearing
  /// any previous contents.
  void enable(std::size_t capacity);
  void disable();

  void record(TraceEvent event);

  std::vector<TraceEvent> snapshot() const;
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t capacity() const;
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;  // oldest at `head_`
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// The process-global sampled-event ring (leaked like metrics()).
TraceEventLog& trace_events();

/// Chrome trace-event JSON: one complete ("ph":"X") event per entry,
/// microsecond timestamps, one numeric tid per distinct track with an
/// "M"/"thread_name" metadata record naming it.
void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events);

/// One flat JSON object per line: {"name":...,"track":...,
/// "start_nanos":...,"duration_nanos":...,<args...>}.
void write_trace_events_ndjson(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace misuse

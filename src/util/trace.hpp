// RAII trace spans aggregated into a process-global stage tree. A Span
// names the pipeline stage the current thread is executing; nested spans
// become children, and spans with the same name under the same parent
// aggregate (count, total/min/max wall seconds) instead of growing an
// event log — the tree is an instrument panel, not a profiler dump.
//
// Cross-thread semantics: ThreadPool propagates the submitting thread's
// open span to its workers (via TraceContextGuard), so a span opened
// inside a parallel_for body attaches under the span that issued the
// fan-out, and the per-thread trees merge into one stage hierarchy.
//
// Writing (span open/close) takes a global mutex only to resolve the
// child node once per span; the duration bookkeeping is relaxed atomics.
// Spans are therefore meant for stage-grained work (training phases,
// session replays), not per-action events — use a metrics Histogram
// (util/metrics.hpp) for those.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace misuse {

class JsonWriter;

namespace trace_detail {
struct TraceNode;

/// The calling thread's innermost open span node (the tree root when no
/// span is open). Exposed for ThreadPool's context propagation.
TraceNode* current_node();

/// Scoped adoption of another thread's span as this thread's context.
class ContextGuard {
 public:
  explicit ContextGuard(TraceNode* node);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceNode* saved_;
};
}  // namespace trace_detail

class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now and returns its wall seconds; the destructor
  /// becomes a no-op. Repeated calls return the first result.
  double stop();

  /// Wall seconds since the span opened (without ending it) — the
  /// progress-logging replacement for the old ad-hoc Timer reads.
  double seconds() const { return stopped_ ? elapsed_ : timer_.seconds(); }

 private:
  trace_detail::TraceNode* node_;
  trace_detail::TraceNode* saved_;
  Timer timer_;
  double elapsed_ = 0.0;
  bool stopped_ = false;
};

/// Immutable copy of one aggregated tree node.
struct TraceStats {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::vector<TraceStats> children;  // name-sorted
};

/// Copies the whole tree (root is the synthetic "run" node).
TraceStats trace_snapshot();

/// Depth-first search by node name; nullptr when absent.
const TraceStats* find_span(const TraceStats& root, std::string_view name);

/// Pre-registers a root-to-leaf chain of span nodes so exports always
/// show the canonical stage skeleton (count 0 when a stage did not run).
void trace_ensure_path(const std::vector<std::string_view>& path);

/// Zeroes every node's statistics; the structure and any pointers held
/// by open spans stay valid. Call between benchmark rounds, not while
/// spans are concurrently closing.
void trace_reset();

/// Human-readable indented stage tree ("name  count x  total s ...").
std::string format_trace_tree(const TraceStats& root);

/// {"name": ..., "count": ..., "total_seconds": ..., "children": [...]}.
void write_trace_json(JsonWriter& json);

}  // namespace misuse

// Process-global metrics registry: named counters, gauges, and
// fixed-bucket histograms for the pipeline's instrument panel. The hot
// path is lock-free — recording is a handful of relaxed atomic updates —
// while registration (name -> instrument lookup) takes a mutex and is
// meant to happen once per call site, not per event. Quantiles are
// estimated at read time from the bucket counts, so recording never
// sorts or allocates.
//
// Naming scheme (see DESIGN.md "Observability"): lowercase dot-separated
// paths, coarse-to-fine ("monitor.alarms", "pool.tasks_executed"), with
// a unit suffix on time-valued instruments ("_nanos", "_seconds").
//
// The global enabled flag (set_metrics_enabled) gates *recording* only:
// reads, registration, and trace spans (util/trace.hpp) stay live, so a
// benchmark can measure the instrumented-vs-bare cost of a hot path
// while still timing both sides with spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace misuse {

class JsonWriter;

/// Recording on/off switch (default on). Relaxed-atomic; safe to flip
/// from any thread, though mid-flight events may land on either side.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-set value plus its high-water mark (e.g. queue depth).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v);
  void add(std::int64_t delta);
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const { return high_water_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void reset();

 private:
  void raise_high_water(std::int64_t v);

  std::string name_;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// `count` upper bounds growing geometrically from `start` by `factor`.
std::vector<double> exponential_buckets(double start, double factor, std::size_t count);

/// Default bounds for latency-in-seconds histograms: 1us .. ~134s, x2.
const std::vector<double>& latency_buckets();

/// Fixed-bucket histogram. Bucket i counts values <= bounds[i] (first
/// matching bound wins); values above the last bound land in an overflow
/// bucket. Bounds are fixed at registration, so recording is one binary
/// search plus two relaxed atomic adds.
class HistogramMetric {
 public:
  HistogramMetric(std::string name, std::vector<double> bounds);
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void record(double value);

  std::uint64_t count() const;
  double sum() const;
  /// Linear-interpolated quantile estimate, q in [0, 1]. Returns 0 for an
  /// empty histogram; values in the overflow bucket report the last bound.
  double quantile(double q) const;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// bounds().size() regular buckets + 1 overflow bucket.
  std::size_t buckets() const { return bounds_.size() + 1; }
  void reset();

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Prometheus exposition name for a dotted instrument path: characters
/// outside [a-zA-Z0-9_:] become underscores and every family gets a
/// "misusedet_" prefix ("serve.step_seconds" -> "misusedet_serve_step_seconds").
std::string prometheus_name(std::string_view name);

/// Point-in-time copy of every instrument, stamped with a monotonic
/// clock so two snapshots taken seconds apart can be turned into
/// interval rates and quantiles (MetricsDelta). Snapshots are built
/// either from the local registry (MetricsRegistry::snapshot) or from
/// scraped Prometheus text (misusedet_top), so values are doubles and
/// names follow whichever naming scheme the source used.
struct MetricsSnapshot {
  struct Histogram {
    double count = 0.0;
    double sum = 0.0;
    /// (upper bound, cumulative count of values <= bound), ascending,
    /// with the +Inf bucket (bound == infinity) last.
    std::vector<std::pair<double, double>> cumulative;
  };

  double at_seconds = 0.0;  ///< steady-clock stamp, seconds
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

/// Difference between two snapshots of the same source. Counter deltas
/// are clamped at zero (a restarted scrape target resets to zero), and
/// histogram quantiles are interpolated from the bucket-count deltas,
/// so a 1 Hz poller reads "p99 over the last interval" rather than a
/// lifetime quantile that stops moving once the process has history.
class MetricsDelta {
 public:
  MetricsDelta(MetricsSnapshot earlier, MetricsSnapshot later);

  double seconds() const { return seconds_; }
  /// later - earlier, clamped at 0; 0 for names absent from `later`.
  double counter_delta(const std::string& name) const;
  /// counter_delta / seconds; 0 when the interval is empty.
  double rate(const std::string& name) const;
  /// Latest gauge value; 0 for unknown names.
  double gauge(const std::string& name) const;
  double histogram_count_delta(const std::string& name) const;
  /// Interval quantile (q in [0, 1]) interpolated from bucket deltas;
  /// 0 when nothing was recorded in the interval.
  double histogram_quantile(const std::string& name, double q) const;

 private:
  double seconds_ = 0.0;
  MetricsSnapshot earlier_;
  MetricsSnapshot later_;
};

/// Name -> instrument map. Lookups are mutex-guarded; hold the returned
/// reference at the call site (instruments live for the whole process,
/// reset() zeroes values but never invalidates references).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers with the given bounds on first sight; later calls return
  /// the existing histogram and ignore `bounds`.
  HistogramMetric& histogram(std::string_view name, const std::vector<double>& bounds = latency_buckets());

  /// Zeroes every instrument (tests/benchmarks); references stay valid.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// name-sorted members; histogram entries carry count/sum/mean,
  /// p50/p90/p99 estimates, and the non-empty buckets.
  void write_json(JsonWriter& json) const;

  /// Prometheus text exposition format (0.0.4): counters as
  /// `<name>_total`, gauges as the value plus a `_high_water` companion,
  /// histograms as cumulative `_bucket{le="..."}` / `_sum` / `_count`
  /// families plus a `<name>_summary` quantile family (p50/p90/p99).
  /// Each histogram renders from one consistent copy of its bucket
  /// counts, so cumulative counts are monotone and the `+Inf` bucket
  /// equals `_count` even while writers are recording.
  void write_prometheus(std::ostream& out) const;

  /// Consistent point-in-time copy of every instrument under the
  /// registry mutex, stamped with a steady-clock timestamp.
  MetricsSnapshot snapshot() const;

 private:
  template <typename T>
  using NameMap = std::vector<std::pair<std::string, std::unique_ptr<T>>>;  // sorted by name

  mutable std::mutex mutex_;
  NameMap<Counter> counters_;
  NameMap<Gauge> gauges_;
  NameMap<HistogramMetric> histograms_;
};

/// The process-global registry (never destroyed, so instruments outlive
/// worker threads that record into them during shutdown).
MetricsRegistry& metrics();

}  // namespace misuse

// Monotonic stopwatch — the internal clock primitive of the
// observability layer. Pipeline code should not time stages with a bare
// Timer: open a Span (util/trace.hpp) for stage-grained work or record
// into a Histogram (util/metrics.hpp) for per-event latencies, so every
// measurement lands on the shared instrument panel.
#pragma once

#include <chrono>

namespace misuse {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace misuse

// Minimal leveled logger for library and experiment diagnostics.
// Experiments print their results through util/table.hpp; the logger is
// for progress and warnings only, so it writes to stderr and stays out of
// the way of machine-readable stdout.
#pragma once

#include <sstream>
#include <string>

namespace misuse {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold (an atomic — worker threads log concurrently);
/// messages below it are discarded. Defaults to default_log_level().
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns kInfo on unknown input.
LogLevel parse_log_level(const std::string& name);

/// The startup threshold: MISUSEDET_LOG_LEVEL when set, else kInfo.
LogLevel default_log_level();

namespace detail {
void emit(LogLevel level, const std::string& message);

/// Small sequential id of the calling thread (0 = first thread to log),
/// stamped into every line so interleaved pool-worker output stays
/// attributable.
int thread_log_id();

class LogLine {
 public:
  LogLine(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) emit(level_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() {
  return {LogLevel::kDebug, log_level() <= LogLevel::kDebug};
}
inline detail::LogLine log_info() {
  return {LogLevel::kInfo, log_level() <= LogLevel::kInfo};
}
inline detail::LogLine log_warn() {
  return {LogLevel::kWarn, log_level() <= LogLevel::kWarn};
}
inline detail::LogLine log_error() {
  return {LogLevel::kError, log_level() <= LogLevel::kError};
}

}  // namespace misuse

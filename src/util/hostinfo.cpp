#include "util/hostinfo.hpp"

#include <fstream>
#include <thread>

#include "util/json.hpp"

namespace misuse {

namespace {

std::string trimmed(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

HostInfo probe() {
  HostInfo info;
  info.cores = static_cast<std::size_t>(std::thread::hardware_concurrency());
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while ((info.cpu_model.empty() || info.cpu_flags.empty()) && std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = trimmed(line.substr(0, colon));
    if (info.cpu_model.empty() && key == "model name") {
      info.cpu_model = trimmed(line.substr(colon + 1));
    } else if (info.cpu_flags.empty() && (key == "flags" || key == "Features")) {
      // "Features" is the aarch64 spelling of the ISA-extension line.
      info.cpu_flags = trimmed(line.substr(colon + 1));
    }
  }
  return info;
}

}  // namespace

const HostInfo& host_info() {
  static const HostInfo info = probe();
  return info;
}

void write_host_info(JsonWriter& json) {
  const HostInfo& info = host_info();
  json.key("host");
  json.begin_object();
  json.member("cores", info.cores);
  json.member("cpu_model", info.cpu_model);
  json.member("cpu_flags", info.cpu_flags);
  json.end_object();
}

}  // namespace misuse

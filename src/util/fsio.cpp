#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/failpoint.hpp"

namespace misuse {

bool write_fully(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool write_file_atomic(const std::string& path, std::string_view contents) {
  if (MISUSEDET_FAILPOINT("fsio.atomic_write")) return false;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool written = write_fully(fd, contents.data(), contents.size()) && ::fsync(fd) == 0;
  ::close(fd);
  if (!written) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable: without the directory sync a machine
  // crash can forget the new directory entry even though the data blocks
  // landed.
  const std::string parent = std::filesystem::path(path).parent_path().string();
  fsync_dir(parent.empty() ? "." : parent);
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

}  // namespace misuse

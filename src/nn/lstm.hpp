// Long Short-Term Memory layer (Hochreiter & Schmidhuber 1997) with
// hand-derived backpropagation through time.
//
// The paper feeds one-hot encoded actions straight into the LSTM, so the
// input-to-hidden product X_t * Wx reduces to selecting the token's row of
// Wx. The layer therefore consumes *token ids* per timestep; id kPadToken
// denotes the zero vector used for the paper's left-padding (such steps
// are still processed — only the input contribution vanishes — matching
// the windowing described in §IV-A).
//
// Gate layout inside the fused 4H dimension: [input i | forget f |
// candidate g | output o].
#pragma once

#include <cstdint>
#include <vector>

#include "nn/parameter.hpp"
#include "nn/recurrent.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse::nn {

/// Token id standing for the all-zero input vector (left padding).
inline constexpr int kPadToken = -1;

/// Recurrent state for streaming (online monitoring) use.
struct LstmState {
  Matrix h;  // batch x hidden
  Matrix c;  // batch x hidden

  LstmState() = default;
  LstmState(std::size_t batch, std::size_t hidden) : h(batch, hidden), c(batch, hidden) {}
  void reset() {
    h.zero();
    c.zero();
  }
};

class Lstm final : public RecurrentLayer {
 public:
  /// vocab = input one-hot dimension d; hidden = number of LSTM units.
  Lstm(std::size_t vocab, std::size_t hidden, Rng& rng);

  /// For deserialization.
  Lstm(std::size_t vocab, std::size_t hidden);

  std::size_t vocab() const { return vocab_; }
  std::size_t input_dim() const override { return vocab_; }
  std::size_t hidden() const override { return hidden_; }

  ParameterList params() override;

  /// Full-sequence forward over tokens[t][b] (T timesteps, batch B).
  /// Stores activations for backward(). Returns nothing; read hidden
  /// states via hidden_at().
  void forward(const std::vector<std::vector<int>>& tokens) override;

  /// Dense-input forward: inputs[t] is a (B x vocab) activation matrix —
  /// the stacked-layer path, where "vocab" is the lower layer's hidden
  /// width. Mutually exclusive with token forward for a given pass.
  void forward_dense(const std::vector<Matrix>& inputs) override;

  /// Hidden output h_t for timestep t of the last forward() (B x H).
  const Matrix& hidden_at(std::size_t t) const override { return steps_.at(t).h; }
  std::size_t steps() const override { return steps_.size(); }
  std::size_t batch() const override { return batch_; }

  /// BPTT. d_hidden[t] is dL/dh_t (B x H; may be zero for timesteps that
  /// feed no loss). Accumulates into parameter grads. When the last
  /// forward was dense and `d_inputs` is non-null, it is filled with
  /// dL/dinputs[t] for the layer below.
  void backward(const std::vector<Matrix>& d_hidden,
                std::vector<Matrix>* d_inputs = nullptr) override;

  /// Streaming single-batch step: consumes one token per batch row and
  /// advances state in place. No activation recording (inference only).
  void step(const std::vector<int>& tokens_b, LstmState& state) const override;

  /// Streaming dense-input step (stacked-layer path).
  void step_dense(const Matrix& input, LstmState& state) const override;

  /// Allocation-free step variants: the caller owns the gate scratch
  /// buffer and reuses it across steps (the monitor hot path).
  void step_scratch(const std::vector<int>& tokens_b, LstmState& state,
                    Matrix& gate_scratch) const override;
  void step_dense_scratch(const Matrix& input, LstmState& state,
                          Matrix& gate_scratch) const override;

  void save(BinaryWriter& w) const override;
  static Lstm load(BinaryReader& r);

  /// Read-only weight views for the inference engine's packer
  /// (nn/infer/packed.cpp): wx is vocab x 4H, wh is H x 4H, bias 1 x 4H.
  const Matrix& wx() const { return wx_.value; }
  const Matrix& wh() const { return wh_.value; }
  const Matrix& bias() const { return b_.value; }

 private:
  struct StepRecord {
    std::vector<int> tokens;  // B (token mode)
    Matrix dense_input;       // B x vocab (dense mode)
    Matrix gates;             // B x 4H, post-activation [i f g o]
    Matrix c;                 // B x H
    Matrix tanh_c;            // B x H
    Matrix h;                 // B x H
  };

  void compute_gates(const std::vector<int>& tokens_b, const Matrix& h_prev, Matrix& gates) const;
  void compute_gates_dense(const Matrix& input, const Matrix& h_prev, Matrix& gates) const;
  void forward_step(StepRecord& rec, const Matrix& c_prev);
  static void apply_gate_nonlinearities(Matrix& gates, std::size_t hidden);
  void finish_state_update(const Matrix& gates, LstmState& state) const;

  std::size_t vocab_;
  std::size_t hidden_;
  Parameter wx_;  // vocab x 4H — one-hot input weights (row per action)
  Parameter wh_;  // H x 4H — recurrent weights
  Parameter b_;   // 1 x 4H — bias (forget gate initialized to +1)
  std::vector<StepRecord> steps_;
  std::size_t batch_ = 0;
  bool dense_mode_ = false;
};

}  // namespace misuse::nn

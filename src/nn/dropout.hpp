// Inverted dropout (Srivastava et al. 2014). The paper places a dropout
// layer with rate 0.4 between the LSTM output and the dense softmax head.
// Inverted scaling (kept activations divided by the keep probability)
// makes inference a no-op, so train/infer paths share the dense head.
#pragma once

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace misuse::nn {

class Dropout {
 public:
  /// rate = probability of zeroing an activation; 0 disables the layer.
  explicit Dropout(float rate);

  float rate() const { return rate_; }

  /// Applies a fresh mask to x in place (training mode).
  void forward_train(Matrix& x, Rng& rng);

  /// Backward through the same mask.
  void backward(Matrix& d_x) const;

 private:
  float rate_;
  float keep_;
  Matrix mask_;
};

}  // namespace misuse::nn

#include "nn/dense.hpp"

#include <cassert>

#include "tensor/ops.hpp"

namespace misuse::nn {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng) : Dense(in_dim, out_dim) {
  w_.value.init_xavier(rng);
}

Dense::Dense(std::size_t in_dim, std::size_t out_dim)
    : w_("dense.w", in_dim, out_dim), b_("dense.b", 1, out_dim) {
  assert(in_dim > 0 && out_dim > 0);
}

ParameterList Dense::params() { return {&w_, &b_}; }

void Dense::forward(const Matrix& x, Matrix& y) {
  last_input_ = x;
  infer(x, y);
}

void Dense::infer(const Matrix& x, Matrix& y) const {
  assert(x.cols() == w_.value.rows());
  y.resize(x.rows(), w_.value.cols());
  gemm(1.0f, x, w_.value, 0.0f, y);
  add_row_broadcast(y, b_.value.row(0));
}

void Dense::backward(const Matrix& d_y, Matrix& d_x) {
  assert(d_y.rows() == last_input_.rows());
  assert(d_y.cols() == w_.value.cols());
  // dW += x^T * dY; db += column sums; dX = dY * W^T.
  gemm_at_b(1.0f, last_input_, d_y, 1.0f, w_.grad);
  Matrix col_sums(1, d_y.cols());
  sum_rows(d_y, col_sums.row(0));
  axpy(1.0f, col_sums.flat(), b_.grad.flat());
  d_x.resize(d_y.rows(), w_.value.rows());
  gemm_a_bt(1.0f, d_y, w_.value, 0.0f, d_x);
}

void Dense::save(BinaryWriter& w) const {
  w_.value.save(w);
  b_.value.save(w);
}

Dense Dense::load(BinaryReader& r) {
  Matrix w = Matrix::load(r);
  Matrix b = Matrix::load(r);
  Dense d(w.rows(), w.cols());
  if (b.rows() != 1 || b.cols() != w.cols()) throw SerializeError("dense archive shape mismatch");
  d.w_.value = std::move(w);
  d.b_.value = std::move(b);
  return d;
}

}  // namespace misuse::nn

#include "nn/parameter.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace misuse::nn {

std::size_t parameter_count(const ParameterList& params) {
  std::size_t n = 0;
  for (const auto* p : params) n += p->value.size();
  return n;
}

void zero_grads(const ParameterList& params) {
  for (auto* p : params) p->zero_grad();
}

float clip_grad_norm(const ParameterList& params, float max_norm) {
  double total = 0.0;
  for (const auto* p : params) total += static_cast<double>(squared_norm(p->grad.flat()));
  const auto norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float factor = max_norm / norm;
    for (auto* p : params) scale(p->grad.flat(), factor);
  }
  return norm;
}

}  // namespace misuse::nn

// Fused softmax + categorical cross-entropy head. The paper trains the
// dense softmax output with cross-entropy against the one-hot next
// action; fusing the two gives the numerically clean gradient
// dlogits = softmax(logits) - onehot(target).
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace misuse::nn {

struct XentResult {
  double total_loss = 0.0;  // summed over rows (natural log)
  std::size_t correct = 0;  // argmax == target count
  std::size_t rows = 0;

  double mean_loss() const { return rows == 0 ? 0.0 : total_loss / static_cast<double>(rows); }
  double accuracy() const {
    return rows == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(rows);
  }
};

/// Computes probabilities, loss and accuracy for logits (N x d) against
/// integer targets (length N, all in [0, d)), and writes dL/dlogits for
/// the *mean* loss over rows into d_logits.
XentResult softmax_xent_backward(const Matrix& logits, std::span<const int> targets,
                                 Matrix& d_logits);

/// Loss/accuracy only (no gradient); used for evaluation.
XentResult softmax_xent_eval(const Matrix& logits, std::span<const int> targets);

/// Probability of each target under softmax(logits), one per row. This is
/// the paper's per-action likelihood p_{a_i}.
std::vector<double> target_probabilities(const Matrix& logits, std::span<const int> targets);

}  // namespace misuse::nn

// Finite-difference gradient verification. Used by the test suite to
// certify the hand-derived LSTM/dense backward passes: for a sample of
// parameter coordinates, compares the analytic gradient against the
// central difference (L(w+e) - L(w-e)) / 2e.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "nn/parameter.hpp"
#include "util/rng.hpp"

namespace misuse::nn {

struct GradCheckReport {
  std::size_t checked = 0;
  std::size_t failures = 0;
  double worst_rel_error = 0.0;
  std::string worst_coordinate;  // "param[i,j]" of the worst mismatch

  bool ok() const { return failures == 0; }
};

struct GradCheckOptions {
  double epsilon = 1e-2;     // float32 models need a fairly large step
  double rel_tolerance = 8e-2;
  double abs_tolerance = 1e-4;  // below this both grads count as zero
  std::size_t samples_per_param = 24;
};

/// `loss` must recompute the scalar training loss for the current
/// parameter values *without* side effects on the gradients under test;
/// `grads` must already hold the analytic gradient of that same loss.
GradCheckReport check_gradients(const ParameterList& params,
                                const std::function<double()>& loss, Rng& rng,
                                const GradCheckOptions& options = {});

}  // namespace misuse::nn

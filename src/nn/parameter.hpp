// A trainable tensor: value + gradient accumulator. Layers expose their
// parameters as a flat list so optimizers and the gradient checker can
// treat any model uniformly.
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace misuse::nn {

struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter() = default;
  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  void zero_grad() { grad.zero(); }
};

using ParameterList = std::vector<Parameter*>;

/// Total number of scalar parameters.
std::size_t parameter_count(const ParameterList& params);

/// Zeroes every gradient.
void zero_grads(const ParameterList& params);

/// Global-norm gradient clipping (as used to stabilize LSTM training);
/// returns the pre-clip norm.
float clip_grad_norm(const ParameterList& params, float max_norm);

}  // namespace misuse::nn

#include "nn/gru.hpp"

#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace misuse::nn {

Gru::Gru(std::size_t vocab, std::size_t hidden, Rng& rng) : Gru(vocab, hidden) {
  wx_zr_.value.init_xavier(rng);
  wh_zr_.value.init_xavier(rng);
  wx_n_.value.init_xavier(rng);
  wh_n_.value.init_xavier(rng);
}

Gru::Gru(std::size_t vocab, std::size_t hidden)
    : vocab_(vocab),
      hidden_(hidden),
      wx_zr_("gru.wx_zr", vocab, 2 * hidden),
      wh_zr_("gru.wh_zr", hidden, 2 * hidden),
      b_zr_("gru.b_zr", 1, 2 * hidden),
      wx_n_("gru.wx_n", vocab, hidden),
      wh_n_("gru.wh_n", hidden, hidden),
      b_n_("gru.b_n", 1, hidden) {
  assert(vocab > 0 && hidden > 0);
}

ParameterList Gru::params() { return {&wx_zr_, &wh_zr_, &b_zr_, &wx_n_, &wh_n_, &b_n_}; }

void Gru::add_token_rows(const std::vector<int>& tokens, const Parameter& weights,
                         Matrix& out) const {
  assert(tokens.size() == out.rows());
  const std::size_t cols = weights.value.cols();
  for (std::size_t r = 0; r < tokens.size(); ++r) {
    const int tok = tokens[r];
    if (tok == kPadToken) continue;
    assert(tok >= 0 && static_cast<std::size_t>(tok) < vocab_);
    const float* wrow = weights.value.data() + static_cast<std::size_t>(tok) * cols;
    float* row = out.data() + r * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] += wrow[j];
  }
}

void Gru::compute_zr(const StepRecord& rec, const Matrix& h_prev, Matrix& zr) const {
  zr.resize(h_prev.rows(), 2 * hidden_);
  for (std::size_t r = 0; r < zr.rows(); ++r) {
    float* row = zr.data() + r * zr.cols();
    const float* bias = b_zr_.value.data();
    for (std::size_t j = 0; j < zr.cols(); ++j) row[j] = bias[j];
  }
  if (dense_mode_) {
    gemm(1.0f, rec.dense_input, wx_zr_.value, 1.0f, zr);
  } else {
    add_token_rows(rec.tokens, wx_zr_, zr);
  }
  gemm(1.0f, h_prev, wh_zr_.value, 1.0f, zr);
  sigmoid_inplace(zr.flat());
}

void Gru::compute_n(const StepRecord& rec, const Matrix& rh, Matrix& n) const {
  n.resize(rh.rows(), hidden_);
  for (std::size_t r = 0; r < n.rows(); ++r) {
    float* row = n.data() + r * hidden_;
    const float* bias = b_n_.value.data();
    for (std::size_t j = 0; j < hidden_; ++j) row[j] = bias[j];
  }
  if (dense_mode_) {
    gemm(1.0f, rec.dense_input, wx_n_.value, 1.0f, n);
  } else {
    add_token_rows(rec.tokens, wx_n_, n);
  }
  gemm(1.0f, rh, wh_n_.value, 1.0f, n);
  tanh_inplace(n.flat());
}

void Gru::run_forward() {
  Matrix h_prev(batch_, hidden_);
  for (auto& rec : steps_) {
    compute_zr(rec, h_prev, rec.zr);
    rec.rh.resize(batch_, hidden_);
    for (std::size_t r = 0; r < batch_; ++r) {
      const float* zr = rec.zr.data() + r * 2 * hidden_;
      const float* hp = h_prev.data() + r * hidden_;
      float* rh = rec.rh.data() + r * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) rh[j] = zr[hidden_ + j] * hp[j];
    }
    compute_n(rec, rec.rh, rec.n);
    rec.h.resize(batch_, hidden_);
    for (std::size_t r = 0; r < batch_; ++r) {
      const float* zr = rec.zr.data() + r * 2 * hidden_;
      const float* n = rec.n.data() + r * hidden_;
      const float* hp = h_prev.data() + r * hidden_;
      float* h = rec.h.data() + r * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        h[j] = (1.0f - zr[j]) * n[j] + zr[j] * hp[j];
      }
    }
    h_prev = rec.h;
  }
}

void Gru::forward(const std::vector<std::vector<int>>& tokens) {
  assert(!tokens.empty());
  batch_ = tokens.front().size();
  dense_mode_ = false;
  steps_.assign(tokens.size(), {});
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    assert(tokens[t].size() == batch_);
    steps_[t].tokens = tokens[t];
  }
  run_forward();
}

void Gru::forward_dense(const std::vector<Matrix>& inputs) {
  assert(!inputs.empty());
  batch_ = inputs.front().rows();
  dense_mode_ = true;
  steps_.assign(inputs.size(), {});
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    assert(inputs[t].rows() == batch_);
    steps_[t].dense_input = inputs[t];
  }
  run_forward();
}

void Gru::backward(const std::vector<Matrix>& d_hidden, std::vector<Matrix>* d_inputs) {
  assert(d_hidden.size() == steps_.size());
  assert(d_inputs == nullptr || dense_mode_);
  if (d_inputs != nullptr) d_inputs->assign(steps_.size(), Matrix(batch_, vocab_));

  Matrix dh(batch_, hidden_);            // dL/dh_t flowing backward
  Matrix dh_from_rec(batch_, hidden_);   // recurrent contribution to dh_{t-1}
  Matrix da_zr(batch_, 2 * hidden_);     // pre-activation gate grads
  Matrix da_n(batch_, hidden_);
  Matrix d_rh(batch_, hidden_);

  for (std::size_t ti = steps_.size(); ti > 0; --ti) {
    const std::size_t t = ti - 1;
    const StepRecord& rec = steps_[t];

    for (std::size_t i = 0; i < dh.size(); ++i) {
      dh.flat()[i] =
          d_hidden[t].flat()[i] + (ti == steps_.size() ? 0.0f : dh_from_rec.flat()[i]);
    }

    const Matrix* h_prev = (t == 0) ? nullptr : &steps_[t - 1].h;

    // Elementwise gate gradients.
    for (std::size_t r = 0; r < batch_; ++r) {
      const float* zr = rec.zr.data() + r * 2 * hidden_;
      const float* n = rec.n.data() + r * hidden_;
      const float* hp = h_prev ? h_prev->data() + r * hidden_ : nullptr;
      const float* dhr = dh.data() + r * hidden_;
      float* dzr = da_zr.data() + r * 2 * hidden_;
      float* dn = da_n.data() + r * hidden_;
      float* rec_grad = dh_from_rec.data() + r * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float z = zr[j];
        const float hp_j = hp ? hp[j] : 0.0f;
        const float d_z = dhr[j] * (hp_j - n[j]);
        const float d_n = dhr[j] * (1.0f - z);
        // Direct path h' = ... + z * h_prev.
        rec_grad[j] = dhr[j] * z;
        dzr[j] = d_z * z * (1.0f - z);               // update gate pre-act
        dn[j] = d_n * (1.0f - n[j] * n[j]);          // candidate pre-act
      }
    }

    // Candidate recurrent path: d_rh = da_n * Whn^T; then the reset gate.
    gemm_a_bt(1.0f, da_n, wh_n_.value, 0.0f, d_rh);
    for (std::size_t r = 0; r < batch_; ++r) {
      const float* zr = rec.zr.data() + r * 2 * hidden_;
      const float* hp = h_prev ? h_prev->data() + r * hidden_ : nullptr;
      const float* drh = d_rh.data() + r * hidden_;
      float* dzr = da_zr.data() + r * 2 * hidden_;
      float* rec_grad = dh_from_rec.data() + r * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float rg = zr[hidden_ + j];
        const float hp_j = hp ? hp[j] : 0.0f;
        const float d_r = drh[j] * hp_j;
        dzr[hidden_ + j] = d_r * rg * (1.0f - rg);   // reset gate pre-act
        rec_grad[j] += drh[j] * rg;                  // via rh = r * h_prev
      }
    }

    // Parameter gradients.
    if (h_prev != nullptr) {
      gemm_at_b(1.0f, *h_prev, da_zr, 1.0f, wh_zr_.grad);
    }
    gemm_at_b(1.0f, rec.rh, da_n, 1.0f, wh_n_.grad);
    for (std::size_t r = 0; r < batch_; ++r) {
      const float* dzr = da_zr.data() + r * 2 * hidden_;
      const float* dn = da_n.data() + r * hidden_;
      float* bzr = b_zr_.grad.data();
      float* bn = b_n_.grad.data();
      for (std::size_t j = 0; j < 2 * hidden_; ++j) bzr[j] += dzr[j];
      for (std::size_t j = 0; j < hidden_; ++j) bn[j] += dn[j];
    }
    if (dense_mode_) {
      gemm_at_b(1.0f, rec.dense_input, da_zr, 1.0f, wx_zr_.grad);
      gemm_at_b(1.0f, rec.dense_input, da_n, 1.0f, wx_n_.grad);
      if (d_inputs != nullptr) {
        gemm_a_bt(1.0f, da_zr, wx_zr_.value, 0.0f, (*d_inputs)[t]);
        gemm_a_bt(1.0f, da_n, wx_n_.value, 1.0f, (*d_inputs)[t]);
      }
    } else {
      for (std::size_t r = 0; r < batch_; ++r) {
        const int tok = rec.tokens[r];
        if (tok == kPadToken) continue;
        float* wzr = wx_zr_.grad.data() + static_cast<std::size_t>(tok) * 2 * hidden_;
        float* wn = wx_n_.grad.data() + static_cast<std::size_t>(tok) * hidden_;
        const float* dzr = da_zr.data() + r * 2 * hidden_;
        const float* dn = da_n.data() + r * hidden_;
        for (std::size_t j = 0; j < 2 * hidden_; ++j) wzr[j] += dzr[j];
        for (std::size_t j = 0; j < hidden_; ++j) wn[j] += dn[j];
      }
    }

    // Recurrent input gradients through the zr pre-activations.
    if (t > 0) {
      gemm_a_bt(1.0f, da_zr, wh_zr_.value, 1.0f, dh_from_rec);
    }
  }
}

void Gru::step(const std::vector<int>& tokens_b, LstmState& state) const {
  // compute_zr/compute_n branch on dense_mode_, which reflects the last
  // *training* pass; the token step path is only valid for token-trained
  // layers (layer 0 without an embedding), where dense_mode_ is false.
  assert(!dense_mode_);
  StepRecord rec;
  rec.tokens = tokens_b;
  const std::size_t b = tokens_b.size();
  assert(state.h.rows() == b && state.h.cols() == hidden_);
  Matrix zr;
  compute_zr(rec, state.h, zr);
  Matrix rh(b, hidden_);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      rh(r, j) = zr(r, hidden_ + j) * state.h(r, j);
    }
  }
  Matrix n;
  compute_n(rec, rh, n);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      state.h(r, j) = (1.0f - zr(r, j)) * n(r, j) + zr(r, j) * state.h(r, j);
    }
  }
}

void Gru::step_dense(const Matrix& input, LstmState& state) const {
  StepRecord rec;
  rec.dense_input = input;
  const std::size_t b = input.rows();
  assert(state.h.rows() == b && state.h.cols() == hidden_);
  // compute_zr/compute_n consult dense_mode_; flip it temporarily via a
  // const-cast-free local copy is not possible, so the streaming dense
  // path recomputes inline.
  Matrix zr(b, 2 * hidden_);
  for (std::size_t r = 0; r < b; ++r) {
    float* row = zr.data() + r * 2 * hidden_;
    const float* bias = b_zr_.value.data();
    for (std::size_t j = 0; j < 2 * hidden_; ++j) row[j] = bias[j];
  }
  gemm(1.0f, input, wx_zr_.value, 1.0f, zr);
  gemm(1.0f, state.h, wh_zr_.value, 1.0f, zr);
  sigmoid_inplace(zr.flat());

  Matrix rh(b, hidden_);
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      rh(r, j) = zr(r, hidden_ + j) * state.h(r, j);
    }
  }
  Matrix n(b, hidden_);
  for (std::size_t r = 0; r < b; ++r) {
    float* row = n.data() + r * hidden_;
    const float* bias = b_n_.value.data();
    for (std::size_t j = 0; j < hidden_; ++j) row[j] = bias[j];
  }
  gemm(1.0f, input, wx_n_.value, 1.0f, n);
  gemm(1.0f, rh, wh_n_.value, 1.0f, n);
  tanh_inplace(n.flat());

  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t j = 0; j < hidden_; ++j) {
      state.h(r, j) = (1.0f - zr(r, j)) * n(r, j) + zr(r, j) * state.h(r, j);
    }
  }
}

void Gru::save(BinaryWriter& w) const {
  w.write<std::uint64_t>(vocab_);
  w.write<std::uint64_t>(hidden_);
  wx_zr_.value.save(w);
  wh_zr_.value.save(w);
  b_zr_.value.save(w);
  wx_n_.value.save(w);
  wh_n_.value.save(w);
  b_n_.value.save(w);
}

Gru Gru::load(BinaryReader& r) {
  const auto vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  const auto hidden = static_cast<std::size_t>(r.read<std::uint64_t>());
  Gru gru(vocab, hidden);
  gru.wx_zr_.value = Matrix::load(r);
  gru.wh_zr_.value = Matrix::load(r);
  gru.b_zr_.value = Matrix::load(r);
  gru.wx_n_.value = Matrix::load(r);
  gru.wh_n_.value = Matrix::load(r);
  gru.b_n_.value = Matrix::load(r);
  if (gru.wx_zr_.value.rows() != vocab || gru.wx_zr_.value.cols() != 2 * hidden ||
      gru.wh_n_.value.rows() != hidden || gru.b_n_.value.cols() != hidden) {
    throw SerializeError("GRU archive shape mismatch");
  }
  return gru;
}

}  // namespace misuse::nn

// Inference-only LSTM forward for the paper architecture (one token-input
// LSTM layer + dense softmax head — the shape every trained detector
// cluster uses). Weights are packed once at detector-load time
// (nn/infer/packed.hpp); per-step scoring then runs allocation-free
// through the kernel table selected by nn/infer/dispatch.hpp.
//
// Contract: with the scalar kernels, step()/step_batch() are bit-identical
// to NextActionModel::step_into on the same weights and state — proven by
// tests/test_infer.cpp — so every determinism guarantee (WAL replay, hot
// swap, server-vs-offline) survives the fast path. The avx2 kernels are
// ULP-bounded instead; quantized scoring additionally changes the weights
// and is gated by core/quant_gate.hpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "nn/infer/dispatch.hpp"
#include "nn/infer/packed.hpp"
#include "nn/infer/quant.hpp"

namespace misuse::nn {
class NextActionModel;
}

namespace misuse::nn::infer {

/// Streaming state of one session on the engine (h and c, length H).
struct EngineState {
  std::vector<float> h;
  std::vector<float> c;
  void reset() {
    std::fill(h.begin(), h.end(), 0.0f);
    std::fill(c.begin(), c.end(), 0.0f);
  }
};

/// Reusable per-caller scratch (one fused gate row).
struct EngineScratch {
  std::vector<float> gates;
  // Batch staging (step_batch's fused path): row pointers into states,
  // the shared gates buffer, and the callers' probability vectors.
  std::vector<float*> h_rows;
  std::vector<float*> gate_rows;
  std::vector<float*> logit_rows;
};

class LstmInferEngine {
 public:
  /// Packs the model's weights; returns null when the model is outside
  /// the supported shape (stacked layers, embeddings, or a non-LSTM
  /// cell fall back to the reference path).
  static std::unique_ptr<LstmInferEngine> build(const NextActionModel& model);

  std::size_t vocab() const { return packed_.vocab; }
  std::size_t hidden() const { return packed_.hidden; }
  const PackedLstm& packed() const { return packed_; }

  /// Attaches quantized weights loaded from a v3 archive (or freshly
  /// quantized). Shapes must match the packed float weights.
  void attach_quantized(QuantizedLstm quant);
  bool has_quantized() const { return quant_.kind != QuantKind::kNone; }
  const QuantizedLstm& quantized() const { return quant_; }

  EngineState make_state() const;

  /// Advances one session by one action; writes the softmax'd
  /// next-action distribution into probs (resized to vocab).
  /// use_quant requires has_quantized().
  void step(EngineState& state, int action, std::vector<float>& probs, EngineScratch& scratch,
            bool use_quant = false) const;

  /// Batched variant: states[i] advances on actions[i] into *probs[i].
  /// Rows are processed independently, so the result is bit-identical to
  /// n calls of step() in order, on every kernel.
  ///
  /// With defer_heads, the fused path advances every state but skips the
  /// head + softmax (most batch consumers only ever read one or two
  /// clusters' distributions; see OnlineMonitor); the probs vectors are
  /// then left untouched and the call returns true — recover any row
  /// later with finish_probs. Paths that cannot defer (sequential
  /// fallback, quantized) ignore the flag, fill probs, and return false.
  bool step_batch(std::span<EngineState* const> states, std::span<const int> actions,
                  std::span<std::vector<float>* const> probs, EngineScratch& scratch,
                  bool use_quant = false, bool defer_heads = false) const;

  /// Head + softmax only, from the state's current h (i.e. the
  /// distribution the last step() / step_batch() advance implies). With
  /// the scalar kernels this is the exact tail of step(), so a deferred
  /// batch step + finish_probs stays bit-identical to the eager step.
  void finish_probs(const EngineState& state, std::vector<float>& probs,
                    bool use_quant = false) const;

 private:
  explicit LstmInferEngine(PackedLstm packed) : packed_(std::move(packed)) {}

  PackedLstm packed_;
  QuantizedLstm quant_;
};

}  // namespace misuse::nn::infer

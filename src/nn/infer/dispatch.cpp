#include "nn/infer/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "nn/infer/kernels.hpp"

namespace misuse::nn::infer {

namespace {

InferMode env_default_mode() {
  const char* env = std::getenv("MISUSEDET_INFER");
  if (env != nullptr) {
    if (const auto mode = parse_infer_mode(env)) return *mode;
  }
  return InferMode::kAuto;
}

bool env_default_quant() {
  const char* env = std::getenv("MISUSEDET_QUANT");
  if (env == nullptr) return true;
  const std::string_view v(env);
  return !(v == "off" || v == "0" || v == "false");
}

std::atomic<InferMode>& mode_slot() {
  static std::atomic<InferMode> slot{env_default_mode()};
  return slot;
}

std::atomic<bool>& quant_slot() {
  static std::atomic<bool> slot{env_default_quant()};
  return slot;
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

}  // namespace

std::optional<InferMode> parse_infer_mode(std::string_view name) {
  if (name == "auto") return InferMode::kAuto;
  if (name == "scalar") return InferMode::kScalar;
  if (name == "avx2") return InferMode::kAvx2;
  if (name == "reference") return InferMode::kReference;
  return std::nullopt;
}

const char* infer_mode_name(InferMode mode) {
  switch (mode) {
    case InferMode::kAuto: return "auto";
    case InferMode::kScalar: return "scalar";
    case InferMode::kAvx2: return "avx2";
    case InferMode::kReference: return "reference";
  }
  return "?";
}

InferMode infer_mode() { return mode_slot().load(std::memory_order_relaxed); }

void set_infer_mode(InferMode mode) { mode_slot().store(mode, std::memory_order_relaxed); }

InferMode effective_infer_mode() {
  const InferMode mode = infer_mode();
  if (mode == InferMode::kAvx2 && !avx2_supported()) return InferMode::kScalar;
  if (mode != InferMode::kAuto) return mode;
  // auto = the fastest mode that keeps scoring bit-identical to the
  // reference forward. That is the scalar engine: the AVX2 kernels use
  // vectorized exp/tanh approximations (ULP-close, not equal), so they
  // stay strictly opt-in (--infer=avx2 / MISUSEDET_INFER=avx2) for
  // deployments that trade replay-exactness for throughput.
  return InferMode::kScalar;
}

bool avx2_supported() {
  static const bool supported = avx2_kernels() != nullptr && cpu_has_avx2();
  return supported;
}

bool quant_enabled() { return quant_slot().load(std::memory_order_relaxed); }

void set_quant_enabled(bool on) { quant_slot().store(on, std::memory_order_relaxed); }

}  // namespace misuse::nn::infer

#include "nn/infer/engine.hpp"

#include <cassert>

#include "nn/infer/kernels.hpp"
#include "nn/gate_math.hpp"
#include "nn/lstm.hpp"
#include "nn/next_action_model.hpp"
#include "tensor/ops.hpp"

namespace misuse::nn::infer {

namespace {

// --- Scalar kernel table ---------------------------------------------------
//
// Bit-identity contract: the scalar float kernels must produce exactly
// the bits of the reference forward (compute_gates / Dense::infer in
// nn/). That requires more than the same math — it requires the same
// LOOP SHAPE, because the compiler contracts a j-inner accumulation
// (`row[j] += hp * wrow[j]`, what gemm_rows compiles to) into per-element
// FMAs, while a transposed dot reduction (`acc += h[p] * wt[p]`) keeps
// mul and add as separate roundings. So the float kernels below replay
// gemm_rows' exact iteration order on the REFERENCE weight layouts
// (wh: H x 4H, head_w: H x V): seed with bias (+ the token's wx row),
// then per p ascending skip h[p] == 0.0f and accumulate h[p] * row into
// the output row. Identical expression shape on both sides means the
// compiler makes the same contraction choice for both, whatever the
// flags. The nonlinearities/cell update are the same inline helpers
// (nn/gate_math.hpp) the reference compiles.

void scalar_gates(const PackedLstm& w, const float* h, int token, float* gates) {
  const std::size_t hidden = w.hidden;
  const std::size_t g4 = 4 * hidden;
  const float* bias = w.bias.data();
  for (std::size_t j = 0; j < g4; ++j) gates[j] = bias[j];
  if (token != kPadToken) {
    assert(token >= 0 && static_cast<std::size_t>(token) < w.vocab);
    const float* wxrow = w.wx.data() + static_cast<std::size_t>(token) * g4;
    for (std::size_t j = 0; j < g4; ++j) gates[j] += wxrow[j];
  }
  for (std::size_t p = 0; p < hidden; ++p) {
    const float hp = h[p];
    if (hp == 0.0f) continue;  // matches gemm_rows' zero-skip
    const float* wrow = w.wh.data() + p * g4;
    for (std::size_t j = 0; j < g4; ++j) gates[j] += hp * wrow[j];
  }
}

void scalar_gates_quant(const QuantizedLstm& w, const float* h, int token, float* gates) {
  const std::size_t hidden = w.hidden;
  const std::size_t g4 = 4 * hidden;
  for (std::size_t j = 0; j < g4; ++j) {
    float acc = w.bias[j];
    if (token != kPadToken) {
      const std::size_t wx_at = static_cast<std::size_t>(token) * g4 + j;
      if (w.kind == QuantKind::kInt8) {
        acc += w.wx_scale[static_cast<std::size_t>(token)] * static_cast<float>(w.wx_q[wx_at]);
      } else {
        acc += half_to_float(w.wx_h[wx_at]);
      }
    }
    if (w.kind == QuantKind::kInt8) {
      const std::int8_t* qt = w.wh_t_q.data() + j * hidden;
      float dot = 0.0f;
      for (std::size_t p = 0; p < hidden; ++p) dot += h[p] * static_cast<float>(qt[p]);
      acc += w.wh_t_scale[j] * dot;
    } else {
      const std::uint16_t* wt = w.wh_t_h.data() + j * hidden;
      for (std::size_t p = 0; p < hidden; ++p) acc += h[p] * half_to_float(wt[p]);
    }
    gates[j] = acc;
  }
}

void scalar_activate_update(float* gates, std::size_t hidden, float* c, float* h) {
  lstm_activate_gates(gates, hidden);
  lstm_cell_update(gates, hidden, c, h);
}

void scalar_head(const PackedLstm& w, const float* h, float* logits) {
  const std::size_t hidden = w.hidden;
  const std::size_t n = w.head_out;
  for (std::size_t j = 0; j < n; ++j) logits[j] = 0.0f;  // Dense::infer gemm has beta == 0
  for (std::size_t p = 0; p < hidden; ++p) {
    const float hp = h[p];
    if (hp == 0.0f) continue;
    const float* wrow = w.head_w.data() + p * n;
    for (std::size_t j = 0; j < n; ++j) logits[j] += hp * wrow[j];
  }
  // Bias lands AFTER the full accumulation, as add_row_broadcast does.
  for (std::size_t j = 0; j < n; ++j) logits[j] += w.head_b[j];
}

void scalar_head_quant(const QuantizedLstm& w, const float* h, float* logits) {
  const std::size_t hidden = w.hidden;
  for (std::size_t j = 0; j < w.head_out; ++j) {
    float acc = 0.0f;
    if (w.kind == QuantKind::kInt8) {
      const std::int8_t* qt = w.head_w_q.data() + j * hidden;
      float dot = 0.0f;
      for (std::size_t p = 0; p < hidden; ++p) dot += h[p] * static_cast<float>(qt[p]);
      acc = w.head_w_scale[j] * dot;
    } else {
      const std::uint16_t* wt = w.head_w_h.data() + j * hidden;
      for (std::size_t p = 0; p < hidden; ++p) acc += h[p] * half_to_float(wt[p]);
    }
    logits[j] = acc + w.head_b[j];
  }
}

void scalar_softmax(const float* logits, std::size_t n, float* probs) {
  (void)softmax_row(std::span<const float>(logits, n), std::span<float>(probs, n));
}

const Kernels* select_kernels() {
  if (effective_infer_mode() == InferMode::kAvx2) {
    if (const Kernels* k = avx2_kernels(); k != nullptr) return k;
  }
  return scalar_kernels();
}

}  // namespace

const Kernels* scalar_kernels() {
  static const Kernels kernels = {
      &scalar_gates, &scalar_gates_quant, &scalar_activate_update, &scalar_head,
      &scalar_head_quant, &scalar_softmax, nullptr, nullptr,
  };
  return &kernels;
}

std::unique_ptr<LstmInferEngine> LstmInferEngine::build(const NextActionModel& model) {
  const ModelConfig& config = model.config();
  if (config.layers != 1 || config.embedding_dim != 0 || config.cell != CellKind::kLstm ||
      model.layer_count() != 1 || model.has_embedding()) {
    return nullptr;
  }
  const auto* cell = dynamic_cast<const Lstm*>(&model.layer(0));
  if (cell == nullptr) return nullptr;
  return std::unique_ptr<LstmInferEngine>(new LstmInferEngine(pack_lstm(*cell, model.head())));
}

void LstmInferEngine::attach_quantized(QuantizedLstm quant) {
  if (quant.vocab != packed_.vocab || quant.hidden != packed_.hidden ||
      quant.head_out != packed_.head_out) {
    throw SerializeError("quantized weights shape mismatch");
  }
  quant_ = std::move(quant);
}

EngineState LstmInferEngine::make_state() const {
  EngineState state;
  state.h.assign(packed_.hidden, 0.0f);
  state.c.assign(packed_.hidden, 0.0f);
  return state;
}

void LstmInferEngine::step(EngineState& state, int action, std::vector<float>& probs,
                           EngineScratch& scratch, bool use_quant) const {
  assert(!use_quant || has_quantized());
  const Kernels* k = select_kernels();
  scratch.gates.resize(4 * packed_.hidden);
  probs.resize(packed_.head_out);
  float* gates = scratch.gates.data();
  if (use_quant) {
    k->gates_quant(quant_, state.h.data(), action, gates);
  } else {
    k->gates(packed_, state.h.data(), action, gates);
  }
  k->activate_update(gates, packed_.hidden, state.c.data(), state.h.data());
  if (use_quant) {
    k->head_quant(quant_, state.h.data(), probs.data());
  } else {
    k->head(packed_, state.h.data(), probs.data());
  }
  k->softmax(probs.data(), packed_.head_out, probs.data());
}

bool LstmInferEngine::step_batch(std::span<EngineState* const> states, std::span<const int> actions,
                                 std::span<std::vector<float>* const> probs,
                                 EngineScratch& scratch, bool use_quant, bool defer_heads) const {
  assert(states.size() == actions.size() && states.size() == probs.size());
  const std::size_t n = states.size();
  const Kernels* k = select_kernels();
  if (n < 2 || use_quant || k->gates_batch == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      step(*states[i], actions[i], *probs[i], scratch, use_quant);
    }
    return false;
  }
  // Fused path (avx2 only): register-blocked batch kernels. Scalar mode
  // never takes this branch (null batch kernels), so scalar batch ==
  // sequential bitwise; avx2 fusion stays in the table's ULP envelope.
  const std::size_t hidden = packed_.hidden;
  const std::size_t g4 = 4 * hidden;
  scratch.gates.resize(n * g4);
  scratch.h_rows.resize(n);
  scratch.gate_rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.h_rows[i] = states[i]->h.data();
    scratch.gate_rows[i] = scratch.gates.data() + i * g4;
  }
  k->gates_batch(packed_, scratch.h_rows.data(), actions.data(), scratch.gate_rows.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    k->activate_update(scratch.gate_rows[i], hidden, states[i]->c.data(), states[i]->h.data());
  }
  if (defer_heads) return true;
  scratch.logit_rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    probs[i]->resize(packed_.head_out);
    scratch.logit_rows[i] = probs[i]->data();
  }
  // h advanced in place above; h_rows still point at the live storage.
  k->head_batch(packed_, scratch.h_rows.data(), scratch.logit_rows.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    k->softmax(scratch.logit_rows[i], packed_.head_out, scratch.logit_rows[i]);
  }
  return false;
}

void LstmInferEngine::finish_probs(const EngineState& state, std::vector<float>& probs,
                                   bool use_quant) const {
  assert(!use_quant || has_quantized());
  const Kernels* k = select_kernels();
  probs.resize(packed_.head_out);
  if (use_quant) {
    k->head_quant(quant_, state.h.data(), probs.data());
  } else {
    k->head(packed_, state.h.data(), probs.data());
  }
  k->softmax(probs.data(), packed_.head_out, probs.data());
}

}  // namespace misuse::nn::infer

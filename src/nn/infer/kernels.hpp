// Internal kernel table for the inference engine.
//
// The scalar table reproduces the reference forward (nn/lstm.cpp +
// nn/dense.cpp + softmax_row) expression-for-expression and leaves the
// *_batch entries null, so batched scalar scoring loops the one-row
// kernels and stays bit-identical to one-at-a-time scoring — the
// determinism contract (WAL replay, hot swap) rides on this.
//
// The avx2 table (nn/infer/engine_avx2.cpp, compiled with -mavx2 -mfma
// -mf16c) is ULP-close to scalar, not bit-identical (vectorized exp
// approximation, FMA reassociation); its fused *_batch kernels use
// register-blocked broadcast-FMA and sit inside the same ULP envelope,
// pinned against the one-row kernels by tests/test_infer.cpp.
#pragma once

#include <cstddef>

namespace misuse::nn::infer {

struct PackedLstm;
struct QuantizedLstm;

struct Kernels {
  /// gates[0..4H) = bias + wx[token] (token != kPadToken) + Wh^T h.
  void (*gates)(const PackedLstm& w, const float* h, int token, float* gates);
  void (*gates_quant)(const QuantizedLstm& w, const float* h, int token, float* gates);
  /// In-place gate nonlinearities + cell update (c, h advance).
  void (*activate_update)(float* gates, std::size_t hidden, float* c, float* h);
  /// logits[0..V) = head_w h + head_b.
  void (*head)(const PackedLstm& w, const float* h, float* logits);
  void (*head_quant)(const QuantizedLstm& w, const float* h, float* logits);
  /// Stable softmax logits -> probs (may alias).
  void (*softmax)(const float* logits, std::size_t n, float* probs);
  /// Fused batch variants; nullptr = the engine loops the one-row kernel
  /// (the scalar table, which keeps batch == sequential bitwise). The
  /// avx2 implementations may re-associate for throughput but must stay
  /// inside the table's ULP envelope vs the one-row kernels.
  void (*gates_batch)(const PackedLstm& w, float* const* h, const int* tokens,
                      float* const* gates, std::size_t n);
  void (*head_batch)(const PackedLstm& w, float* const* h, float* const* logits, std::size_t n);
};

const Kernels* scalar_kernels();
/// nullptr when the tree is built without MISUSE_SIMD.
const Kernels* avx2_kernels();

}  // namespace misuse::nn::infer

// Runtime kernel selection for the inference engine (nn/infer/engine.hpp).
//
// Modes:
//   auto      — the fastest mode that preserves bit-identity with the
//               reference forward; today that is the scalar engine.
//   scalar    — the engine's scalar kernels, bit-identical to the
//               training-grade reference forward (nn/lstm.cpp).
//   avx2      — the vectorized kernels (ULP-close to scalar, not
//               bit-identical: the gate nonlinearities use a vectorized
//               exp approximation). Strictly opt-in; silently falls back
//               to scalar when not compiled in or unsupported by the CPU.
//   reference — bypass the engine entirely and score through
//               NextActionModel::step_into (differential-test baseline).
//
// Configured once per process via --infer / set_infer_mode(); the
// MISUSEDET_INFER environment variable seeds the default. MISUSEDET_QUANT
// ("off" to disable) gates whether archives' quantized weight sections
// are used at load time.
#pragma once

#include <optional>
#include <string_view>

namespace misuse::nn::infer {

enum class InferMode { kAuto, kScalar, kAvx2, kReference };

/// "auto" | "scalar" | "avx2" | "reference" -> mode; nullopt otherwise.
std::optional<InferMode> parse_infer_mode(std::string_view name);
const char* infer_mode_name(InferMode mode);

/// The configured mode (defaults to MISUSEDET_INFER, else auto).
InferMode infer_mode();
void set_infer_mode(InferMode mode);

/// The configured mode with kAuto resolved against this host.
InferMode effective_infer_mode();

/// AVX2 kernels are compiled in AND this CPU can run them (AVX2+FMA+F16C).
bool avx2_supported();

/// Whether quantized archive sections are consumed at detector-load time
/// (defaults to MISUSEDET_QUANT != "off"). Scoring falls back to the
/// float weights when disabled.
bool quant_enabled();
void set_quant_enabled(bool on);

}  // namespace misuse::nn::infer

#include "nn/infer/quant.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace misuse::nn::infer {

namespace {

constexpr std::uint32_t kQuantMagic = 0x54514d49u;  // "IMQT"
constexpr std::uint32_t kQuantVersion = 1;

// Quantizes `rows` rows of `cols` floats to int8 with one symmetric
// per-row scale (maxabs/127; all-zero rows get scale 0 and zeros).
void quantize_rows_int8(const std::vector<float>& w, std::size_t rows, std::size_t cols,
                        std::vector<std::int8_t>& q, std::vector<float>& scales) {
  assert(w.size() == rows * cols);
  q.resize(w.size());
  scales.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    float maxabs = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) maxabs = std::max(maxabs, std::fabs(row[c]));
    const float scale = maxabs / 127.0f;
    scales[r] = scale;
    std::int8_t* qrow = q.data() + r * cols;
    if (scale == 0.0f) {
      std::memset(qrow, 0, cols);
      continue;
    }
    const float inv = 1.0f / scale;
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = std::nearbyint(row[c] * inv);
      qrow[c] = static_cast<std::int8_t>(std::max(-127.0f, std::min(127.0f, v)));
    }
  }
}

void encode_half(const std::vector<float>& w, std::vector<std::uint16_t>& h) {
  h.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) h[i] = float_to_half(w[i]);
}

}  // namespace

std::optional<QuantKind> parse_quant_kind(std::string_view name) {
  if (name == "none") return QuantKind::kNone;
  if (name == "int8") return QuantKind::kInt8;
  if (name == "fp16") return QuantKind::kFp16;
  return std::nullopt;
}

const char* quant_kind_name(QuantKind kind) {
  switch (kind) {
    case QuantKind::kNone: return "none";
    case QuantKind::kInt8: return "int8";
    case QuantKind::kFp16: return "fp16";
  }
  return "?";
}

std::uint16_t float_to_half(float x) {
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN
    const std::uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (abs >= 0x47800000u) {  // overflows half range -> +/-inf
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {  // subnormal half (or zero)
    if (abs < 0x33000000u) return static_cast<std::uint16_t>(sign);  // underflow to 0
    // The result is mantissa (with implicit bit) in units of 2^-24, i.e.
    // mantissa >> (126 - e); round to nearest even on the dropped bits.
    const std::uint64_t dropped = 126u - (abs >> 23);
    const std::uint64_t mantissa = (abs & 0x007fffffu) | 0x00800000u;
    const std::uint64_t half = mantissa >> dropped;
    const std::uint64_t rem = mantissa & ((std::uint64_t{1} << dropped) - 1u);
    const std::uint64_t midpoint = std::uint64_t{1} << (dropped - 1u);
    std::uint64_t rounded = half;
    if (rem > midpoint || (rem == midpoint && (half & 1u) != 0u)) ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal half: rebias exponent, round mantissa to 10 bits (RNE).
  std::uint32_t half = ((abs >> 23) - 112u) << 10 | ((abs >> 13) & 0x03ffu);
  const std::uint32_t rem = abs & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0u)) ++half;  // may carry into exp
  return static_cast<std::uint16_t>(sign | half);
}

float half_to_float(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  const std::uint32_t mantissa = bits & 0x03ffu;
  std::uint32_t out;
  if (exp == 0u) {
    if (mantissa == 0u) {
      out = sign;  // +/-0
    } else {
      // Subnormal half: renormalize into a float exponent.
      std::uint32_t m = mantissa;
      std::uint32_t e = 113u;
      while ((m & 0x0400u) == 0u) {
        m <<= 1;
        --e;
      }
      out = sign | (e << 23) | ((m & 0x03ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    out = sign | 0x7f800000u | (mantissa << 13);  // inf / NaN
  } else {
    out = sign | ((exp + 112u) << 23) | (mantissa << 13);
  }
  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

QuantizedLstm quantize(const PackedLstm& packed, QuantKind kind) {
  assert(kind != QuantKind::kNone);
  QuantizedLstm q;
  q.kind = kind;
  q.vocab = packed.vocab;
  q.hidden = packed.hidden;
  q.head_out = packed.head_out;
  q.bias = packed.bias;
  q.head_b = packed.head_b;
  const std::size_t g4 = 4 * packed.hidden;
  if (kind == QuantKind::kInt8) {
    quantize_rows_int8(packed.wx, packed.vocab, g4, q.wx_q, q.wx_scale);
    quantize_rows_int8(packed.wh_t, g4, packed.hidden, q.wh_t_q, q.wh_t_scale);
    quantize_rows_int8(packed.head_w_t, packed.head_out, packed.hidden, q.head_w_q,
                       q.head_w_scale);
  } else {
    encode_half(packed.wx, q.wx_h);
    encode_half(packed.wh_t, q.wh_t_h);
    encode_half(packed.head_w_t, q.head_w_h);
  }
  return q;
}

void QuantizedLstm::save(BinaryWriter& w) const {
  w.write_magic(kQuantMagic, kQuantVersion);
  w.write<std::uint8_t>(static_cast<std::uint8_t>(kind));
  w.write<std::uint64_t>(vocab);
  w.write<std::uint64_t>(hidden);
  w.write<std::uint64_t>(head_out);
  if (kind == QuantKind::kInt8) {
    w.write_vector(wx_q);
    w.write_vector(wh_t_q);
    w.write_vector(head_w_q);
    w.write_vector(wx_scale);
    w.write_vector(wh_t_scale);
    w.write_vector(head_w_scale);
  } else {
    w.write_vector(wx_h);
    w.write_vector(wh_t_h);
    w.write_vector(head_w_h);
  }
  w.write_vector(bias);
  w.write_vector(head_b);
}

QuantizedLstm QuantizedLstm::load(BinaryReader& r) {
  (void)r.read_magic(kQuantMagic);
  QuantizedLstm q;
  const auto kind = r.read<std::uint8_t>();
  if (kind != static_cast<std::uint8_t>(QuantKind::kInt8) &&
      kind != static_cast<std::uint8_t>(QuantKind::kFp16)) {
    throw SerializeError("unknown quantization kind");
  }
  q.kind = static_cast<QuantKind>(kind);
  q.vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  q.hidden = static_cast<std::size_t>(r.read<std::uint64_t>());
  q.head_out = static_cast<std::size_t>(r.read<std::uint64_t>());
  const std::size_t g4 = 4 * q.hidden;
  if (q.kind == QuantKind::kInt8) {
    q.wx_q = r.read_vector<std::int8_t>();
    q.wh_t_q = r.read_vector<std::int8_t>();
    q.head_w_q = r.read_vector<std::int8_t>();
    q.wx_scale = r.read_vector<float>();
    q.wh_t_scale = r.read_vector<float>();
    q.head_w_scale = r.read_vector<float>();
    if (q.wx_q.size() != q.vocab * g4 || q.wh_t_q.size() != g4 * q.hidden ||
        q.head_w_q.size() != q.head_out * q.hidden || q.wx_scale.size() != q.vocab ||
        q.wh_t_scale.size() != g4 || q.head_w_scale.size() != q.head_out) {
      throw SerializeError("quantized section shape mismatch");
    }
  } else {
    q.wx_h = r.read_vector<std::uint16_t>();
    q.wh_t_h = r.read_vector<std::uint16_t>();
    q.head_w_h = r.read_vector<std::uint16_t>();
    if (q.wx_h.size() != q.vocab * g4 || q.wh_t_h.size() != g4 * q.hidden ||
        q.head_w_h.size() != q.head_out * q.hidden) {
      throw SerializeError("quantized section shape mismatch");
    }
  }
  q.bias = r.read_vector<float>();
  q.head_b = r.read_vector<float>();
  if (q.bias.size() != g4 || q.head_b.size() != q.head_out) {
    throw SerializeError("quantized section shape mismatch");
  }
  return q;
}

}  // namespace misuse::nn::infer

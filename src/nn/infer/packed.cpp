#include "nn/infer/packed.hpp"

#include <cassert>

#include "nn/dense.hpp"
#include "nn/lstm.hpp"

namespace misuse::nn::infer {

PackedLstm pack_lstm(const Lstm& cell, const Dense& head) {
  PackedLstm packed;
  packed.vocab = cell.vocab();
  packed.hidden = cell.hidden();
  packed.head_out = head.out_dim();
  const std::size_t h = packed.hidden;
  const std::size_t g4 = 4 * h;
  assert(head.in_dim() == h);

  const Matrix& wx = cell.wx();    // vocab x 4H — copied as-is
  const Matrix& wh = cell.wh();    // H x 4H — copied + transposed into wh_t
  const Matrix& bias = cell.bias();  // 1 x 4H
  packed.wx.assign(wx.data(), wx.data() + wx.size());
  packed.bias.assign(bias.data(), bias.data() + bias.size());
  packed.wh.assign(wh.data(), wh.data() + wh.size());
  packed.wh_t.resize(g4 * h);
  for (std::size_t j = 0; j < g4; ++j) {
    for (std::size_t p = 0; p < h; ++p) packed.wh_t[j * h + p] = wh(p, j);
  }

  const Matrix& hw = head.weights();  // H x V — copied + transposed
  const Matrix& hb = head.bias();     // 1 x V
  packed.head_w.assign(hw.data(), hw.data() + hw.size());
  packed.head_w_t.resize(packed.head_out * h);
  for (std::size_t j = 0; j < packed.head_out; ++j) {
    for (std::size_t p = 0; p < h; ++p) packed.head_w_t[j * h + p] = hw(p, j);
  }
  packed.head_b.assign(hb.data(), hb.data() + hb.size());
  return packed;
}

Matrix unpack_wh(const PackedLstm& packed) {
  const std::size_t h = packed.hidden;
  const std::size_t g4 = 4 * h;
  Matrix wh(h, g4);
  for (std::size_t j = 0; j < g4; ++j) {
    for (std::size_t p = 0; p < h; ++p) wh(p, j) = packed.wh_t[j * h + p];
  }
  return wh;
}

Matrix unpack_head_w(const PackedLstm& packed) {
  const std::size_t h = packed.hidden;
  Matrix hw(h, packed.head_out);
  for (std::size_t j = 0; j < packed.head_out; ++j) {
    for (std::size_t p = 0; p < h; ++p) hw(p, j) = packed.head_w_t[j * h + p];
  }
  return hw;
}

}  // namespace misuse::nn::infer

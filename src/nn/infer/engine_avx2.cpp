// AVX2/FMA/F16C kernel table for the inference engine. This TU is the
// only one compiled with -mavx2 -mfma -mf16c (see src/nn/CMakeLists.txt,
// MISUSE_SIMD); everything it exports is reached through the runtime
// dispatch in nn/infer/dispatch.cpp, which checks CPU support first.
//
// These kernels are ULP-close to the scalar table, not bit-identical:
// the dot products use 8-lane FMA accumulators (different association
// order) and the gate nonlinearities run on a vectorized exp polynomial
// (Cephes-style, as in avx_mathfun) instead of libm. tests/test_infer.cpp
// pins the divergence with a per-step ULP/absolute bound.
#include "nn/infer/kernels.hpp"

#if defined(MISUSEDET_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <span>

#include "nn/gate_math.hpp"
#include "nn/infer/packed.hpp"
#include "nn/infer/quant.hpp"
#include "nn/lstm.hpp"
#include "tensor/ops.hpp"

namespace misuse::nn::infer {

namespace {

inline float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

// Dense float dot with 4 independent accumulators to hide FMA latency.
inline float dot_f32(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::size_t p = 0;
  for (; p + 32 <= n; p += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 8), _mm256_loadu_ps(b + p + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 16), _mm256_loadu_ps(b + p + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 24), _mm256_loadu_ps(b + p + 24), acc3);
  }
  for (; p + 8 <= n; p += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p), acc0);
  }
  float total = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
  for (; p < n; ++p) total += a[p] * b[p];
  return total;
}

// int8 dot: sign-extend 8 bytes -> i32 -> f32, FMA against b.
inline float dot_q8(const std::int8_t* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + p));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc = _mm256_fmadd_ps(f, _mm256_loadu_ps(b + p), acc);
  }
  float total = hsum256(acc);
  for (; p < n; ++p) total += static_cast<float>(a[p]) * b[p];
  return total;
}

// fp16 dot: decode 8 halves per cycle through F16C.
inline float dot_f16(const std::uint16_t* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m128i halves = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p));
    acc = _mm256_fmadd_ps(_mm256_cvtph_ps(halves), _mm256_loadu_ps(b + p), acc);
  }
  float total = hsum256(acc);
  for (; p < n; ++p) total += half_to_float(a[p]) * b[p];
  return total;
}

// Vectorized exp (Cephes expf port, as in avx_mathfun): range-reduced
// polynomial, ~1 ulp relative error inside the clamp range.
inline __m256 exp256(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.0f);
  x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
  __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));
  __m256i pow2 = _mm256_cvttps_epi32(fx);
  pow2 = _mm256_add_epi32(pow2, _mm256_set1_epi32(0x7f));
  pow2 = _mm256_slli_epi32(pow2, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

inline __m256 sigmoid256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = exp256(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

inline __m256 tanh256(__m256 x) {
  // tanh(x) = (e^{2x} - 1) / (e^{2x} + 1); exp's clamp keeps the ratio
  // finite and saturating at +/-1.
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e2x = exp256(_mm256_add_ps(x, x));
  return _mm256_div_ps(_mm256_sub_ps(e2x, one), _mm256_add_ps(e2x, one));
}

inline const float* wx_row(const PackedLstm& w, int token) {
  return token == kPadToken ? nullptr
                            : w.wx.data() + static_cast<std::size_t>(token) * 4 * w.hidden;
}

void avx2_gates(const PackedLstm& w, const float* h, int token, float* gates) {
  const std::size_t hidden = w.hidden;
  const std::size_t g4 = 4 * hidden;
  const float* wxrow = wx_row(w, token);
  for (std::size_t j = 0; j < g4; ++j) {
    float acc = w.bias[j];
    if (wxrow != nullptr) acc += wxrow[j];
    gates[j] = acc + dot_f32(w.wh_t.data() + j * hidden, h, hidden);
  }
}

// Fused batch GEMV: accumulate `row[j0..] += x[p] * m(p, j0..)` for one
// session with the output block pinned in 8 ymm registers — pure
// broadcast-FMA streams, no horizontal reductions. `m` is in reference
// (p-major) layout. This associates the sum differently from dot_f32
// (p-ascending instead of 4-lane chunks), which is fine: the whole avx2
// table is ULP-close to scalar, not bit-identical, and the batch kernels
// are pinned against the one-row kernels by the same ULP bound in
// tests/test_infer.cpp.
inline void accum_rows(const float* m, std::size_t cols, const float* x, std::size_t len,
                       float* row) {
  constexpr std::size_t kBlock = 8;  // 8 ymm = 64 output columns per pass
  std::size_t j0 = 0;
  for (; j0 + kBlock * 8 <= cols; j0 += kBlock * 8) {
    __m256 acc[kBlock];
    for (std::size_t b = 0; b < kBlock; ++b) acc[b] = _mm256_loadu_ps(row + j0 + 8 * b);
    for (std::size_t p = 0; p < len; ++p) {
      const __m256 xp = _mm256_set1_ps(x[p]);
      const float* wrow = m + p * cols + j0;
      for (std::size_t b = 0; b < kBlock; ++b) {
        acc[b] = _mm256_fmadd_ps(xp, _mm256_loadu_ps(wrow + 8 * b), acc[b]);
      }
    }
    for (std::size_t b = 0; b < kBlock; ++b) _mm256_storeu_ps(row + j0 + 8 * b, acc[b]);
  }
  for (; j0 + 8 <= cols; j0 += 8) {
    __m256 acc = _mm256_loadu_ps(row + j0);
    for (std::size_t p = 0; p < len; ++p) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(x[p]), _mm256_loadu_ps(m + p * cols + j0), acc);
    }
    _mm256_storeu_ps(row + j0, acc);
  }
  for (; j0 < cols; ++j0) {
    float acc = row[j0];
    for (std::size_t p = 0; p < len; ++p) acc += x[p] * m[p * cols + j0];
    row[j0] = acc;
  }
}

// Multi-session tile: N sessions x 16 columns of output pinned in
// registers (2N accumulators — at the N=6 sweet spot, 12 independent FMA
// chains, enough to cover the FMA latency), each weight vector
// broadcast-shared across the tile so the weight stream (the batch
// GEMV's bandwidth bottleneck; weights exceed L1) is read once per N
// sessions instead of once per session. Smaller instantiations (4, 2)
// mop up the batch remainder so a 64-session batch never falls back to
// re-streaming the whole weight matrix per leftover session.
constexpr int kSessTile = 6;

template <int N>
void accum_rows_tile(const float* m, std::size_t cols, const float* const* x, std::size_t len,
                     float* const* rows) {
  std::size_t j0 = 0;
  for (; j0 + 16 <= cols; j0 += 16) {
    __m256 acc[N][2];
    for (int s = 0; s < N; ++s) {
      acc[s][0] = _mm256_loadu_ps(rows[s] + j0);
      acc[s][1] = _mm256_loadu_ps(rows[s] + j0 + 8);
    }
    for (std::size_t p = 0; p < len; ++p) {
      const float* wrow = m + p * cols + j0;
      const __m256 w0 = _mm256_loadu_ps(wrow);
      const __m256 w1 = _mm256_loadu_ps(wrow + 8);
      for (int s = 0; s < N; ++s) {
        const __m256 xp = _mm256_set1_ps(x[s][p]);
        acc[s][0] = _mm256_fmadd_ps(xp, w0, acc[s][0]);
        acc[s][1] = _mm256_fmadd_ps(xp, w1, acc[s][1]);
      }
    }
    for (int s = 0; s < N; ++s) {
      _mm256_storeu_ps(rows[s] + j0, acc[s][0]);
      _mm256_storeu_ps(rows[s] + j0 + 8, acc[s][1]);
    }
  }
  for (; j0 + 8 <= cols; j0 += 8) {
    __m256 acc[N];
    for (int s = 0; s < N; ++s) acc[s] = _mm256_loadu_ps(rows[s] + j0);
    for (std::size_t p = 0; p < len; ++p) {
      const __m256 w0 = _mm256_loadu_ps(m + p * cols + j0);
      for (int s = 0; s < N; ++s) {
        acc[s] = _mm256_fmadd_ps(_mm256_set1_ps(x[s][p]), w0, acc[s]);
      }
    }
    for (int s = 0; s < N; ++s) _mm256_storeu_ps(rows[s] + j0, acc[s]);
  }
  for (; j0 < cols; ++j0) {
    for (int s = 0; s < N; ++s) {
      float acc = rows[s][j0];
      for (std::size_t p = 0; p < len; ++p) acc += x[s][p] * m[p * cols + j0];
      rows[s][j0] = acc;
    }
  }
}

// Full-batch GEMV accumulate: 6-session tiles, then 4/2-session tiles on
// the remainder, then a single-session pass for the last odd row.
void accum_rows_batch(const float* m, std::size_t cols, const float* const* x, std::size_t len,
                      float* const* rows, std::size_t n) {
  std::size_t i = 0;
  for (; i + kSessTile <= n; i += kSessTile) {
    accum_rows_tile<kSessTile>(m, cols, x + i, len, rows + i);
  }
  if (n - i >= 4) {
    accum_rows_tile<4>(m, cols, x + i, len, rows + i);
    i += 4;
  }
  if (n - i >= 2) {
    accum_rows_tile<2>(m, cols, x + i, len, rows + i);
    i += 2;
  }
  if (i < n) accum_rows(m, cols, x[i], len, rows[i]);
}

void seed_gate_rows(const PackedLstm& w, float* const* gates, const int* tokens, std::size_t n) {
  const std::size_t g4 = 4 * w.hidden;
  const float* bias = w.bias.data();
  for (std::size_t i = 0; i < n; ++i) {
    float* g = gates[i];
    const float* wxrow = wx_row(w, tokens[i]);
    if (wxrow != nullptr) {
      std::size_t j = 0;
      for (; j + 8 <= g4; j += 8) {
        _mm256_storeu_ps(g + j,
                         _mm256_add_ps(_mm256_loadu_ps(bias + j), _mm256_loadu_ps(wxrow + j)));
      }
      for (; j < g4; ++j) g[j] = bias[j] + wxrow[j];
    } else {
      for (std::size_t j = 0; j < g4; ++j) g[j] = bias[j];
    }
  }
}

void avx2_gates_batch(const PackedLstm& w, float* const* h, const int* tokens,
                      float* const* gates, std::size_t n) {
  const std::size_t g4 = 4 * w.hidden;
  seed_gate_rows(w, gates, tokens, n);
  accum_rows_batch(w.wh.data(), g4, h, w.hidden, gates, n);
}

void avx2_gates_quant(const QuantizedLstm& w, const float* h, int token, float* gates) {
  const std::size_t hidden = w.hidden;
  const std::size_t g4 = 4 * hidden;
  for (std::size_t j = 0; j < g4; ++j) {
    float acc = w.bias[j];
    if (token != kPadToken) {
      const std::size_t wx_at = static_cast<std::size_t>(token) * g4 + j;
      if (w.kind == QuantKind::kInt8) {
        acc += w.wx_scale[static_cast<std::size_t>(token)] * static_cast<float>(w.wx_q[wx_at]);
      } else {
        acc += half_to_float(w.wx_h[wx_at]);
      }
    }
    if (w.kind == QuantKind::kInt8) {
      acc += w.wh_t_scale[j] * dot_q8(w.wh_t_q.data() + j * hidden, h, hidden);
    } else {
      acc += dot_f16(w.wh_t_h.data() + j * hidden, h, hidden);
    }
    gates[j] = acc;
  }
}

void avx2_activate_update(float* gates, std::size_t hidden, float* c, float* h) {
  // Gate layout [i | f | g | o]: sigmoid on [0, 2H) and [3H, 4H), tanh on
  // [2H, 3H). Scalar (libm) tails keep non-multiple-of-8 widths exact.
  const auto sigmoid_span = [](float* x, std::size_t n) {
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) _mm256_storeu_ps(x + j, sigmoid256(_mm256_loadu_ps(x + j)));
    for (; j < n; ++j) x[j] = gate_sigmoid(x[j]);
  };
  sigmoid_span(gates, 2 * hidden);
  std::size_t j = 0;
  float* gblock = gates + 2 * hidden;
  for (; j + 8 <= hidden; j += 8) {
    _mm256_storeu_ps(gblock + j, tanh256(_mm256_loadu_ps(gblock + j)));
  }
  for (; j < hidden; ++j) gblock[j] = std::tanh(gblock[j]);
  sigmoid_span(gates + 3 * hidden, hidden);

  // c = f*c + i*g; h = o * tanh(c).
  const float* ig = gates;
  const float* fg = gates + hidden;
  const float* gg = gates + 2 * hidden;
  const float* og = gates + 3 * hidden;
  j = 0;
  for (; j + 8 <= hidden; j += 8) {
    const __m256 cv = _mm256_fmadd_ps(_mm256_loadu_ps(fg + j), _mm256_loadu_ps(c + j),
                                      _mm256_mul_ps(_mm256_loadu_ps(ig + j),
                                                    _mm256_loadu_ps(gg + j)));
    _mm256_storeu_ps(c + j, cv);
    _mm256_storeu_ps(h + j, _mm256_mul_ps(_mm256_loadu_ps(og + j), tanh256(cv)));
  }
  for (; j < hidden; ++j) {
    c[j] = fg[j] * c[j] + ig[j] * gg[j];
    h[j] = og[j] * std::tanh(c[j]);
  }
}

void avx2_head(const PackedLstm& w, const float* h, float* logits) {
  for (std::size_t j = 0; j < w.head_out; ++j) {
    logits[j] = dot_f32(w.head_w_t.data() + j * w.hidden, h, w.hidden) + w.head_b[j];
  }
}

void avx2_head_batch(const PackedLstm& w, float* const* h, float* const* logits, std::size_t n) {
  const std::size_t out = w.head_out;
  for (std::size_t i = 0; i < n; ++i) {
    float* row = logits[i];
    for (std::size_t j = 0; j < out; ++j) row[j] = w.head_b[j];
  }
  accum_rows_batch(w.head_w.data(), out, h, w.hidden, logits, n);
}

void avx2_head_quant(const QuantizedLstm& w, const float* h, float* logits) {
  for (std::size_t j = 0; j < w.head_out; ++j) {
    float acc;
    if (w.kind == QuantKind::kInt8) {
      acc = w.head_w_scale[j] * dot_q8(w.head_w_q.data() + j * w.hidden, h, w.hidden);
    } else {
      acc = dot_f16(w.head_w_h.data() + j * w.hidden, h, w.hidden);
    }
    logits[j] = acc + w.head_b[j];
  }
}

void avx2_softmax(const float* logits, std::size_t n, float* probs) {
  float mx = logits[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  const __m256 mxv = _mm256_set1_ps(mx);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(probs + i, exp256(_mm256_sub_ps(_mm256_loadu_ps(logits + i), mxv)));
  }
  for (; i < n; ++i) probs[i] = std::exp(logits[i] - mx);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += probs[k];
  const float inv = static_cast<float>(1.0 / sum);
  for (std::size_t k = 0; k < n; ++k) probs[k] *= inv;
}

}  // namespace

const Kernels* avx2_kernels() {
  static const Kernels kernels = {
      &avx2_gates, &avx2_gates_quant, &avx2_activate_update, &avx2_head,
      &avx2_head_quant, &avx2_softmax, &avx2_gates_batch, &avx2_head_batch,
  };
  return &kernels;
}

}  // namespace misuse::nn::infer

#else  // !MISUSEDET_HAVE_AVX2

namespace misuse::nn::infer {

const Kernels* avx2_kernels() { return nullptr; }

}  // namespace misuse::nn::infer

#endif

// Opt-in quantized weight formats for the inference engine, stored as the
// v3 detector-archive quant section (core/detector.cpp):
//
//   int8 — symmetric per-row quantization: each row of the packed weight
//          matrices (a token's wx row, a gate unit's wh_t row, a logit's
//          head_w row) carries one fp32 scale = maxabs/127 and int8
//          values round(w/scale). ~4x smaller, dequantized on the fly in
//          the kernels' dot products.
//   fp16 — IEEE binary16 bit patterns (round-to-nearest-even), decoded
//          scalar or via F16C. ~2x smaller, near-float accuracy.
//
// Biases stay fp32 in both formats (they are O(H + V) — not worth the
// accuracy risk). Quantized scoring is opt-in at publish time and gated
// by a measured verdict-flip check (core/quant_gate.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "nn/infer/packed.hpp"
#include "util/serialize.hpp"

namespace misuse::nn::infer {

enum class QuantKind : std::uint8_t { kNone = 0, kInt8 = 1, kFp16 = 2 };

/// "int8" | "fp16" | "none" -> kind; nullopt otherwise.
std::optional<QuantKind> parse_quant_kind(std::string_view name);
const char* quant_kind_name(QuantKind kind);

/// Bit-exact scalar IEEE binary16 converters (round-to-nearest-even on
/// encode; decode is exact — every half value is representable in float).
std::uint16_t float_to_half(float x);
float half_to_float(std::uint16_t bits);

struct QuantizedLstm {
  QuantKind kind = QuantKind::kNone;
  std::size_t vocab = 0;
  std::size_t hidden = 0;
  std::size_t head_out = 0;

  // int8 payload: values + one fp32 scale per row.
  std::vector<std::int8_t> wx_q;      // vocab x 4H
  std::vector<std::int8_t> wh_t_q;    // 4H x H
  std::vector<std::int8_t> head_w_q;  // head_out x H
  std::vector<float> wx_scale;        // vocab
  std::vector<float> wh_t_scale;      // 4H
  std::vector<float> head_w_scale;    // head_out

  // fp16 payload: raw binary16 bit patterns, same shapes as the floats.
  std::vector<std::uint16_t> wx_h;
  std::vector<std::uint16_t> wh_t_h;
  std::vector<std::uint16_t> head_w_h;

  // Biases stay fp32.
  std::vector<float> bias;    // 4H
  std::vector<float> head_b;  // head_out

  void save(BinaryWriter& w) const;
  static QuantizedLstm load(BinaryReader& r);
};

/// Quantizes packed float weights. kind must not be kNone.
QuantizedLstm quantize(const PackedLstm& packed, QuantKind kind);

}  // namespace misuse::nn::infer

// Inference weight layout for the paper architecture (one token-input
// LSTM layer + dense softmax head), packed once at detector-load time.
//
// Layout choices, driven by the per-step access pattern:
//   wx        vocab x 4H, row-major — the reference layout; a step reads
//             one whole row (the observed token's), already contiguous.
//   wh        H x 4H — the reference layout, kept for the scalar kernels:
//             bit-identity with the training-grade forward requires the
//             *same loop shape* as tensor gemm (p-outer accumulation into
//             the gate row), which reads wh row-by-row.
//   wh_t      4H x H — the recurrent weights TRANSPOSED for the AVX2 and
//             quantized kernels: gate unit j's weights over h are a
//             contiguous row, so the per-unit dot product streams one
//             cache line sequence instead of striding 4H floats/element.
//   head_w    H x V — reference layout (scalar kernels, as wh).
//   head_w_t  V x H — the head weights transposed (AVX2/quantized).
//   bias / head_b — fp32, shared by the float and quantized paths.
//
// The packing is a pure permutation (no arithmetic), so it is lossless;
// unpack_wh / unpack_head_w invert the transposed copies exactly
// (property-tested in tests/test_infer.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace misuse::nn {
class Lstm;
class Dense;
}  // namespace misuse::nn

namespace misuse::nn::infer {

struct PackedLstm {
  std::size_t vocab = 0;     // token vocabulary (wx rows)
  std::size_t hidden = 0;    // H
  std::size_t head_out = 0;  // V — head output width (== vocab here)
  std::vector<float> wx;        // vocab x 4H
  std::vector<float> wh;        // H x 4H (reference layout, scalar kernels)
  std::vector<float> wh_t;      // 4H x H (transposed, AVX2/quantized kernels)
  std::vector<float> bias;      // 4H
  std::vector<float> head_w;    // H x head_out (reference layout)
  std::vector<float> head_w_t;  // head_out x H (transposed)
  std::vector<float> head_b;    // head_out
};

/// Packs the cell + head weights. Pure data movement — lossless.
PackedLstm pack_lstm(const Lstm& cell, const Dense& head);

/// Inverts the wh transposition: returns the reference H x 4H matrix.
Matrix unpack_wh(const PackedLstm& packed);

/// Inverts the head transposition: returns the reference H x V matrix.
Matrix unpack_head_w(const PackedLstm& packed);

}  // namespace misuse::nn::infer

#include "nn/grad_check.hpp"

#include <cmath>
#include <sstream>

namespace misuse::nn {

GradCheckReport check_gradients(const ParameterList& params,
                                const std::function<double()>& loss, Rng& rng,
                                const GradCheckOptions& options) {
  GradCheckReport report;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Parameter& p = *params[pi];
    const std::size_t n = p.value.size();
    const std::size_t samples = std::min(options.samples_per_param, n);
    for (std::size_t s = 0; s < samples; ++s) {
      const std::size_t idx =
          samples == n ? s : rng.uniform_index(n);  // exhaustive when small
      const float original = p.value.flat()[idx];
      const double analytic = p.grad.flat()[idx];

      p.value.flat()[idx] = original + static_cast<float>(options.epsilon);
      const double loss_plus = loss();
      p.value.flat()[idx] = original - static_cast<float>(options.epsilon);
      const double loss_minus = loss();
      p.value.flat()[idx] = original;

      const double numeric = (loss_plus - loss_minus) / (2.0 * options.epsilon);
      ++report.checked;

      const double denom = std::max(std::abs(analytic) + std::abs(numeric), 1e-12);
      const double rel = std::abs(analytic - numeric) / denom;
      const bool both_tiny = std::abs(analytic) < options.abs_tolerance &&
                             std::abs(numeric) < options.abs_tolerance;
      if (!both_tiny && rel > options.rel_tolerance) {
        ++report.failures;
        if (rel > report.worst_rel_error) {
          std::ostringstream name;
          name << p.name << "[" << idx / p.value.cols() << "," << idx % p.value.cols()
               << "] analytic=" << analytic << " numeric=" << numeric;
          report.worst_coordinate = name.str();
        }
      }
      if (!both_tiny) report.worst_rel_error = std::max(report.worst_rel_error, rel);
    }
  }
  return report;
}

}  // namespace misuse::nn

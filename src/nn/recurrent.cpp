#include "nn/recurrent.hpp"

namespace misuse::nn {

const char* cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kLstm: return "lstm";
    case CellKind::kGru: return "gru";
  }
  return "?";
}

}  // namespace misuse::nn

// Shared LSTM gate nonlinearities and cell update, inlined into both the
// training-grade reference cell (nn/lstm.cpp) and the inference engine's
// scalar kernel (nn/infer/engine.cpp).
//
// The repo's headline guarantee is bit-identical determinism (WAL
// replay, hot swap, server-vs-offline equivalence), so the scalar
// inference path must reproduce the reference forward *exactly* — not
// just to the same formula, but to the same floating-point expression
// tree. Expressions like `f * c + i * g` are contraction-ambiguous (the
// compiler may fuse either multiply into an FMA); routing every consumer
// through these helpers guarantees both paths compile the identical
// expression and therefore round identically.
#pragma once

#include <cmath>
#include <cstddef>

namespace misuse::nn {

/// Logistic sigmoid, exactly as the reference gate activation computes it.
inline float gate_sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// In-place activation of one fused gate row g[0..4H): sigmoid on the
/// input/forget block, tanh on the candidate block, sigmoid on the
/// output block (gate layout [i | f | g | o], see nn/lstm.hpp).
inline void lstm_activate_gates(float* g, std::size_t hidden) {
  for (std::size_t j = 0; j < 2 * hidden; ++j) g[j] = gate_sigmoid(g[j]);
  for (std::size_t j = 2 * hidden; j < 3 * hidden; ++j) g[j] = std::tanh(g[j]);
  for (std::size_t j = 3 * hidden; j < 4 * hidden; ++j) g[j] = gate_sigmoid(g[j]);
}

/// Streaming cell update from one activated gate row: c = f*c + i*g,
/// h = o * tanh(c).
inline void lstm_cell_update(const float* g, std::size_t hidden, float* c, float* h) {
  for (std::size_t j = 0; j < hidden; ++j) {
    const float i_g = g[j];
    const float f_g = g[hidden + j];
    const float g_g = g[2 * hidden + j];
    const float o_g = g[3 * hidden + j];
    c[j] = f_g * c[j] + i_g * g_g;
    h[j] = o_g * std::tanh(c[j]);
  }
}

}  // namespace misuse::nn

#include "nn/next_action_model.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "tensor/ops.hpp"

namespace misuse::nn {

namespace {
constexpr std::uint32_t kModelMagic = 0x4d4c4d4eu;  // "NMLM"
constexpr std::uint32_t kModelVersion = 4;  // v2: layers; v3: embedding; v4: cell kind

std::unique_ptr<RecurrentLayer> make_cell(CellKind kind, std::size_t input, std::size_t hidden,
                                          Rng& rng) {
  switch (kind) {
    case CellKind::kLstm: return std::make_unique<Lstm>(input, hidden, rng);
    case CellKind::kGru: return std::make_unique<Gru>(input, hidden, rng);
  }
  assert(false);
  return nullptr;
}

std::unique_ptr<RecurrentLayer> load_cell(CellKind kind, BinaryReader& r) {
  switch (kind) {
    case CellKind::kLstm: return std::make_unique<Lstm>(Lstm::load(r));
    case CellKind::kGru: return std::make_unique<Gru>(Gru::load(r));
  }
  throw SerializeError("unknown recurrent cell kind");
}

// Concatenates T (B x H) matrices into one (T*B x H) matrix so a single
// dropout mask covers the whole sequence, and splits gradients back.
Matrix stack_timesteps(const std::vector<Matrix>& steps) {
  assert(!steps.empty());
  const std::size_t b = steps.front().rows();
  const std::size_t h = steps.front().cols();
  Matrix big(steps.size() * b, h);
  for (std::size_t t = 0; t < steps.size(); ++t) {
    std::copy(steps[t].flat().begin(), steps[t].flat().end(),
              big.data() + t * b * h);
  }
  return big;
}

std::vector<Matrix> unstack_timesteps(const Matrix& big, std::size_t t_steps) {
  assert(big.rows() % t_steps == 0);
  const std::size_t b = big.rows() / t_steps;
  const std::size_t h = big.cols();
  std::vector<Matrix> out(t_steps, Matrix(b, h));
  for (std::size_t t = 0; t < t_steps; ++t) {
    std::copy(big.data() + t * b * h, big.data() + (t + 1) * b * h, out[t].data());
  }
  return out;
}
}  // namespace

std::size_t SequenceBatch::target_count() const {
  std::size_t n = 0;
  for (const auto& row : targets) {
    for (int t : row) {
      if (t != kIgnoreTarget) ++n;
    }
  }
  return n;
}

NextActionModel::NextActionModel(const ModelConfig& config, Rng& rng)
    : config_(config), dropout_(config.dropout), head_(config.hidden, config.vocab, rng) {
  assert(config.vocab > 0);
  assert(config.layers >= 1);
  if (config.embedding_dim > 0) {
    embedding_ = std::make_unique<Embedding>(config.vocab, config.embedding_dim, rng);
    lstms_.push_back(make_cell(config.cell, config.embedding_dim, config.hidden, rng));
  } else {
    lstms_.push_back(make_cell(config.cell, config.vocab, config.hidden, rng));
  }
  for (std::size_t l = 1; l < config.layers; ++l) {
    lstms_.push_back(make_cell(config.cell, config.hidden, config.hidden, rng));
    inter_dropout_.emplace_back(config.dropout);
  }
}

NextActionModel::NextActionModel(const ModelConfig& config, std::unique_ptr<Embedding> embedding,
                                 std::vector<std::unique_ptr<RecurrentLayer>> lstms, Dense head)
    : config_(config),
      embedding_(std::move(embedding)),
      lstms_(std::move(lstms)),
      dropout_(config.dropout),
      head_(std::move(head)) {
  for (std::size_t l = 1; l < config_.layers; ++l) inter_dropout_.emplace_back(config_.dropout);
}

ParameterList NextActionModel::params() {
  ParameterList all;
  if (embedding_) {
    for (auto* p : embedding_->params()) all.push_back(p);
  }
  for (auto& lstm : lstms_) {
    for (auto* p : lstm->params()) all.push_back(p);
  }
  for (auto* p : head_.params()) all.push_back(p);
  return all;
}

std::size_t NextActionModel::parameter_count() { return misuse::nn::parameter_count(params()); }

void NextActionModel::forward_gather(const SequenceBatch& batch, Rng* rng, Matrix& logits,
                                     std::vector<int>& flat_targets) {
  assert(batch.tokens.size() == batch.targets.size());
  const std::size_t t_steps = batch.time_steps();

  if (embedding_) {
    std::vector<Matrix> embedded(t_steps);
    for (std::size_t t = 0; t < t_steps; ++t) {
      embedding_->lookup(batch.tokens[t], embedded[t]);
    }
    lstms_[0]->forward_dense(embedded);
  } else {
    lstms_[0]->forward(batch.tokens);
  }
  for (std::size_t l = 1; l < lstms_.size(); ++l) {
    std::vector<Matrix> inputs(t_steps);
    for (std::size_t t = 0; t < t_steps; ++t) inputs[t] = lstms_[l - 1]->hidden_at(t);
    if (rng != nullptr) {
      Matrix big = stack_timesteps(inputs);
      inter_dropout_[l - 1].forward_train(big, *rng);
      inputs = unstack_timesteps(big, t_steps);
    }
    lstms_[l]->forward_dense(inputs);
  }
  RecurrentLayer& top = *lstms_.back();

  gather_positions_.clear();
  flat_targets.clear();
  for (std::size_t t = 0; t < batch.targets.size(); ++t) {
    const auto& row = batch.targets[t];
    assert(row.size() == batch.batch_size());
    for (std::size_t b = 0; b < row.size(); ++b) {
      if (row[b] == kIgnoreTarget) continue;
      gather_positions_.emplace_back(t, b);
      flat_targets.push_back(row[b]);
    }
  }

  gathered_hidden_.resize(gather_positions_.size(), config_.hidden);
  for (std::size_t i = 0; i < gather_positions_.size(); ++i) {
    const auto [t, b] = gather_positions_[i];
    const Matrix& h = top.hidden_at(t);
    const float* src = h.data() + b * config_.hidden;
    float* dst = gathered_hidden_.data() + i * config_.hidden;
    std::copy(src, src + config_.hidden, dst);
  }

  if (rng != nullptr) dropout_.forward_train(gathered_hidden_, *rng);
  head_.forward(gathered_hidden_, logits);
}

TrainStepStats NextActionModel::train_batch(const SequenceBatch& batch, Optimizer& optimizer,
                                            Rng& rng, float clip_norm) {
  const ParameterList parameters = params();
  zero_grads(parameters);

  Matrix logits;
  std::vector<int> flat_targets;
  forward_gather(batch, &rng, logits, flat_targets);

  TrainStepStats stats;
  stats.targets = flat_targets.size();
  if (flat_targets.empty()) return stats;

  Matrix d_logits;
  const XentResult xent = softmax_xent_backward(logits, flat_targets, d_logits);
  stats.loss = xent.mean_loss();
  stats.accuracy = xent.accuracy();

  Matrix d_gathered;
  head_.backward(d_logits, d_gathered);
  dropout_.backward(d_gathered);

  // Scatter gathered hidden-state grads back into per-timestep matrices
  // for the top layer.
  const std::size_t t_steps = lstms_.back()->steps();
  const std::size_t batch_rows = lstms_.back()->batch();
  std::vector<Matrix> d_hidden(t_steps, Matrix(batch_rows, config_.hidden));
  for (std::size_t i = 0; i < gather_positions_.size(); ++i) {
    const auto [t, b] = gather_positions_[i];
    float* dst = d_hidden[t].data() + b * config_.hidden;
    const float* src = d_gathered.data() + i * config_.hidden;
    for (std::size_t j = 0; j < config_.hidden; ++j) dst[j] += src[j];
  }

  // BPTT down the stack; inter-layer dropout masks gate the gradients
  // exactly as they gated the activations.
  for (std::size_t l = lstms_.size(); l-- > 1;) {
    std::vector<Matrix> d_inputs;
    lstms_[l]->backward(d_hidden, &d_inputs);
    Matrix big = stack_timesteps(d_inputs);
    inter_dropout_[l - 1].backward(big);
    d_hidden = unstack_timesteps(big, t_steps);
  }
  if (embedding_) {
    std::vector<Matrix> d_embedded;
    lstms_[0]->backward(d_hidden, &d_embedded);
    for (std::size_t t = 0; t < d_embedded.size(); ++t) {
      embedding_->backward(batch.tokens[t], d_embedded[t]);
    }
  } else {
    lstms_[0]->backward(d_hidden, nullptr);
  }

  const float max_norm =
      clip_norm > 0.0f ? clip_norm : std::numeric_limits<float>::infinity();
  stats.grad_norm = clip_grad_norm(parameters, max_norm);
  optimizer.step(parameters);
  return stats;
}

XentResult NextActionModel::evaluate(const SequenceBatch& batch) {
  Matrix logits;
  std::vector<int> flat_targets;
  forward_gather(batch, nullptr, logits, flat_targets);
  if (flat_targets.empty()) return {};
  return softmax_xent_eval(logits, flat_targets);
}

std::vector<double> NextActionModel::target_likelihoods(const SequenceBatch& batch) {
  Matrix logits;
  std::vector<int> flat_targets;
  forward_gather(batch, nullptr, logits, flat_targets);
  return target_probabilities(logits, flat_targets);
}

ModelState NextActionModel::make_state() const {
  ModelState state;
  state.layers.reserve(lstms_.size());
  for (std::size_t l = 0; l < lstms_.size(); ++l) {
    state.layers.emplace_back(1, config_.hidden);
  }
  return state;
}

std::vector<float> NextActionModel::step(ModelState& state, int action) const {
  std::vector<float> probs;
  step_into(state, action, probs);
  return probs;
}

void NextActionModel::step_into(ModelState& state, int action, std::vector<float>& probs) const {
  assert(action == kPadToken ||
         (action >= 0 && static_cast<std::size_t>(action) < config_.vocab));
  assert(state.layers.size() == lstms_.size());
  if (embedding_) {
    embedding_->lookup_row(action, state.scratch_embed);
    lstms_[0]->step_dense_scratch(state.scratch_embed, state.layers[0], state.scratch_gates);
  } else {
    state.scratch_tokens.assign(1, action);
    lstms_[0]->step_scratch(state.scratch_tokens, state.layers[0], state.scratch_gates);
  }
  for (std::size_t l = 1; l < lstms_.size(); ++l) {
    lstms_[l]->step_dense_scratch(state.layers[l - 1].h, state.layers[l], state.scratch_gates);
  }
  head_.infer(state.layers.back().h, state.scratch_logits);
  probs.resize(config_.vocab);
  (void)softmax_row(state.scratch_logits.row(0), probs);
}

double NextActionModel::SessionScore::avg_likelihood() const {
  if (likelihoods.empty()) return 0.0;
  double sum = 0.0;
  for (double v : likelihoods) sum += v;
  return sum / static_cast<double>(likelihoods.size());
}

double NextActionModel::SessionScore::avg_loss() const {
  if (losses.empty()) return 0.0;
  double sum = 0.0;
  for (double v : losses) sum += v;
  return sum / static_cast<double>(losses.size());
}

double NextActionModel::SessionScore::perplexity() const { return std::exp(avg_loss()); }

NextActionModel::SessionScore NextActionModel::score_session(std::span<const int> actions) const {
  SessionScore score;
  if (actions.size() < 2) return score;  // mirrors the < 2 actions filter (§IV-A)
  ModelState state = make_state();
  std::size_t correct = 0;
  for (std::size_t i = 0; i + 1 < actions.size(); ++i) {
    const std::vector<float> probs = step(state, actions[i]);
    const int next = actions[i + 1];
    assert(next >= 0 && static_cast<std::size_t>(next) < config_.vocab);
    const double p = std::max(static_cast<double>(probs[static_cast<std::size_t>(next)]), 1e-12);
    score.likelihoods.push_back(p);
    score.losses.push_back(-std::log(p));
    if (argmax(probs) == static_cast<std::size_t>(next)) ++correct;
  }
  score.accuracy = score.likelihoods.empty()
                       ? 0.0
                       : static_cast<double>(correct) / static_cast<double>(score.likelihoods.size());
  return score;
}

void NextActionModel::save(BinaryWriter& w) const {
  w.write_magic(kModelMagic, kModelVersion);
  w.write<std::uint64_t>(config_.vocab);
  w.write<std::uint64_t>(config_.hidden);
  w.write<std::uint64_t>(config_.layers);
  w.write<std::uint64_t>(config_.embedding_dim);
  w.write<std::int32_t>(static_cast<std::int32_t>(config_.cell));
  w.write<float>(config_.dropout);
  if (embedding_) embedding_->save(w);
  for (const auto& lstm : lstms_) lstm->save(w);
  head_.save(w);
}

NextActionModel NextActionModel::clone() const {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter w(buffer);
  save(w);
  BinaryReader r(buffer);
  return load(r);
}

NextActionModel NextActionModel::load(BinaryReader& r) {
  const std::uint32_t version = r.read_magic(kModelMagic);
  ModelConfig config;
  config.vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.hidden = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.layers = version >= 2 ? static_cast<std::size_t>(r.read<std::uint64_t>()) : 1;
  config.embedding_dim = version >= 3 ? static_cast<std::size_t>(r.read<std::uint64_t>()) : 0;
  config.cell = version >= 4 ? static_cast<CellKind>(r.read<std::int32_t>()) : CellKind::kLstm;
  config.dropout = r.read<float>();
  std::unique_ptr<Embedding> embedding;
  if (config.embedding_dim > 0) {
    embedding = std::make_unique<Embedding>(Embedding::load(r));
    if (embedding->vocab() != config.vocab || embedding->dim() != config.embedding_dim) {
      throw SerializeError("embedding archive shape mismatch");
    }
  }
  std::vector<std::unique_ptr<RecurrentLayer>> lstms;
  for (std::size_t l = 0; l < config.layers; ++l) lstms.push_back(load_cell(config.cell, r));
  Dense head = Dense::load(r);
  const std::size_t expected_input =
      config.embedding_dim > 0 ? config.embedding_dim : config.vocab;
  if (lstms.front()->input_dim() != expected_input || lstms.front()->hidden() != config.hidden ||
      head.in_dim() != config.hidden || head.out_dim() != config.vocab) {
    throw SerializeError("model archive shape mismatch");
  }
  for (std::size_t l = 1; l < config.layers; ++l) {
    if (lstms[l]->input_dim() != config.hidden || lstms[l]->hidden() != config.hidden) {
      throw SerializeError("stacked layer shape mismatch");
    }
  }
  return NextActionModel(config, std::move(embedding), std::move(lstms), std::move(head));
}

}  // namespace misuse::nn

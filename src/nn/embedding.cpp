#include "nn/embedding.hpp"

#include <algorithm>
#include <cassert>

namespace misuse::nn {

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng) : Embedding(vocab, dim) {
  table_.value.init_gaussian(rng, 0.1f);
}

Embedding::Embedding(std::size_t vocab, std::size_t dim) : table_("embedding", vocab, dim) {
  assert(vocab > 0 && dim > 0);
}

void Embedding::lookup(const std::vector<int>& tokens, Matrix& out) const {
  out.resize(tokens.size(), dim());
  for (std::size_t r = 0; r < tokens.size(); ++r) {
    const int tok = tokens[r];
    if (tok < 0) continue;  // padding -> zero row
    assert(static_cast<std::size_t>(tok) < vocab());
    const auto row = table_.value.row(static_cast<std::size_t>(tok));
    std::copy(row.begin(), row.end(), out.row(r).begin());
  }
}

void Embedding::backward(const std::vector<int>& tokens, const Matrix& d_out) {
  assert(d_out.rows() == tokens.size());
  assert(d_out.cols() == dim());
  for (std::size_t r = 0; r < tokens.size(); ++r) {
    const int tok = tokens[r];
    if (tok < 0) continue;
    auto grad_row = table_.grad.row(static_cast<std::size_t>(tok));
    const auto src = d_out.row(r);
    for (std::size_t j = 0; j < grad_row.size(); ++j) grad_row[j] += src[j];
  }
}

void Embedding::lookup_row(int token, Matrix& out) const {
  out.resize(1, dim());
  if (token < 0) return;
  assert(static_cast<std::size_t>(token) < vocab());
  const auto row = table_.value.row(static_cast<std::size_t>(token));
  std::copy(row.begin(), row.end(), out.row(0).begin());
}

void Embedding::save(BinaryWriter& w) const { table_.value.save(w); }

Embedding Embedding::load(BinaryReader& r) {
  Matrix table = Matrix::load(r);
  Embedding e(table.rows(), table.cols());
  e.table_.value = std::move(table);
  return e;
}

}  // namespace misuse::nn

// Learned action embedding. The paper feeds one-hot vectors straight into
// the LSTM (equivalent to an identity embedding of dimension d); with
// ~300 actions and 256 units that input projection is the largest weight
// block in the model. An explicit embedding of dimension e << d factors
// it — standard practice in the neural language models the paper builds
// on (Bengio et al. 2003, ref. [18]) — and is exposed through
// ModelConfig::embedding_dim as an optional architecture axis.
#pragma once

#include <vector>

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse::nn {

class Embedding {
 public:
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng);
  Embedding(std::size_t vocab, std::size_t dim);

  std::size_t vocab() const { return table_.value.rows(); }
  std::size_t dim() const { return table_.value.cols(); }

  ParameterList params() { return {&table_}; }

  /// Looks up one timestep of token ids into a (B x dim) matrix; padding
  /// tokens (< 0) map to the zero vector.
  void lookup(const std::vector<int>& tokens, Matrix& out) const;

  /// Accumulates dL/dtable from one timestep's gradient (B x dim).
  void backward(const std::vector<int>& tokens, const Matrix& d_out);

  /// Single-row lookup for streaming inference.
  void lookup_row(int token, Matrix& out) const;

  void save(BinaryWriter& w) const;
  static Embedding load(BinaryReader& r);

 private:
  Parameter table_;  // vocab x dim
};

}  // namespace misuse::nn

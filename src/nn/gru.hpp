// Gated Recurrent Unit (Cho et al. 2014) with hand-derived BPTT — the
// main alternative recurrent cell to the paper's LSTM choice, exposed
// through the shared RecurrentLayer interface so the whole pipeline can
// run on either (bench/abl_cell_kind).
//
//   z = sigmoid(x Wxz + h Whz + bz)           update gate
//   r = sigmoid(x Wxr + h Whr + br)           reset gate
//   n = tanh(x Wxn + (r * h) Whn + bn)        candidate
//   h' = (1 - z) * n + z * h
//
// z and r are fused into one 2H block; the candidate path stays separate
// because its recurrent product uses the reset-gated state. Streaming
// reuses LstmState with the cell vector `c` unused.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/lstm.hpp"  // LstmState, kPadToken
#include "nn/parameter.hpp"
#include "nn/recurrent.hpp"
#include "util/rng.hpp"

namespace misuse::nn {

class Gru final : public RecurrentLayer {
 public:
  Gru(std::size_t vocab, std::size_t hidden, Rng& rng);
  Gru(std::size_t vocab, std::size_t hidden);

  std::size_t vocab() const { return vocab_; }
  std::size_t input_dim() const override { return vocab_; }
  std::size_t hidden() const override { return hidden_; }

  ParameterList params() override;

  void forward(const std::vector<std::vector<int>>& tokens) override;
  void forward_dense(const std::vector<Matrix>& inputs) override;

  const Matrix& hidden_at(std::size_t t) const override { return steps_.at(t).h; }
  std::size_t steps() const override { return steps_.size(); }
  std::size_t batch() const override { return batch_; }

  void backward(const std::vector<Matrix>& d_hidden,
                std::vector<Matrix>* d_inputs = nullptr) override;

  void step(const std::vector<int>& tokens_b, LstmState& state) const override;
  void step_dense(const Matrix& input, LstmState& state) const override;

  void save(BinaryWriter& w) const override;
  static Gru load(BinaryReader& r);

 private:
  struct StepRecord {
    std::vector<int> tokens;  // token mode
    Matrix dense_input;       // dense mode
    Matrix zr;                // B x 2H, post-sigmoid [z | r]
    Matrix n;                 // B x H, post-tanh candidate
    Matrix rh;                // B x H, r * h_prev (needed for dWhn)
    Matrix h;                 // B x H
  };

  /// zr pre-activations = bias + x Wx_zr + h_prev Wh_zr.
  void compute_zr(const StepRecord& rec, const Matrix& h_prev, Matrix& zr) const;
  /// n pre-activations = bias + x Wx_n + rh Wh_n.
  void compute_n(const StepRecord& rec, const Matrix& rh, Matrix& n) const;
  void add_token_rows(const std::vector<int>& tokens, const Parameter& weights,
                      Matrix& out) const;
  void run_forward();

  std::size_t vocab_;
  std::size_t hidden_;
  Parameter wx_zr_;  // vocab x 2H
  Parameter wh_zr_;  // H x 2H
  Parameter b_zr_;   // 1 x 2H
  Parameter wx_n_;   // vocab x H
  Parameter wh_n_;   // H x H
  Parameter b_n_;    // 1 x H
  std::vector<StepRecord> steps_;
  std::size_t batch_ = 0;
  bool dense_mode_ = false;
};

}  // namespace misuse::nn

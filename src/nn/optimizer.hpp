// First-order optimizers over a ParameterList. The paper trains with
// learning rate 0.001 (the Keras Adam default), so Adam is the primary
// optimizer; SGD-with-momentum and RMSProp are provided for ablations.
#pragma once

#include <memory>
#include <vector>

#include "nn/parameter.hpp"

namespace misuse::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in `params`.
  /// State is keyed by position, so the same list (same order) must be
  /// passed on every call.
  virtual void step(const ParameterList& params) = 0;

  virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f);
  void step(const ParameterList& params) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-7f);
  void step(const ParameterList& params) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  long long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

class RmsProp final : public Optimizer {
 public:
  explicit RmsProp(float lr = 1e-3f, float decay = 0.9f, float eps = 1e-7f);
  void step(const ParameterList& params) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }

 private:
  float lr_, decay_, eps_;
  std::vector<Matrix> cache_;
};

enum class OptimizerKind { kSgd, kAdam, kRmsProp };

/// Factory used by experiment configs ("adam", "sgd", "rmsprop").
std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, float lr);
OptimizerKind parse_optimizer(const std::string& name);

}  // namespace misuse::nn

#include "nn/dropout.hpp"

#include <cassert>

namespace misuse::nn {

Dropout::Dropout(float rate) : rate_(rate), keep_(1.0f - rate) {
  assert(rate >= 0.0f && rate < 1.0f);
}

void Dropout::forward_train(Matrix& x, Rng& rng) {
  if (rate_ == 0.0f) return;
  mask_.resize(x.rows(), x.cols());
  const float inv_keep = 1.0f / keep_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float m = rng.bernoulli(keep_) ? inv_keep : 0.0f;
    mask_.flat()[i] = m;
    x.flat()[i] *= m;
  }
}

void Dropout::backward(Matrix& d_x) const {
  if (rate_ == 0.0f) return;
  assert(d_x.same_shape(mask_));
  for (std::size_t i = 0; i < d_x.size(); ++i) d_x.flat()[i] *= mask_.flat()[i];
}

}  // namespace misuse::nn

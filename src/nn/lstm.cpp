#include "nn/lstm.hpp"

#include <cassert>
#include <cmath>

#include "nn/gate_math.hpp"
#include "tensor/ops.hpp"

namespace misuse::nn {

Lstm::Lstm(std::size_t vocab, std::size_t hidden, Rng& rng) : Lstm(vocab, hidden) {
  wx_.value.init_xavier(rng);
  wh_.value.init_xavier(rng);
  // Forget-gate bias at +1: standard LSTM practice so early training does
  // not erase the cell state.
  for (std::size_t j = hidden_; j < 2 * hidden_; ++j) b_.value(0, j) = 1.0f;
}

Lstm::Lstm(std::size_t vocab, std::size_t hidden)
    : vocab_(vocab),
      hidden_(hidden),
      wx_("lstm.wx", vocab, 4 * hidden),
      wh_("lstm.wh", hidden, 4 * hidden),
      b_("lstm.b", 1, 4 * hidden) {
  assert(vocab > 0 && hidden > 0);
}

ParameterList Lstm::params() { return {&wx_, &wh_, &b_}; }

void Lstm::compute_gates(const std::vector<int>& tokens_b, const Matrix& h_prev,
                         Matrix& gates) const {
  const std::size_t b = tokens_b.size();
  const std::size_t g4 = 4 * hidden_;
  assert(gates.rows() == b && gates.cols() == g4);
  // gates = bias (broadcast) + Wx[token] + h_prev * Wh
  for (std::size_t r = 0; r < b; ++r) {
    float* row = gates.data() + r * g4;
    const float* bias = b_.value.data();
    for (std::size_t j = 0; j < g4; ++j) row[j] = bias[j];
    const int tok = tokens_b[r];
    if (tok != kPadToken) {
      assert(tok >= 0 && static_cast<std::size_t>(tok) < vocab_);
      const float* wrow = wx_.value.data() + static_cast<std::size_t>(tok) * g4;
      for (std::size_t j = 0; j < g4; ++j) row[j] += wrow[j];
    }
  }
  gemm(1.0f, h_prev, wh_.value, 1.0f, gates);
}

void Lstm::apply_gate_nonlinearities(Matrix& gates, std::size_t hidden) {
  // Shared with the inference engine's scalar kernel (nn/gate_math.hpp)
  // so both paths compile the identical expression tree.
  const std::size_t g4 = 4 * hidden;
  for (std::size_t r = 0; r < gates.rows(); ++r) {
    lstm_activate_gates(gates.data() + r * g4, hidden);
  }
}

void Lstm::compute_gates_dense(const Matrix& input, const Matrix& h_prev, Matrix& gates) const {
  assert(input.rows() == gates.rows());
  assert(input.cols() == vocab_);
  // gates = bias (broadcast) + X * Wx + h_prev * Wh.
  for (std::size_t r = 0; r < gates.rows(); ++r) {
    float* row = gates.data() + r * gates.cols();
    const float* bias = b_.value.data();
    for (std::size_t j = 0; j < gates.cols(); ++j) row[j] = bias[j];
  }
  gemm(1.0f, input, wx_.value, 1.0f, gates);
  gemm(1.0f, h_prev, wh_.value, 1.0f, gates);
}

void Lstm::forward_step(StepRecord& rec, const Matrix& c_prev) {
  apply_gate_nonlinearities(rec.gates, hidden_);
  rec.c.resize(batch_, hidden_);
  rec.tanh_c.resize(batch_, hidden_);
  rec.h.resize(batch_, hidden_);
  for (std::size_t r = 0; r < batch_; ++r) {
    const float* g = rec.gates.data() + r * 4 * hidden_;
    const float* cp = c_prev.data() + r * hidden_;
    float* c = rec.c.data() + r * hidden_;
    float* tc = rec.tanh_c.data() + r * hidden_;
    float* h = rec.h.data() + r * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) {
      const float i_g = g[j];
      const float f_g = g[hidden_ + j];
      const float g_g = g[2 * hidden_ + j];
      const float o_g = g[3 * hidden_ + j];
      c[j] = f_g * cp[j] + i_g * g_g;
      tc[j] = std::tanh(c[j]);
      h[j] = o_g * tc[j];
    }
  }
}

void Lstm::forward(const std::vector<std::vector<int>>& tokens) {
  assert(!tokens.empty());
  batch_ = tokens.front().size();
  dense_mode_ = false;
  steps_.clear();
  steps_.reserve(tokens.size());

  Matrix h_prev(batch_, hidden_);
  Matrix c_prev(batch_, hidden_);

  for (const auto& tokens_b : tokens) {
    assert(tokens_b.size() == batch_);
    StepRecord rec;
    rec.tokens = tokens_b;
    rec.gates.resize(batch_, 4 * hidden_);
    compute_gates(tokens_b, h_prev, rec.gates);
    forward_step(rec, c_prev);
    h_prev = rec.h;
    c_prev = rec.c;
    steps_.push_back(std::move(rec));
  }
}

void Lstm::forward_dense(const std::vector<Matrix>& inputs) {
  assert(!inputs.empty());
  batch_ = inputs.front().rows();
  dense_mode_ = true;
  steps_.clear();
  steps_.reserve(inputs.size());

  Matrix h_prev(batch_, hidden_);
  Matrix c_prev(batch_, hidden_);

  for (const auto& input : inputs) {
    assert(input.rows() == batch_);
    StepRecord rec;
    rec.dense_input = input;
    rec.gates.resize(batch_, 4 * hidden_);
    compute_gates_dense(input, h_prev, rec.gates);
    forward_step(rec, c_prev);
    h_prev = rec.h;
    c_prev = rec.c;
    steps_.push_back(std::move(rec));
  }
}

void Lstm::backward(const std::vector<Matrix>& d_hidden, std::vector<Matrix>* d_inputs) {
  assert(d_hidden.size() == steps_.size());
  assert(d_inputs == nullptr || dense_mode_);
  if (d_inputs != nullptr) d_inputs->assign(steps_.size(), Matrix(batch_, vocab_));
  const std::size_t g4 = 4 * hidden_;

  Matrix dh(batch_, hidden_);       // dL/dh_t flowing backward
  Matrix dc(batch_, hidden_);       // dL/dc_t flowing backward
  Matrix d_gates(batch_, g4);       // pre-activation gate grads at step t
  Matrix dh_from_rec(batch_, hidden_);

  for (std::size_t ti = steps_.size(); ti > 0; --ti) {
    const std::size_t t = ti - 1;
    const StepRecord& rec = steps_[t];
    assert(d_hidden[t].rows() == batch_ && d_hidden[t].cols() == hidden_);

    // dh = loss contribution at t + recurrent contribution from t+1.
    for (std::size_t i = 0; i < dh.size(); ++i) {
      dh.flat()[i] = d_hidden[t].flat()[i] + (ti == steps_.size() ? 0.0f : dh_from_rec.flat()[i]);
    }

    const Matrix* c_prev = (t == 0) ? nullptr : &steps_[t - 1].c;

    for (std::size_t r = 0; r < batch_; ++r) {
      const float* g = rec.gates.data() + r * g4;
      const float* tc = rec.tanh_c.data() + r * hidden_;
      const float* cp = c_prev ? c_prev->data() + r * hidden_ : nullptr;
      const float* dhr = dh.data() + r * hidden_;
      float* dcr = dc.data() + r * hidden_;
      float* dg = d_gates.data() + r * g4;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float i_g = g[j];
        const float f_g = g[hidden_ + j];
        const float g_g = g[2 * hidden_ + j];
        const float o_g = g[3 * hidden_ + j];
        const float d_o = dhr[j] * tc[j];
        // dc accumulates the path through h_t (via tanh) and the direct
        // path from c_{t+1} already stored in dcr.
        const float dct = dcr[j] + dhr[j] * o_g * (1.0f - tc[j] * tc[j]);
        const float d_i = dct * g_g;
        const float d_g = dct * i_g;
        const float d_f = cp ? dct * cp[j] : 0.0f;
        // Pre-activation gradients.
        dg[j] = d_i * i_g * (1.0f - i_g);
        dg[hidden_ + j] = d_f * f_g * (1.0f - f_g);
        dg[2 * hidden_ + j] = d_g * (1.0f - g_g * g_g);
        dg[3 * hidden_ + j] = d_o * o_g * (1.0f - o_g);
        // dL/dc_{t-1} = dct * f_t.
        dcr[j] = dct * f_g;
      }
    }

    // Parameter gradients.
    if (dense_mode_) {
      // dWx += X_t^T * d_gates; dX_t = d_gates * Wx^T.
      gemm_at_b(1.0f, rec.dense_input, d_gates, 1.0f, wx_.grad);
      if (d_inputs != nullptr) {
        gemm_a_bt(1.0f, d_gates, wx_.value, 0.0f, (*d_inputs)[t]);
      }
    } else {
      // dWx: scatter-add each batch row's d_gates into the token's row.
      for (std::size_t r = 0; r < batch_; ++r) {
        const int tok = rec.tokens[r];
        if (tok == kPadToken) continue;
        float* wrow = wx_.grad.data() + static_cast<std::size_t>(tok) * g4;
        const float* dg = d_gates.data() + r * g4;
        for (std::size_t j = 0; j < g4; ++j) wrow[j] += dg[j];
      }
    }
    // dWh += h_{t-1}^T * d_gates.
    if (t > 0) {
      gemm_at_b(1.0f, steps_[t - 1].h, d_gates, 1.0f, wh_.grad);
    }
    // db += column sums of d_gates.
    for (std::size_t r = 0; r < batch_; ++r) {
      const float* dg = d_gates.data() + r * g4;
      float* db = b_.grad.data();
      for (std::size_t j = 0; j < g4; ++j) db[j] += dg[j];
    }
    // dh_{t-1} (recurrent input grad) = d_gates * Wh^T.
    if (t > 0) {
      gemm_a_bt(1.0f, d_gates, wh_.value, 0.0f, dh_from_rec);
    }
  }
}

void Lstm::finish_state_update(const Matrix& gates, LstmState& state) const {
  // Shared with the inference engine's scalar kernel (nn/gate_math.hpp).
  for (std::size_t r = 0; r < gates.rows(); ++r) {
    lstm_cell_update(gates.data() + r * 4 * hidden_, hidden_, state.c.data() + r * hidden_,
                     state.h.data() + r * hidden_);
  }
}

void Lstm::step(const std::vector<int>& tokens_b, LstmState& state) const {
  Matrix gates;
  step_scratch(tokens_b, state, gates);
}

void Lstm::step_scratch(const std::vector<int>& tokens_b, LstmState& state,
                        Matrix& gate_scratch) const {
  const std::size_t b = tokens_b.size();
  assert(state.h.rows() == b && state.h.cols() == hidden_);
  gate_scratch.resize(b, 4 * hidden_);
  compute_gates(tokens_b, state.h, gate_scratch);
  apply_gate_nonlinearities(gate_scratch, hidden_);
  finish_state_update(gate_scratch, state);
}

void Lstm::step_dense(const Matrix& input, LstmState& state) const {
  Matrix gates;
  step_dense_scratch(input, state, gates);
}

void Lstm::step_dense_scratch(const Matrix& input, LstmState& state, Matrix& gate_scratch) const {
  assert(state.h.rows() == input.rows() && state.h.cols() == hidden_);
  gate_scratch.resize(input.rows(), 4 * hidden_);
  compute_gates_dense(input, state.h, gate_scratch);
  apply_gate_nonlinearities(gate_scratch, hidden_);
  finish_state_update(gate_scratch, state);
}

void Lstm::save(BinaryWriter& w) const {
  w.write<std::uint64_t>(vocab_);
  w.write<std::uint64_t>(hidden_);
  wx_.value.save(w);
  wh_.value.save(w);
  b_.value.save(w);
}

Lstm Lstm::load(BinaryReader& r) {
  const auto vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  const auto hidden = static_cast<std::size_t>(r.read<std::uint64_t>());
  Lstm lstm(vocab, hidden);
  lstm.wx_.value = Matrix::load(r);
  lstm.wh_.value = Matrix::load(r);
  lstm.b_.value = Matrix::load(r);
  if (lstm.wx_.value.rows() != vocab || lstm.wx_.value.cols() != 4 * hidden ||
      lstm.wh_.value.rows() != hidden || lstm.b_.value.cols() != 4 * hidden) {
    throw SerializeError("LSTM archive shape mismatch");
  }
  lstm.wx_.grad.resize(vocab, 4 * hidden);
  lstm.wh_.grad.resize(hidden, 4 * hidden);
  lstm.b_.grad.resize(1, 4 * hidden);
  return lstm;
}

}  // namespace misuse::nn

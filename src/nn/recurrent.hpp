// Abstract recurrent layer. The paper commits to LSTMs following the
// intrusion-detection literature (§II); making the cell pluggable turns
// that commitment into a measurable choice (bench/abl_cell_kind compares
// LSTM against GRU under the identical pipeline).
//
// Both cell types share LstmState as their streaming state; cells without
// a separate memory vector (GRU) simply leave `c` unused.
#pragma once

#include <vector>

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"
#include "util/serialize.hpp"

namespace misuse::nn {

// Defined in lstm.hpp; shared by every cell type.
struct LstmState;

class RecurrentLayer {
 public:
  virtual ~RecurrentLayer() = default;

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t hidden() const = 0;
  virtual ParameterList params() = 0;

  /// Token-id forward (one-hot inputs; kPadToken = zero vector).
  virtual void forward(const std::vector<std::vector<int>>& tokens) = 0;
  /// Dense forward for stacked layers / embeddings.
  virtual void forward_dense(const std::vector<Matrix>& inputs) = 0;

  virtual const Matrix& hidden_at(std::size_t t) const = 0;
  virtual std::size_t steps() const = 0;
  virtual std::size_t batch() const = 0;

  /// BPTT; fills d_inputs (dense mode only) when non-null.
  virtual void backward(const std::vector<Matrix>& d_hidden, std::vector<Matrix>* d_inputs) = 0;

  virtual void step(const std::vector<int>& tokens, LstmState& state) const = 0;
  virtual void step_dense(const Matrix& input, LstmState& state) const = 0;

  /// Allocation-free step variants: the caller supplies a reusable gate
  /// scratch matrix. Cells that don't override these fall back to the
  /// allocating step (identical results, just slower).
  virtual void step_scratch(const std::vector<int>& tokens, LstmState& state,
                            Matrix& gate_scratch) const {
    (void)gate_scratch;
    step(tokens, state);
  }
  virtual void step_dense_scratch(const Matrix& input, LstmState& state,
                                  Matrix& gate_scratch) const {
    (void)gate_scratch;
    step_dense(input, state);
  }

  virtual void save(BinaryWriter& w) const = 0;
};

enum class CellKind : int { kLstm = 0, kGru = 1 };

const char* cell_kind_name(CellKind kind);

}  // namespace misuse::nn

// Fully connected layer: Y = X * W + b. Final projection from LSTM
// hidden state to the action-vocabulary logits in the paper architecture.
#pragma once

#include "nn/parameter.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse::nn {

class Dense {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng);
  Dense(std::size_t in_dim, std::size_t out_dim);

  std::size_t in_dim() const { return w_.value.rows(); }
  std::size_t out_dim() const { return w_.value.cols(); }

  ParameterList params();

  /// y (N x out) = x (N x in) * W + b. Stores x for backward.
  void forward(const Matrix& x, Matrix& y);

  /// Inference-only forward (no activation recording).
  void infer(const Matrix& x, Matrix& y) const;

  /// Given dL/dy, accumulates dW/db and writes dL/dx.
  void backward(const Matrix& d_y, Matrix& d_x);

  void save(BinaryWriter& w) const;
  static Dense load(BinaryReader& r);

  /// Read-only weight views for the inference engine's packer: W is
  /// (in x out), bias (1 x out).
  const Matrix& weights() const { return w_.value; }
  const Matrix& bias() const { return b_.value; }

 private:
  Parameter w_;
  Parameter b_;
  Matrix last_input_;
};

}  // namespace misuse::nn

#include "nn/softmax_xent.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace misuse::nn {

XentResult softmax_xent_backward(const Matrix& logits, std::span<const int> targets,
                                 Matrix& d_logits) {
  assert(targets.size() == logits.rows());
  const std::size_t n = logits.rows();
  const std::size_t d = logits.cols();
  d_logits.resize(n, d);
  XentResult result;
  result.rows = n;
  const float inv_n = n == 0 ? 0.0f : 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const int target = targets[r];
    assert(target >= 0 && static_cast<std::size_t>(target) < d);
    auto probs = d_logits.row(r);
    const RowSoftmax rs = softmax_row(logits.row(r), probs);
    const float target_logit = logits(r, static_cast<std::size_t>(target));
    result.total_loss += -(static_cast<double>(target_logit) - rs.max - rs.log_sum);
    if (argmax(logits.row(r)) == static_cast<std::size_t>(target)) ++result.correct;
    // Gradient of mean loss: (p - y) / N.
    for (std::size_t j = 0; j < d; ++j) probs[j] *= inv_n;
    probs[static_cast<std::size_t>(target)] -= inv_n;
  }
  return result;
}

XentResult softmax_xent_eval(const Matrix& logits, std::span<const int> targets) {
  assert(targets.size() == logits.rows());
  XentResult result;
  result.rows = logits.rows();
  std::vector<float> probs(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int target = targets[r];
    assert(target >= 0 && static_cast<std::size_t>(target) < logits.cols());
    const RowSoftmax rs = softmax_row(logits.row(r), probs);
    const float target_logit = logits(r, static_cast<std::size_t>(target));
    result.total_loss += -(static_cast<double>(target_logit) - rs.max - rs.log_sum);
    if (argmax(logits.row(r)) == static_cast<std::size_t>(target)) ++result.correct;
  }
  return result;
}

std::vector<double> target_probabilities(const Matrix& logits, std::span<const int> targets) {
  assert(targets.size() == logits.rows());
  std::vector<double> out(logits.rows());
  std::vector<float> probs(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int target = targets[r];
    assert(target >= 0 && static_cast<std::size_t>(target) < logits.cols());
    softmax_row(logits.row(r), probs);
    out[r] = probs[static_cast<std::size_t>(target)];
  }
  return out;
}

}  // namespace misuse::nn

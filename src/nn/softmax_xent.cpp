#include "nn/softmax_xent.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace misuse::nn {

namespace {
// Writes softmax of `logits_row` into `probs_row`, returns log-partition
// pieces needed for the loss: (max, log(sum exp(shifted))).
struct RowSoftmax {
  float max;
  float log_sum;
};

RowSoftmax row_softmax(std::span<const float> logits_row, std::span<float> probs_row) {
  const float mx = *std::max_element(logits_row.begin(), logits_row.end());
  double sum = 0.0;
  for (std::size_t j = 0; j < logits_row.size(); ++j) {
    const float e = std::exp(logits_row[j] - mx);
    probs_row[j] = e;
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (auto& p : probs_row) p *= inv;
  return {mx, static_cast<float>(std::log(sum))};
}
}  // namespace

XentResult softmax_xent_backward(const Matrix& logits, std::span<const int> targets,
                                 Matrix& d_logits) {
  assert(targets.size() == logits.rows());
  const std::size_t n = logits.rows();
  const std::size_t d = logits.cols();
  d_logits.resize(n, d);
  XentResult result;
  result.rows = n;
  const float inv_n = n == 0 ? 0.0f : 1.0f / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const int target = targets[r];
    assert(target >= 0 && static_cast<std::size_t>(target) < d);
    auto probs = d_logits.row(r);
    const RowSoftmax rs = row_softmax(logits.row(r), probs);
    const float target_logit = logits(r, static_cast<std::size_t>(target));
    result.total_loss += -(static_cast<double>(target_logit) - rs.max - rs.log_sum);
    if (argmax(logits.row(r)) == static_cast<std::size_t>(target)) ++result.correct;
    // Gradient of mean loss: (p - y) / N.
    for (std::size_t j = 0; j < d; ++j) probs[j] *= inv_n;
    probs[static_cast<std::size_t>(target)] -= inv_n;
  }
  return result;
}

XentResult softmax_xent_eval(const Matrix& logits, std::span<const int> targets) {
  assert(targets.size() == logits.rows());
  XentResult result;
  result.rows = logits.rows();
  std::vector<float> probs(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int target = targets[r];
    assert(target >= 0 && static_cast<std::size_t>(target) < logits.cols());
    const RowSoftmax rs = row_softmax(logits.row(r), probs);
    const float target_logit = logits(r, static_cast<std::size_t>(target));
    result.total_loss += -(static_cast<double>(target_logit) - rs.max - rs.log_sum);
    if (argmax(logits.row(r)) == static_cast<std::size_t>(target)) ++result.correct;
  }
  return result;
}

std::vector<double> target_probabilities(const Matrix& logits, std::span<const int> targets) {
  assert(targets.size() == logits.rows());
  std::vector<double> out(logits.rows());
  std::vector<float> probs(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int target = targets[r];
    assert(target >= 0 && static_cast<std::size_t>(target) < logits.cols());
    row_softmax(logits.row(r), probs);
    out[r] = probs[static_cast<std::size_t>(target)];
  }
  return out;
}

}  // namespace misuse::nn

#include "nn/optimizer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace misuse::nn {

namespace {
void ensure_state(std::vector<Matrix>& state, const ParameterList& params) {
  if (state.size() == params.size()) return;
  assert(state.empty() && "parameter list changed between optimizer steps");
  state.reserve(params.size());
  for (const auto* p : params) state.emplace_back(p->value.rows(), p->value.cols());
}
}  // namespace

Sgd::Sgd(float lr, float momentum) : lr_(lr), momentum_(momentum) {
  assert(lr > 0.0f);
  assert(momentum >= 0.0f && momentum < 1.0f);
}

void Sgd::step(const ParameterList& params) {
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto vel = velocity_[i].flat();
    for (std::size_t j = 0; j < value.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * grad[j];
      value[j] += vel[j];
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  assert(lr > 0.0f);
}

void Adam::step(const ParameterList& params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const float alpha = lr_ * std::sqrt(bias2) / bias1;
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto m = m_[i].flat();
    auto v = v_[i].flat();
    for (std::size_t j = 0; j < value.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      value[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}

RmsProp::RmsProp(float lr, float decay, float eps) : lr_(lr), decay_(decay), eps_(eps) {
  assert(lr > 0.0f);
}

void RmsProp::step(const ParameterList& params) {
  ensure_state(cache_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto cache = cache_[i].flat();
    for (std::size_t j = 0; j < value.size(); ++j) {
      cache[j] = decay_ * cache[j] + (1.0f - decay_) * grad[j] * grad[j];
      value[j] -= lr_ * grad[j] / (std::sqrt(cache[j]) + eps_);
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, float lr) {
  switch (kind) {
    case OptimizerKind::kSgd: return std::make_unique<Sgd>(lr, 0.9f);
    case OptimizerKind::kAdam: return std::make_unique<Adam>(lr);
    case OptimizerKind::kRmsProp: return std::make_unique<RmsProp>(lr);
  }
  throw std::invalid_argument("unknown optimizer kind");
}

OptimizerKind parse_optimizer(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "sgd") return OptimizerKind::kSgd;
  if (lower == "rmsprop") return OptimizerKind::kRmsProp;
  if (lower == "adam") return OptimizerKind::kAdam;
  throw std::invalid_argument("unknown optimizer name: " + name);
}

}  // namespace misuse::nn

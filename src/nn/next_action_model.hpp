// The paper's behavior model (§IV-A): one LSTM layer (256 units at paper
// scale), a dropout layer (rate 0.4), and a dense softmax head predicting
// a probability distribution over the action vocabulary for the next
// action given the observed prefix. Trained with minibatch cross-entropy
// (batch 32, lr 0.001).
//
// The model exposes three surfaces:
//   * batched training/evaluation over SequenceBatch (moving-window or
//     full-session targets — the batching policy lives in src/lm),
//   * streaming inference for the online monitor (state in, probability
//     distribution out, one action at a time),
//   * binary save/load for deployment after the training phase (Fig. 2).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/dropout.hpp"
#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "nn/recurrent.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "util/rng.hpp"

namespace misuse::nn {

/// Target id meaning "no loss at this position" (e.g. padding tail).
inline constexpr int kIgnoreTarget = -1;

/// A time-major minibatch: tokens[t][b] is the input action at step t for
/// batch row b (kPadToken for the zero vector), targets[t][b] the action
/// the model must predict at step t (kIgnoreTarget to skip the position).
struct SequenceBatch {
  std::vector<std::vector<int>> tokens;
  std::vector<std::vector<int>> targets;

  std::size_t time_steps() const { return tokens.size(); }
  std::size_t batch_size() const { return tokens.empty() ? 0 : tokens.front().size(); }
  /// Number of positions that contribute loss.
  std::size_t target_count() const;
};

struct ModelConfig {
  std::size_t vocab = 0;     // d — number of distinct actions
  std::size_t hidden = 256;  // LSTM units per layer (paper value)
  std::size_t layers = 1;    // stacked LSTM layers (paper uses 1; >1 is the
                             // architecture axis of the per-cluster
                             // hyperparameter re-evaluation left as future
                             // work in SS IV-A)
  /// Learned embedding dimension; 0 feeds one-hot vectors straight into
  /// the LSTM (the paper's encoding, SS IV-A).
  std::size_t embedding_dim = 0;
  /// Recurrent cell type (paper value: LSTM).
  CellKind cell = CellKind::kLstm;
  float dropout = 0.4f;      // paper value; also applied between layers
};

/// Streaming state of the whole stack (one LstmState per layer), plus the
/// forward-pass scratch buffers for that stream. Scratch lives here — not
/// in the (shared, const) model — so concurrent streams never contend,
/// and step() allocates nothing once the buffers reach steady state.
struct ModelState {
  std::vector<LstmState> layers;
  Matrix scratch_gates;   // 1 x 4H fused gate pre-activations
  Matrix scratch_logits;  // 1 x vocab head output
  Matrix scratch_embed;   // 1 x embedding_dim (embedding models only)
  std::vector<int> scratch_tokens;  // single-token input buffer
  void reset() {
    for (auto& l : layers) l.reset();
  }
};

struct TrainStepStats {
  double loss = 0.0;      // mean cross-entropy over target positions
  double accuracy = 0.0;  // next-action argmax accuracy
  float grad_norm = 0.0f; // pre-clip global gradient norm
  std::size_t targets = 0;
};

class NextActionModel {
 public:
  NextActionModel(const ModelConfig& config, Rng& rng);

  const ModelConfig& config() const { return config_; }
  ParameterList params();
  std::size_t parameter_count();

  /// One optimizer step on a minibatch; returns loss/accuracy over the
  /// batch's target positions. `clip_norm` <= 0 disables clipping.
  TrainStepStats train_batch(const SequenceBatch& batch, Optimizer& optimizer, Rng& rng,
                             float clip_norm = 5.0f);

  /// Loss/accuracy without dropout or updates.
  XentResult evaluate(const SequenceBatch& batch);

  /// Per-position probabilities of the true targets (the paper's
  /// per-action likelihood), in batch scan order (t-major, loss
  /// positions only).
  std::vector<double> target_likelihoods(const SequenceBatch& batch);

  // --- Streaming interface for the online monitor -----------------------
  /// Fresh zero state for a single stream.
  ModelState make_state() const;
  /// Feeds one observed action and returns the probability distribution
  /// over the next action (length vocab).
  std::vector<float> step(ModelState& state, int action) const;

  /// Allocation-free step: writes the distribution into `probs` (resized
  /// to vocab), reusing the state's scratch buffers. Bit-identical to
  /// step().
  void step_into(ModelState& state, int action, std::vector<float>& probs) const;

  /// Scores a whole session: element i is the model probability assigned
  /// to actions[i] given actions[0..i-1]; the first action gets the
  /// model's unconditional first-step distribution. Sessions shorter than
  /// 2 actions return an empty vector (the paper filters those out).
  struct SessionScore {
    std::vector<double> likelihoods;  // p(a_i | a_1..a_{i-1}), i >= 2
    std::vector<double> losses;       // -log of the same
    double avg_likelihood() const;
    double avg_loss() const;
    /// exp(mean loss): the perplexity measure the paper suggests as
    /// future work (§V).
    double perplexity() const;
    /// Fraction of steps where the model's argmax equals the true action.
    double accuracy = 0.0;
  };
  SessionScore score_session(std::span<const int> actions) const;

  void save(BinaryWriter& w) const;
  static NextActionModel load(BinaryReader& r);

  /// Deep copy via a save/load round-trip. The layer objects own scratch
  /// and gather bookkeeping that must not be shared between copies, so the
  /// persisted form — weights only — is the one representation that
  /// duplicates the network exactly. This is the warm-start entry point:
  /// continuous learning clones the active model and fine-tunes the clone.
  NextActionModel clone() const;

  // --- Read-only structure views for the inference engine ---------------
  std::size_t layer_count() const { return lstms_.size(); }
  const RecurrentLayer& layer(std::size_t i) const { return *lstms_.at(i); }
  const Dense& head() const { return head_; }
  bool has_embedding() const { return embedding_ != nullptr; }

 private:
  NextActionModel(const ModelConfig& config, std::unique_ptr<Embedding> embedding,
                  std::vector<std::unique_ptr<RecurrentLayer>> layers, Dense head);

  /// Shared forward: runs the LSTM, gathers loss positions, applies
  /// dropout when rng != nullptr, and fills logits. Records gather
  /// indices for backward.
  void forward_gather(const SequenceBatch& batch, Rng* rng, Matrix& logits,
                      std::vector<int>& flat_targets);

  ModelConfig config_;
  std::unique_ptr<Embedding> embedding_;  // null when embedding_dim == 0
  std::vector<std::unique_ptr<RecurrentLayer>> lstms_;  // [0] token-input; rest dense
  std::vector<Dropout> inter_dropout_; // between stacked layers (layers-1)
  Dropout dropout_;                    // before the dense head
  Dense head_;
  // Gather bookkeeping from the last forward_gather call.
  std::vector<std::pair<std::size_t, std::size_t>> gather_positions_;  // (t, b)
  Matrix gathered_hidden_;
};

}  // namespace misuse::nn

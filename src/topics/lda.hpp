// Latent Dirichlet Allocation (Blei, Ng & Jordan 2003) via collapsed
// Gibbs sampling. The paper treats each session as a document whose
// "words" are actions and runs LDA multiple times with different
// parameters, feeding the resulting topic-action and document-topic
// matrices into the interactive visual interface (§II).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace misuse::topics {

struct LdaConfig {
  std::size_t topics = 13;
  double alpha = 0.5;       // document-topic Dirichlet prior
  double beta = 0.05;       // topic-word Dirichlet prior
  std::size_t iterations = 150;
  std::uint64_t seed = 1;
};

/// A fitted LDA model over a fixed corpus.
struct LdaModel {
  std::size_t topics = 0;
  std::size_t vocab = 0;
  /// phi: topics x vocab; rows are probability distributions over actions
  /// (the paper's topic-action matrix view).
  Matrix topic_action;
  /// theta: documents x topics; rows are probability distributions (the
  /// paper's document-topic matrix).
  Matrix doc_topic;

  /// Dominant topic of document d.
  std::size_t dominant_topic(std::size_t d) const;
  /// Indices of the `n` highest-probability actions in topic k.
  std::vector<std::size_t> top_actions(std::size_t k, std::size_t n) const;
  /// The "medoid" document of topic k: the document with the highest
  /// share of k (what the visual interface highlights for inspection).
  std::size_t medoid_document(std::size_t k) const;
};

/// Fits LDA on a corpus of documents (each a sequence of action ids in
/// [0, vocab)). Empty documents are allowed and receive a uniform theta.
LdaModel fit_lda(const std::vector<std::vector<int>>& documents, std::size_t vocab,
                 const LdaConfig& config);

/// Cosine similarity between two distributions (rows of phi).
double topic_cosine(std::span<const float> a, std::span<const float> b);

/// Number of actions two topics share among their top-n actions (the
/// quantity encoded by link thickness in the chord diagram view).
std::size_t shared_top_actions(const LdaModel& m, std::size_t k1, std::size_t k2, std::size_t n);

/// Corpus log-likelihood of held-in data under the fitted model; used in
/// tests to verify Gibbs sampling actually improves the fit.
double corpus_log_likelihood(const LdaModel& model, const std::vector<std::vector<int>>& documents);

}  // namespace misuse::topics

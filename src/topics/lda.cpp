#include "topics/lda.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace misuse::topics {

std::size_t LdaModel::dominant_topic(std::size_t d) const {
  assert(d < doc_topic.rows());
  const auto row = doc_topic.row(d);
  return static_cast<std::size_t>(std::max_element(row.begin(), row.end()) - row.begin());
}

std::vector<std::size_t> LdaModel::top_actions(std::size_t k, std::size_t n) const {
  assert(k < topics);
  const auto row = topic_action.row(k);
  std::vector<std::size_t> order(vocab);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(std::min(n, vocab)),
                    order.end(),
                    [&row](std::size_t a, std::size_t b) { return row[a] > row[b]; });
  order.resize(std::min(n, vocab));
  return order;
}

std::size_t LdaModel::medoid_document(std::size_t k) const {
  assert(k < topics);
  std::size_t best = 0;
  float best_weight = -1.0f;
  for (std::size_t d = 0; d < doc_topic.rows(); ++d) {
    const float w = doc_topic(d, k);
    if (w > best_weight) {
      best_weight = w;
      best = d;
    }
  }
  return best;
}

LdaModel fit_lda(const std::vector<std::vector<int>>& documents, std::size_t vocab,
                 const LdaConfig& config) {
  assert(vocab > 0);
  assert(config.topics > 0);
  const std::size_t k = config.topics;
  const std::size_t m = documents.size();
  Rng rng(config.seed);

  // Count matrices for the collapsed sampler.
  std::vector<std::vector<std::size_t>> n_dk(m, std::vector<std::size_t>(k, 0));
  std::vector<std::vector<std::size_t>> n_kw(k, std::vector<std::size_t>(vocab, 0));
  std::vector<std::size_t> n_k(k, 0);
  std::vector<std::vector<std::size_t>> z(m);  // topic assignment per token

  // Random initialization.
  for (std::size_t d = 0; d < m; ++d) {
    z[d].resize(documents[d].size());
    for (std::size_t i = 0; i < documents[d].size(); ++i) {
      const int w = documents[d][i];
      assert(w >= 0 && static_cast<std::size_t>(w) < vocab);
      const std::size_t topic = rng.uniform_index(k);
      z[d][i] = topic;
      ++n_dk[d][topic];
      ++n_kw[topic][static_cast<std::size_t>(w)];
      ++n_k[topic];
    }
  }

  const double v_beta = static_cast<double>(vocab) * config.beta;
  std::vector<double> weights(k);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    for (std::size_t d = 0; d < m; ++d) {
      for (std::size_t i = 0; i < documents[d].size(); ++i) {
        const auto w = static_cast<std::size_t>(documents[d][i]);
        const std::size_t old_topic = z[d][i];
        --n_dk[d][old_topic];
        --n_kw[old_topic][w];
        --n_k[old_topic];

        for (std::size_t t = 0; t < k; ++t) {
          weights[t] = (static_cast<double>(n_dk[d][t]) + config.alpha) *
                       (static_cast<double>(n_kw[t][w]) + config.beta) /
                       (static_cast<double>(n_k[t]) + v_beta);
        }
        const std::size_t new_topic = rng.categorical(weights);
        z[d][i] = new_topic;
        ++n_dk[d][new_topic];
        ++n_kw[new_topic][w];
        ++n_k[new_topic];
      }
    }
  }

  LdaModel model;
  model.topics = k;
  model.vocab = vocab;
  model.topic_action.resize(k, vocab);
  model.doc_topic.resize(m, k);
  for (std::size_t t = 0; t < k; ++t) {
    const double denom = static_cast<double>(n_k[t]) + v_beta;
    for (std::size_t w = 0; w < vocab; ++w) {
      model.topic_action(t, w) =
          static_cast<float>((static_cast<double>(n_kw[t][w]) + config.beta) / denom);
    }
  }
  for (std::size_t d = 0; d < m; ++d) {
    const double denom =
        static_cast<double>(documents[d].size()) + static_cast<double>(k) * config.alpha;
    for (std::size_t t = 0; t < k; ++t) {
      model.doc_topic(d, t) =
          static_cast<float>((static_cast<double>(n_dk[d][t]) + config.alpha) / denom);
    }
  }
  return model;
}

double topic_cosine(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::size_t shared_top_actions(const LdaModel& m, std::size_t k1, std::size_t k2, std::size_t n) {
  const auto a = m.top_actions(k1, n);
  const auto b = m.top_actions(k2, n);
  std::size_t shared = 0;
  for (std::size_t x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) ++shared;
  }
  return shared;
}

double corpus_log_likelihood(const LdaModel& model,
                             const std::vector<std::vector<int>>& documents) {
  assert(model.doc_topic.rows() == documents.size());
  double total = 0.0;
  for (std::size_t d = 0; d < documents.size(); ++d) {
    for (const int w : documents[d]) {
      double p = 0.0;
      for (std::size_t t = 0; t < model.topics; ++t) {
        p += static_cast<double>(model.doc_topic(d, t)) *
             model.topic_action(t, static_cast<std::size_t>(w));
      }
      total += std::log(std::max(p, 1e-300));
    }
  }
  return total;
}

}  // namespace misuse::topics

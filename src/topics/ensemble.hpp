// LDA ensemble (Chen et al., "LDA ensembles for interactive exploration
// and categorization of behaviors", TVCG 2019 — the paper's reference
// [24]): multiple LDA runs with different topic counts and seeds; the
// pooled topics plus the topic-action and document-topic matrices are the
// inputs of the visual interface the security experts work with.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topics/lda.hpp"

namespace misuse::topics {

struct EnsembleConfig {
  /// Topic counts of the individual runs (the paper: "we run LDA with
  /// different parameters, e.g. number of topics, multiple times").
  std::vector<std::size_t> topic_counts = {10, 13, 16, 20};
  std::size_t runs_per_count = 1;
  std::size_t iterations = 120;
  double alpha = 0.5;
  double beta = 0.05;
  std::uint64_t seed = 7;
};

/// Identity of a pooled topic: which run produced it and its index there.
struct TopicRef {
  std::size_t run = 0;
  std::size_t topic_in_run = 0;
};

class LdaEnsemble {
 public:
  /// Fits all runs on the corpus.
  static LdaEnsemble fit(const std::vector<std::vector<int>>& documents, std::size_t vocab,
                         const EnsembleConfig& config);

  std::size_t vocab() const { return vocab_; }
  std::size_t documents() const { return documents_; }
  const std::vector<LdaModel>& runs() const { return runs_; }

  /// Total number of pooled topics across every run.
  std::size_t topic_count() const { return refs_.size(); }
  const TopicRef& ref(std::size_t pooled) const { return refs_.at(pooled); }

  /// Action distribution of pooled topic i (row of the owning run's phi).
  std::span<const float> topic_distribution(std::size_t pooled) const;

  /// Weight of pooled topic i in document d (theta of the owning run).
  float document_weight(std::size_t pooled, std::size_t d) const;

  /// Pairwise cosine-similarity matrix of all pooled topics — the
  /// distance structure that the t-SNE projection view visualizes.
  Matrix pairwise_similarity() const;

  /// The medoid document of a pooled topic.
  std::size_t medoid_document(std::size_t pooled) const;

  /// Assigns each document to its best pooled topic among `selected`
  /// (argmax document weight); the basis for cluster induction once the
  /// expert has picked representative topics.
  std::vector<std::size_t> assign_documents(const std::vector<std::size_t>& selected) const;

 private:
  std::size_t vocab_ = 0;
  std::size_t documents_ = 0;
  std::vector<LdaModel> runs_;
  std::vector<TopicRef> refs_;
};

}  // namespace misuse::topics

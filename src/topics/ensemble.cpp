#include "topics/ensemble.hpp"

#include <cassert>

#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse::topics {

LdaEnsemble LdaEnsemble::fit(const std::vector<std::vector<int>>& documents, std::size_t vocab,
                             const EnsembleConfig& config) {
  assert(!config.topic_counts.empty());
  assert(config.runs_per_count > 0);
  Span ensemble_span("lda.ensemble");
  LdaEnsemble ensemble;
  ensemble.vocab_ = vocab;
  ensemble.documents_ = documents.size();

  // Draw every run's config (including its seed) serially first, so the
  // per-run seeds do not depend on scheduling; the independent Gibbs
  // fits then fan out over the pool and land in their run slot, keeping
  // the ensemble bit-identical to the single-threaded fit.
  Rng seeder(config.seed);
  std::vector<LdaConfig> run_configs;
  for (const std::size_t k : config.topic_counts) {
    for (std::size_t r = 0; r < config.runs_per_count; ++r) {
      LdaConfig lda;
      lda.topics = k;
      lda.alpha = config.alpha;
      lda.beta = config.beta;
      lda.iterations = config.iterations;
      lda.seed = seeder.next_u64();
      run_configs.push_back(lda);
    }
  }

  ensemble.runs_.resize(run_configs.size());
  global_pool().parallel_for(0, run_configs.size(), [&](std::size_t run) {
    Span run_span("lda.run");
    ensemble.runs_[run] = fit_lda(documents, vocab, run_configs[run]);
  });
  for (std::size_t run = 0; run < run_configs.size(); ++run) {
    for (std::size_t t = 0; t < run_configs[run].topics; ++t) {
      ensemble.refs_.push_back({run, t});
    }
  }
  return ensemble;
}

std::span<const float> LdaEnsemble::topic_distribution(std::size_t pooled) const {
  const TopicRef& r = refs_.at(pooled);
  return runs_[r.run].topic_action.row(r.topic_in_run);
}

float LdaEnsemble::document_weight(std::size_t pooled, std::size_t d) const {
  const TopicRef& r = refs_.at(pooled);
  return runs_[r.run].doc_topic(d, r.topic_in_run);
}

Matrix LdaEnsemble::pairwise_similarity() const {
  const std::size_t n = topic_count();
  Matrix sim(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sim(i, i) = 1.0f;
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto s = static_cast<float>(topic_cosine(topic_distribution(i), topic_distribution(j)));
      sim(i, j) = s;
      sim(j, i) = s;
    }
  }
  return sim;
}

std::size_t LdaEnsemble::medoid_document(std::size_t pooled) const {
  const TopicRef& r = refs_.at(pooled);
  return runs_[r.run].medoid_document(r.topic_in_run);
}

std::vector<std::size_t> LdaEnsemble::assign_documents(
    const std::vector<std::size_t>& selected) const {
  assert(!selected.empty());
  std::vector<std::size_t> assignment(documents_, 0);
  for (std::size_t d = 0; d < documents_; ++d) {
    std::size_t best = 0;
    float best_weight = -1.0f;
    for (std::size_t si = 0; si < selected.size(); ++si) {
      const float w = document_weight(selected[si], d);
      if (w > best_weight) {
        best_weight = w;
        best = si;
      }
    }
    assignment[d] = best;
  }
  return assignment;
}

}  // namespace misuse::topics

#include "ocsvm/features.hpp"

#include <cassert>
#include <cmath>

namespace misuse::ocsvm {

SessionFeaturizer::SessionFeaturizer(const FeaturizerConfig& config) : config_(config) {
  assert(config.vocab > 0);
}

std::size_t SessionFeaturizer::dim() const {
  return config_.vocab + (config_.length_feature_weight > 0.0 ? 1 : 0);
}

std::vector<float> SessionFeaturizer::from_counts(std::span<const std::size_t> counts,
                                                  std::size_t length) const {
  std::vector<float> out(dim(), 0.0f);
  double scale = 1.0;
  if (config_.normalize) {
    double norm_sq = 0.0;
    for (std::size_t a = 0; a < config_.vocab; ++a) {
      norm_sq += static_cast<double>(counts[a]) * static_cast<double>(counts[a]);
    }
    scale = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
  }
  for (std::size_t a = 0; a < config_.vocab; ++a) {
    out[a] = static_cast<float>(static_cast<double>(counts[a]) * scale);
  }
  if (config_.length_feature_weight > 0.0) {
    out[config_.vocab] =
        static_cast<float>(config_.length_feature_weight * std::log1p(static_cast<double>(length)));
  }
  return out;
}

std::vector<float> SessionFeaturizer::featurize(std::span<const int> actions) const {
  std::vector<std::size_t> counts(config_.vocab, 0);
  for (int a : actions) {
    assert(a >= 0 && static_cast<std::size_t>(a) < config_.vocab);
    ++counts[static_cast<std::size_t>(a)];
  }
  return from_counts(counts, actions.size());
}

SessionFeaturizer::Incremental::Incremental(const SessionFeaturizer& parent)
    : parent_(parent), counts_(parent.config_.vocab, 0) {}

std::vector<float> SessionFeaturizer::Incremental::push(int action) {
  assert(action >= 0 && static_cast<std::size_t>(action) < counts_.size());
  ++counts_[static_cast<std::size_t>(action)];
  ++length_;
  return parent_.from_counts(counts_, length_);
}

void SessionFeaturizer::Incremental::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  length_ = 0;
}

}  // namespace misuse::ocsvm

// Session featurization for the one-class SVMs that route new sessions to
// behavior clusters (§II-III). A session (or a growing prefix of one, in
// the online regime of §IV-C) is embedded as its L2-normalized action
// histogram plus a coarse length feature — permutation-insensitive, cheap
// to update incrementally one action at a time.
#pragma once

#include <span>
#include <vector>

namespace misuse::ocsvm {

struct FeaturizerConfig {
  std::size_t vocab = 0;
  /// L2-normalize the action histogram. The default (false) keeps raw
  /// counts, which reproduces the OC-SVM behaviour the paper observed in
  /// Fig. 6: prefixes longer than the typical training session drift away
  /// from every support vector, so "all the sessions longer than the
  /// average length are considered to be outliers by all the OC-SVMs" —
  /// the very pathology the first-15-actions vote (§IV-C) works around.
  /// Set true for length-invariant routing instead.
  bool normalize = false;
  /// Weight of an appended log1p(length) feature; 0 disables it.
  double length_feature_weight = 0.0;
};

class SessionFeaturizer {
 public:
  explicit SessionFeaturizer(const FeaturizerConfig& config);

  /// Feature dimensionality (vocab + 1 when the length feature is on).
  std::size_t dim() const;

  /// Featurizes a complete action sequence.
  std::vector<float> featurize(std::span<const int> actions) const;

  /// Incremental featurization for the online monitor: call on a prefix
  /// that grew by one action. Recomputes from counts held by the caller.
  class Incremental {
   public:
    explicit Incremental(const SessionFeaturizer& parent);
    /// Observes the next action and returns the features of the prefix.
    std::vector<float> push(int action);
    std::size_t length() const { return length_; }
    void reset();

   private:
    const SessionFeaturizer& parent_;
    std::vector<std::size_t> counts_;
    std::size_t length_ = 0;
  };

  const FeaturizerConfig& config() const { return config_; }

 private:
  std::vector<float> from_counts(std::span<const std::size_t> counts, std::size_t length) const;

  FeaturizerConfig config_;
};

}  // namespace misuse::ocsvm

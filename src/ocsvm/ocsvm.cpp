#include "ocsvm/ocsvm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace misuse::ocsvm {

double kernel_value(KernelKind kind, double gamma, std::span<const float> a,
                    std::span<const float> b) {
  assert(a.size() == b.size());
  switch (kind) {
    case KernelKind::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += static_cast<double>(a[i]) * b[i];
      return dot;
    }
    case KernelKind::kRbf: {
      double sq = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        sq += d * d;
      }
      return std::exp(-gamma * sq);
    }
  }
  assert(false);
  return 0.0;
}

OneClassSvm OneClassSvm::train(const std::vector<std::vector<float>>& points,
                               const OcSvmConfig& config) {
  assert(!points.empty());
  assert(config.nu > 0.0 && config.nu <= 1.0);
  OneClassSvm svm;
  svm.config_ = config;
  svm.dim_ = points.front().size();
  svm.gamma_ = config.gamma > 0.0 ? config.gamma : 1.0 / static_cast<double>(svm.dim_);

  // Subsample oversized training sets so the dense kernel matrix stays
  // tractable; points are drawn without replacement.
  std::vector<std::size_t> chosen(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) chosen[i] = i;
  if (config.max_training_points > 0 && points.size() > config.max_training_points) {
    Rng rng(config.seed);
    rng.shuffle(chosen);
    chosen.resize(config.max_training_points);
  }
  const std::size_t m = chosen.size();
  std::vector<std::span<const float>> x(m);
  for (std::size_t i = 0; i < m; ++i) {
    assert(points[chosen[i]].size() == svm.dim_);
    x[i] = points[chosen[i]];
  }

  // Dense kernel matrix (float to halve memory; the SMO arithmetic below
  // is double).
  std::vector<float> kernel(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const auto v = static_cast<float>(kernel_value(config.kernel, svm.gamma_, x[i], x[j]));
      kernel[i * m + j] = v;
      kernel[j * m + i] = v;
    }
  }
  const auto k_at = [&](std::size_t i, std::size_t j) {
    return static_cast<double>(kernel[i * m + j]);
  };

  // Feasible start: alpha uniform on the first ceil(nu*m) points, as in
  // libsvm's one-class initialization.
  const double upper = 1.0 / (config.nu * static_cast<double>(m));
  std::vector<double> alpha(m, 0.0);
  {
    double remaining = 1.0;
    for (std::size_t i = 0; i < m && remaining > 0.0; ++i) {
      const double take = std::min(upper, remaining);
      alpha[i] = take;
      remaining -= take;
    }
  }

  // Gradient of 1/2 a^T K a is g = K a.
  std::vector<double> grad(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (alpha[j] > 0.0) acc += alpha[j] * k_at(i, j);
    }
    grad[i] = acc;
  }

  // SMO with maximal-violating-pair selection: move weight from the
  // highest-gradient index that can decrease (alpha > 0) to the
  // lowest-gradient index that can increase (alpha < upper).
  const double eps_box = upper * 1e-12;
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    std::size_t i_up = m, i_down = m;
    double g_min = std::numeric_limits<double>::infinity();
    double g_max = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (alpha[i] < upper - eps_box && grad[i] < g_min) {
        g_min = grad[i];
        i_up = i;
      }
      if (alpha[i] > eps_box && grad[i] > g_max) {
        g_max = grad[i];
        i_down = i;
      }
    }
    if (i_up == m || i_down == m || g_max - g_min < config.tolerance) break;

    // Optimal unconstrained step along e_up - e_down.
    const double curvature =
        std::max(k_at(i_up, i_up) + k_at(i_down, i_down) - 2.0 * k_at(i_up, i_down), 1e-12);
    double delta = (g_max - g_min) / curvature;
    delta = std::min(delta, upper - alpha[i_up]);
    delta = std::min(delta, alpha[i_down]);
    if (delta <= 0.0) break;

    alpha[i_up] += delta;
    alpha[i_down] -= delta;
    for (std::size_t j = 0; j < m; ++j) {
      grad[j] += delta * (k_at(i_up, j) - k_at(i_down, j));
    }
  }

  // rho = decision threshold: average gradient over free support vectors
  // (0 < alpha < upper); fall back to the mean over all support vectors.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (alpha[i] > eps_box && alpha[i] < upper - eps_box) {
      rho_sum += grad[i];
      ++rho_count;
    }
  }
  if (rho_count == 0) {
    for (std::size_t i = 0; i < m; ++i) {
      if (alpha[i] > eps_box) {
        rho_sum += grad[i];
        ++rho_count;
      }
    }
  }
  svm.rho_ = rho_count > 0 ? rho_sum / static_cast<double>(rho_count) : 0.0;

  // Keep only support vectors.
  for (std::size_t i = 0; i < m; ++i) {
    if (alpha[i] > eps_box) {
      svm.support_vectors_.emplace_back(x[i].begin(), x[i].end());
      svm.alphas_.push_back(alpha[i]);
    }
  }

  // Count decision values below zero by more than the solver tolerance;
  // points within tolerance of the boundary are margin noise, not
  // outliers (the nu-property is stated at the exact optimum).
  std::size_t outliers = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (grad[i] - svm.rho_ < -config.tolerance) ++outliers;
  }
  svm.training_outlier_fraction_ = static_cast<double>(outliers) / static_cast<double>(m);
  return svm;
}

double OneClassSvm::score(std::span<const float> x) const {
  assert(x.size() == dim_);
  // Hot path of online routing: every monitor step scores every cluster's
  // OC-SVM on the prefix. Four-lane unrolled reductions break the serial
  // double-add dependency chain of the naive kernel loop (~3x on typical
  // dims). Both the offline and the online assigner route through here,
  // so their scores stay mutually bit-identical — the only summation
  // order the pipeline's determinism contracts depend on.
  const std::size_t dim = dim_;
  double acc = 0.0;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    const float* s = support_vectors_[i].data();
    const float* p = x.data();
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    std::size_t j = 0;
    if (config_.kernel == KernelKind::kRbf) {
      for (; j + 4 <= dim; j += 4) {
        const double d0 = static_cast<double>(s[j]) - p[j];
        const double d1 = static_cast<double>(s[j + 1]) - p[j + 1];
        const double d2 = static_cast<double>(s[j + 2]) - p[j + 2];
        const double d3 = static_cast<double>(s[j + 3]) - p[j + 3];
        l0 += d0 * d0;
        l1 += d1 * d1;
        l2 += d2 * d2;
        l3 += d3 * d3;
      }
      for (; j < dim; ++j) {
        const double d = static_cast<double>(s[j]) - p[j];
        l0 += d * d;
      }
      acc += alphas_[i] * std::exp(-gamma_ * ((l0 + l1) + (l2 + l3)));
    } else {
      for (; j + 4 <= dim; j += 4) {
        l0 += static_cast<double>(s[j]) * p[j];
        l1 += static_cast<double>(s[j + 1]) * p[j + 1];
        l2 += static_cast<double>(s[j + 2]) * p[j + 2];
        l3 += static_cast<double>(s[j + 3]) * p[j + 3];
      }
      for (; j < dim; ++j) l0 += static_cast<double>(s[j]) * p[j];
      acc += alphas_[i] * ((l0 + l1) + (l2 + l3));
    }
  }
  return acc - rho_;
}

namespace {
constexpr std::uint32_t kSvmMagic = 0x4d56534fu;  // "OSVM"
constexpr std::uint32_t kSvmVersion = 1;
}  // namespace

void OneClassSvm::save(BinaryWriter& w) const {
  w.write_magic(kSvmMagic, kSvmVersion);
  w.write<std::int32_t>(static_cast<std::int32_t>(config_.kernel));
  w.write<double>(config_.nu);
  w.write<double>(gamma_);
  w.write<double>(rho_);
  w.write<double>(training_outlier_fraction_);
  w.write<std::uint64_t>(dim_);
  w.write<std::uint64_t>(support_vectors_.size());
  for (const auto& sv : support_vectors_) w.write_vector(std::span<const float>(sv));
  w.write_vector(std::span<const double>(alphas_));
}

OneClassSvm OneClassSvm::load(BinaryReader& r) {
  r.read_magic(kSvmMagic);
  OneClassSvm svm;
  svm.config_.kernel = static_cast<KernelKind>(r.read<std::int32_t>());
  svm.config_.nu = r.read<double>();
  svm.gamma_ = r.read<double>();
  svm.rho_ = r.read<double>();
  svm.training_outlier_fraction_ = r.read<double>();
  svm.dim_ = static_cast<std::size_t>(r.read<std::uint64_t>());
  const auto n_sv = static_cast<std::size_t>(r.read<std::uint64_t>());
  svm.support_vectors_.reserve(n_sv);
  for (std::size_t i = 0; i < n_sv; ++i) {
    auto sv = r.read_vector<float>();
    if (sv.size() != svm.dim_) throw SerializeError("support vector dim mismatch");
    svm.support_vectors_.push_back(std::move(sv));
  }
  svm.alphas_ = r.read_vector<double>();
  if (svm.alphas_.size() != svm.support_vectors_.size()) {
    throw SerializeError("alpha/support-vector count mismatch");
  }
  return svm;
}

}  // namespace misuse::ocsvm

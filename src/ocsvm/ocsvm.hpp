// One-class support vector machine (Schölkopf et al. 2000, the paper's
// reference [26]) trained by sequential minimal optimization on the ν-SVM
// dual:
//
//   min_a  1/2 a^T K a   s.t.  0 <= a_i <= 1/(nu*m),  sum a_i = 1
//
// The decision function f(x) = sum_i a_i K(x_i, x) - rho scores how well
// x conforms to the training cluster; the pipeline trains one OC-SVM per
// behavior cluster and routes a new session to argmax_i f_i(x) (§III).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse::ocsvm {

enum class KernelKind : int { kRbf = 0, kLinear = 1 };

struct OcSvmConfig {
  double nu = 0.1;      // upper bound on the training outlier fraction
  KernelKind kernel = KernelKind::kRbf;
  /// RBF bandwidth; <= 0 selects 1/dim automatically.
  double gamma = 0.0;
  double tolerance = 1e-4;
  std::size_t max_iterations = 200000;
  /// Training sets larger than this are subsampled (keeps the kernel
  /// matrix tractable); 0 disables subsampling.
  std::size_t max_training_points = 2000;
  std::uint64_t seed = 5;
};

double kernel_value(KernelKind kind, double gamma, std::span<const float> a,
                    std::span<const float> b);

class OneClassSvm {
 public:
  /// Trains on rows of `points` (all must share one dimensionality).
  static OneClassSvm train(const std::vector<std::vector<float>>& points,
                           const OcSvmConfig& config);

  /// Decision value f(x); >= 0 means the point conforms to the cluster.
  double score(std::span<const float> x) const;

  double rho() const { return rho_; }
  std::size_t support_vector_count() const { return support_vectors_.size(); }
  std::size_t dim() const { return dim_; }
  const OcSvmConfig& config() const { return config_; }

  /// Fraction of the (possibly subsampled) training points with f(x) < 0;
  /// the nu-property guarantees this is at most about nu.
  double training_outlier_fraction() const { return training_outlier_fraction_; }

  void save(BinaryWriter& w) const;
  static OneClassSvm load(BinaryReader& r);

 private:
  OneClassSvm() = default;

  OcSvmConfig config_;
  std::size_t dim_ = 0;
  double gamma_ = 0.0;
  double rho_ = 0.0;
  double training_outlier_fraction_ = 0.0;
  std::vector<std::vector<float>> support_vectors_;
  std::vector<double> alphas_;
};

}  // namespace misuse::ocsvm

#include "lm/batching.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace misuse::lm {

std::vector<WindowExample> make_window_examples(std::span<const int> actions, std::size_t window) {
  assert(window >= 2);
  std::vector<WindowExample> out;
  if (actions.size() < 2) return out;  // nothing to predict (§IV-A filter)
  const std::size_t input_len = window - 1;
  // Example i (1-based over predictable positions): inputs are actions
  // [0, i), left-padded/cropped to input_len; target is actions[i].
  for (std::size_t i = 1; i < actions.size(); ++i) {
    WindowExample ex;
    ex.inputs.assign(input_len, nn::kPadToken);
    const std::size_t observed = std::min(i, input_len);
    for (std::size_t j = 0; j < observed; ++j) {
      ex.inputs[input_len - observed + j] = actions[i - observed + j];
    }
    ex.target = actions[i];
    out.push_back(std::move(ex));
  }
  return out;
}

std::vector<nn::SequenceBatch> pack_window_batches(std::span<const WindowExample> examples,
                                                   std::size_t batch_size) {
  assert(batch_size > 0);
  std::vector<nn::SequenceBatch> batches;
  for (std::size_t start = 0; start < examples.size(); start += batch_size) {
    const std::size_t b = std::min(batch_size, examples.size() - start);
    const std::size_t t_steps = examples[start].inputs.size();
    nn::SequenceBatch batch;
    batch.tokens.assign(t_steps, std::vector<int>(b, nn::kPadToken));
    batch.targets.assign(t_steps, std::vector<int>(b, nn::kIgnoreTarget));
    for (std::size_t i = 0; i < b; ++i) {
      const WindowExample& ex = examples[start + i];
      assert(ex.inputs.size() == t_steps);
      for (std::size_t t = 0; t < t_steps; ++t) batch.tokens[t][i] = ex.inputs[t];
      batch.targets[t_steps - 1][i] = ex.target;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<nn::SequenceBatch> pack_full_sequence_batches(
    std::span<const std::span<const int>> sessions, std::size_t window, std::size_t batch_size) {
  assert(window >= 2 && batch_size > 0);
  // Sort indices by cropped length so batches waste little padding.
  std::vector<std::size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto cropped_len = [&](std::size_t i) { return std::min(sessions[i].size(), window); };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return cropped_len(a) < cropped_len(b); });

  std::vector<nn::SequenceBatch> batches;
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t b = std::min(batch_size, order.size() - start);
    std::size_t t_steps = 0;
    for (std::size_t i = 0; i < b; ++i) {
      const auto len = cropped_len(order[start + i]);
      if (len >= 2) t_steps = std::max(t_steps, len - 1);
    }
    if (t_steps == 0) continue;  // every session in this slice too short

    nn::SequenceBatch batch;
    batch.tokens.assign(t_steps, std::vector<int>(b, nn::kPadToken));
    batch.targets.assign(t_steps, std::vector<int>(b, nn::kIgnoreTarget));
    for (std::size_t i = 0; i < b; ++i) {
      const auto& s = sessions[order[start + i]];
      const std::size_t len = std::min(s.size(), window);
      if (len < 2) continue;
      for (std::size_t t = 0; t + 1 < len; ++t) {
        batch.tokens[t][i] = s[t];
        batch.targets[t][i] = s[t + 1];
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<nn::SequenceBatch> make_epoch_batches(std::span<const std::span<const int>> sessions,
                                                  const BatchingConfig& config, Rng& rng) {
  switch (config.mode) {
    case BatchingMode::kWindowed: {
      std::vector<WindowExample> examples;
      for (const auto& s : sessions) {
        auto ex = make_window_examples(s, config.window);
        examples.insert(examples.end(), std::make_move_iterator(ex.begin()),
                        std::make_move_iterator(ex.end()));
      }
      rng.shuffle(examples);
      return pack_window_batches(examples, config.batch_size);
    }
    case BatchingMode::kFullSequence: {
      // Shuffle before the stable length sort so equal-length sessions
      // appear in different batches across epochs.
      std::vector<std::span<const int>> shuffled(sessions.begin(), sessions.end());
      rng.shuffle(shuffled);
      return pack_full_sequence_batches(shuffled, config.window, config.batch_size);
    }
  }
  assert(false);
  return {};
}

}  // namespace misuse::lm

// First-order Markov-chain action model with additive smoothing — the
// classical sequence-modeling baseline the paper's related work contrasts
// against recurrent networks (Yeung & Ding's dynamic behavioral models,
// ref. [12]). Exposes the same scoring surface as the LSTM
// ActionLanguageModel so the two slot into identical experiments
// (bench/abl_markov_baseline).
#pragma once

#include <span>
#include <vector>

#include "nn/next_action_model.hpp"
#include "util/serialize.hpp"

namespace misuse::lm {

struct MarkovConfig {
  std::size_t vocab = 0;
  /// Additive (Laplace) smoothing mass per successor.
  double smoothing = 0.1;
};

class MarkovChainModel {
 public:
  explicit MarkovChainModel(const MarkovConfig& config);

  const MarkovConfig& config() const { return config_; }

  /// Accumulates transition counts from the sessions (start-of-session is
  /// modeled by a dedicated initial distribution).
  void fit(std::span<const std::span<const int>> sessions);

  /// P(next | current); current == -1 queries the initial distribution.
  double transition_probability(int current, int next) const;

  /// The full next-action distribution given `current` (-1 = initial
  /// distribution), as floats — the same shape ActionLanguageModel::step
  /// returns, so a Markov chain can stand in for a cluster's LSTM in the
  /// online monitor (degraded mode, core/detector.hpp).
  std::vector<float> next_distribution(int current) const;

  /// argmax successor of `current`.
  int most_likely_next(int current) const;

  /// Unsmoothed occurrence count of every action in the corpus the chain
  /// was fitted on. Every occurrence is either session-initial (initial
  /// row) or some transition's successor, so the column sums reproduce
  /// the training corpus's action distribution exactly — the reference
  /// distribution a serving-side DriftMonitor needs, recovered from the
  /// persisted model instead of shipping the corpus around.
  std::vector<double> action_frequencies() const;

  /// Same per-action scoring as the LSTM model: element i is
  /// p(a_{i+1} | a_i) for i >= 1 (sessions shorter than 2 score empty).
  nn::NextActionModel::SessionScore score_session(std::span<const int> actions) const;

  /// Next-action accuracy/loss over all predictable positions.
  struct EvalStats {
    double loss = 0.0;
    double accuracy = 0.0;
    std::size_t predictions = 0;
  };
  EvalStats evaluate(std::span<const std::span<const int>> sessions) const;

  void save(BinaryWriter& w) const;
  static MarkovChainModel load(BinaryReader& r);

 private:
  MarkovConfig config_;
  /// counts_[current * vocab + next]; row `vocab` holds initial counts.
  std::vector<double> counts_;
  std::vector<double> row_totals_;
};

}  // namespace misuse::lm

#include "lm/language_model.hpp"

#include <cassert>
#include <limits>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace misuse::lm {

namespace {
constexpr std::uint32_t kLmMagic = 0x4d4c5541u;  // "ALM"
constexpr std::uint32_t kLmVersion = 4;  // v2: layers; v3: embedding; v4: cell

nn::ModelConfig to_model_config(const LmConfig& config) {
  nn::ModelConfig mc;
  mc.vocab = config.vocab;
  mc.hidden = config.hidden;
  mc.layers = config.layers;
  mc.embedding_dim = config.embedding_dim;
  mc.cell = config.cell;
  mc.dropout = config.dropout;
  return mc;
}
}  // namespace

ActionLanguageModel::ActionLanguageModel(const LmConfig& config)
    : config_(config), rng_(config.seed) {
  assert(config.vocab > 0);
  model_ = std::make_unique<nn::NextActionModel>(to_model_config(config), rng_);
}

ActionLanguageModel::ActionLanguageModel(const LmConfig& config, nn::NextActionModel model)
    : config_(config),
      model_(std::make_unique<nn::NextActionModel>(std::move(model))),
      rng_(config.seed) {}

std::vector<EpochStats> ActionLanguageModel::fit(std::span<const std::span<const int>> train,
                                                 std::span<const std::span<const int>> valid) {
  auto optimizer = nn::make_optimizer(config_.optimizer, config_.learning_rate);
  std::vector<EpochStats> history;
  double best_valid = std::numeric_limits<double>::infinity();
  std::size_t epochs_since_best = 0;
  std::vector<Matrix> best_weights;  // snapshot of the best validation epoch

  static Counter& epochs_trained = metrics().counter("lm.epochs_trained");
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Span epoch_span("lm.epoch");
    epochs_trained.inc();
    const auto batches = make_epoch_batches(train, config_.batching, rng_);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    std::size_t targets = 0;
    for (const auto& batch : batches) {
      const auto stats = model_->train_batch(batch, *optimizer, rng_, config_.clip_norm);
      loss_sum += stats.loss * static_cast<double>(stats.targets);
      acc_sum += stats.accuracy * static_cast<double>(stats.targets);
      targets += stats.targets;
    }

    EpochStats es;
    es.epoch = epoch;
    es.train_loss = targets > 0 ? loss_sum / static_cast<double>(targets) : 0.0;
    es.train_accuracy = targets > 0 ? acc_sum / static_cast<double>(targets) : 0.0;
    if (!valid.empty()) {
      const EvalStats vs = evaluate(valid);
      es.valid_loss = vs.loss;
      es.valid_accuracy = vs.accuracy;
    }
    history.push_back(es);
    log_debug() << "epoch " << epoch << " train loss " << es.train_loss << " acc "
                << es.train_accuracy << " valid loss " << es.valid_loss;

    if (!valid.empty()) {
      if (es.valid_loss < best_valid - 1e-5) {
        best_valid = es.valid_loss;
        epochs_since_best = 0;
        if (config_.restore_best) {
          best_weights.clear();
          for (auto* p : model_->params()) best_weights.push_back(p->value);
        }
      } else if (config_.patience > 0 && ++epochs_since_best >= config_.patience) {
        break;  // early stop
      }
    }
  }
  if (config_.restore_best && !best_weights.empty()) {
    const auto params = model_->params();
    assert(params.size() == best_weights.size());
    for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = best_weights[i];
  }
  return history;
}

std::vector<EpochStats> ActionLanguageModel::fine_tune(
    std::span<const std::span<const int>> train, std::span<const std::span<const int>> valid,
    const FineTuneOptions& options) {
  config_.epochs = options.epochs;
  config_.learning_rate = options.learning_rate;
  config_.patience = options.patience;
  config_.seed = options.seed;
  rng_ = Rng(options.seed);
  return fit(train, valid);
}

ActionLanguageModel ActionLanguageModel::clone() const {
  return ActionLanguageModel(config_, model_->clone());
}

EvalStats ActionLanguageModel::evaluate(std::span<const std::span<const int>> sessions) {
  const auto batches =
      pack_full_sequence_batches(sessions, config_.batching.window, config_.batching.batch_size);
  EvalStats out;
  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (const auto& batch : batches) {
    const nn::XentResult res = model_->evaluate(batch);
    loss_sum += res.total_loss;
    correct += res.correct;
    out.predictions += res.rows;
  }
  if (out.predictions > 0) {
    out.loss = loss_sum / static_cast<double>(out.predictions);
    out.accuracy = static_cast<double>(correct) / static_cast<double>(out.predictions);
  }
  return out;
}

nn::NextActionModel::SessionScore ActionLanguageModel::score_session(
    std::span<const int> actions) const {
  return model_->score_session(actions);
}

void ActionLanguageModel::save(BinaryWriter& w) const {
  w.write_magic(kLmMagic, kLmVersion);
  w.write<std::uint64_t>(config_.vocab);
  w.write<std::uint64_t>(config_.hidden);
  w.write<std::uint64_t>(config_.layers);
  w.write<std::uint64_t>(config_.embedding_dim);
  w.write<std::int32_t>(static_cast<std::int32_t>(config_.cell));
  w.write<float>(config_.dropout);
  w.write<float>(config_.learning_rate);
  w.write<std::int32_t>(static_cast<std::int32_t>(config_.optimizer));
  w.write<float>(config_.clip_norm);
  w.write<std::uint64_t>(config_.epochs);
  w.write<std::uint64_t>(config_.patience);
  w.write<std::int32_t>(static_cast<std::int32_t>(config_.batching.mode));
  w.write<std::uint64_t>(config_.batching.window);
  w.write<std::uint64_t>(config_.batching.batch_size);
  w.write<std::uint64_t>(config_.seed);
  model_->save(w);
}

ActionLanguageModel ActionLanguageModel::load(BinaryReader& r) {
  const std::uint32_t version = r.read_magic(kLmMagic);
  LmConfig config;
  config.vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.hidden = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.layers = version >= 2 ? static_cast<std::size_t>(r.read<std::uint64_t>()) : 1;
  config.embedding_dim = version >= 3 ? static_cast<std::size_t>(r.read<std::uint64_t>()) : 0;
  config.cell = version >= 4 ? static_cast<nn::CellKind>(r.read<std::int32_t>())
                             : nn::CellKind::kLstm;
  config.dropout = r.read<float>();
  config.learning_rate = r.read<float>();
  config.optimizer = static_cast<nn::OptimizerKind>(r.read<std::int32_t>());
  config.clip_norm = r.read<float>();
  config.epochs = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.patience = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.batching.mode = static_cast<BatchingMode>(r.read<std::int32_t>());
  config.batching.window = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.batching.batch_size = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.seed = static_cast<std::uint64_t>(r.read<std::uint64_t>());
  nn::NextActionModel model = nn::NextActionModel::load(r);
  return ActionLanguageModel(config, std::move(model));
}

}  // namespace misuse::lm

// Batching policies that turn variable-length sessions into the
// time-major SequenceBatch minibatches the network trains on.
//
// Windowed mode is the paper's exact scheme (§IV-A): each session is
// presented as a moving window of length W = 100; the first example is
// zero-padded up to the session's first action, the last holds the final
// W-1 actions; the input is a (W-1)-action sequence and the target is the
// next action. One example per predictable position.
//
// Full-sequence mode is the efficient equivalent used by default on this
// repository's single-core reference hardware: one example per session,
// with a next-action target at *every* position (the same training signal
// as all the windows of the session combined, at 1/W of the cost);
// sessions are cropped to the window length just as the paper crops long
// sessions.
#pragma once

#include <span>
#include <vector>

#include "nn/next_action_model.hpp"
#include "util/rng.hpp"

namespace misuse::lm {

enum class BatchingMode : int { kWindowed = 0, kFullSequence = 1 };

struct BatchingConfig {
  BatchingMode mode = BatchingMode::kFullSequence;
  std::size_t window = 100;     // paper value
  std::size_t batch_size = 32;  // paper value
};

/// One windowed training example: `inputs` is exactly window-1 tokens
/// (kPadToken-padded on the left), `target` the action to predict.
struct WindowExample {
  std::vector<int> inputs;
  int target = 0;
};

/// Expands one session into its moving-window examples. Sessions shorter
/// than 2 actions yield nothing (the paper's filter).
std::vector<WindowExample> make_window_examples(std::span<const int> actions, std::size_t window);

/// Packs windowed examples into time-major batches of `batch_size` (the
/// last batch may be smaller). The loss fires only at the final timestep.
std::vector<nn::SequenceBatch> pack_window_batches(std::span<const WindowExample> examples,
                                                   std::size_t batch_size);

/// Builds full-sequence batches: sessions are sorted by length (so
/// same-batch sessions are similar and padding is minimal), cropped to
/// `window` actions, right-padded with kPadToken/kIgnoreTarget.
std::vector<nn::SequenceBatch> pack_full_sequence_batches(
    std::span<const std::span<const int>> sessions, std::size_t window, std::size_t batch_size);

/// Top-level: shuffles sessions and produces this epoch's batches under
/// the configured mode.
std::vector<nn::SequenceBatch> make_epoch_batches(std::span<const std::span<const int>> sessions,
                                                  const BatchingConfig& config, Rng& rng);

}  // namespace misuse::lm

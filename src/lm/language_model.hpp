// ActionLanguageModel: the paper's behavior model as a trainable unit —
// the LSTM next-action network (§IV-A: 256 units, dropout 0.4, minibatch
// 32, learning rate 0.001) plus the training loop with validation-based
// early stopping and the evaluation metrics the paper reports (next-action
// accuracy, cross-entropy loss, per-action likelihood).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lm/batching.hpp"
#include "nn/next_action_model.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace misuse::lm {

struct LmConfig {
  std::size_t vocab = 0;
  std::size_t hidden = 256;   // paper value; experiments scale this down
  std::size_t layers = 1;     // stacked LSTM layers (paper value: 1)
  std::size_t embedding_dim = 0;  // 0 = one-hot input (paper value)
  nn::CellKind cell = nn::CellKind::kLstm;  // recurrent cell (paper: LSTM)
  float dropout = 0.4f;       // paper value
  float learning_rate = 1e-3f;  // paper value
  nn::OptimizerKind optimizer = nn::OptimizerKind::kAdam;
  float clip_norm = 5.0f;
  std::size_t epochs = 10;
  /// Stop when validation loss fails to improve this many epochs in a
  /// row; 0 disables early stopping.
  std::size_t patience = 3;
  /// Restore the parameters of the best validation epoch after fit()
  /// (only effective when validation data is provided).
  bool restore_best = true;
  BatchingConfig batching;
  std::uint64_t seed = 11;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double valid_loss = 0.0;
  double valid_accuracy = 0.0;
};

struct EvalStats {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t predictions = 0;
};

/// Knobs of a warm-start fine-tuning pass (continuous learning): a short
/// training run that continues from the model's current weights instead
/// of a fresh initialization. The learning rate defaults well below the
/// from-scratch rate so a small recent-behavior corpus nudges the model
/// rather than overwriting what the full training corpus taught it.
struct FineTuneOptions {
  std::size_t epochs = 2;
  float learning_rate = 2e-4f;
  /// Early-stopping patience (0 disables; restore_best still applies).
  std::size_t patience = 0;
  /// Seed for batch shuffling and dropout during the pass.
  std::uint64_t seed = 17;
};

class ActionLanguageModel {
 public:
  explicit ActionLanguageModel(const LmConfig& config);

  const LmConfig& config() const { return config_; }

  /// Trains on `train` with per-epoch validation on `valid` (which may be
  /// empty: then no early stopping occurs). Returns per-epoch stats.
  std::vector<EpochStats> fit(std::span<const std::span<const int>> train,
                              std::span<const std::span<const int>> valid);

  /// Warm-start fine-tuning: continues training from the current weights
  /// under the options' epochs/learning-rate/seed (fit() already trains
  /// in place; this entry point additionally pins the pass's
  /// hyperparameters and reseeds the shuffle/dropout stream so two
  /// fine-tunes of identical clones are bit-identical). The fresh
  /// optimizer state per pass is deliberate: Adam moments from the
  /// original training run are not part of the archive.
  std::vector<EpochStats> fine_tune(std::span<const std::span<const int>> train,
                                    std::span<const std::span<const int>> valid,
                                    const FineTuneOptions& options);

  /// Deep copy (weights and config; fresh RNG seeded from the config) —
  /// the candidate model a fine-tuning pass starts from.
  ActionLanguageModel clone() const;

  /// Next-action loss/accuracy over every predictable position of the
  /// given sessions (computed in full-sequence batches; mathematically
  /// the same predictions as the windowed scheme for sessions up to the
  /// window length).
  EvalStats evaluate(std::span<const std::span<const int>> sessions);

  /// Per-action scores of a single session (the online monitoring path).
  nn::NextActionModel::SessionScore score_session(std::span<const int> actions) const;

  /// Streaming access for the online monitor.
  nn::ModelState make_state() const { return model_->make_state(); }
  std::vector<float> step(nn::ModelState& state, int action) const {
    return model_->step(state, action);
  }
  /// Allocation-free variant of step() (reuses the state's scratch).
  void step_into(nn::ModelState& state, int action, std::vector<float>& probs) const {
    model_->step_into(state, action, probs);
  }

  /// The underlying network, for the inference engine's weight packer.
  const nn::NextActionModel& network() const { return *model_; }

  std::size_t parameter_count() { return model_->parameter_count(); }

  void save(BinaryWriter& w) const;
  static ActionLanguageModel load(BinaryReader& r);

 private:
  ActionLanguageModel(const LmConfig& config, nn::NextActionModel model);

  LmConfig config_;
  std::unique_ptr<nn::NextActionModel> model_;
  Rng rng_;
};

}  // namespace misuse::lm

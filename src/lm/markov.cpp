#include "lm/markov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace misuse::lm {

namespace {
constexpr std::uint32_t kMarkovMagic = 0x564b524du;  // "MRKV"
constexpr std::uint32_t kMarkovVersion = 1;
}  // namespace

MarkovChainModel::MarkovChainModel(const MarkovConfig& config)
    : config_(config),
      counts_((config.vocab + 1) * config.vocab, 0.0),
      row_totals_(config.vocab + 1, 0.0) {
  assert(config.vocab > 0);
  assert(config.smoothing > 0.0);
}

void MarkovChainModel::fit(std::span<const std::span<const int>> sessions) {
  const std::size_t d = config_.vocab;
  for (const auto& session : sessions) {
    if (session.empty()) continue;
    // Initial distribution row.
    assert(session[0] >= 0 && static_cast<std::size_t>(session[0]) < d);
    counts_[d * d + static_cast<std::size_t>(session[0])] += 1.0;
    row_totals_[d] += 1.0;
    for (std::size_t i = 0; i + 1 < session.size(); ++i) {
      const auto cur = static_cast<std::size_t>(session[i]);
      const auto next = static_cast<std::size_t>(session[i + 1]);
      assert(cur < d && next < d);
      counts_[cur * d + next] += 1.0;
      row_totals_[cur] += 1.0;
    }
  }
}

std::vector<double> MarkovChainModel::action_frequencies() const {
  const std::size_t d = config_.vocab;
  std::vector<double> freq(d, 0.0);
  for (std::size_t row = 0; row <= d; ++row) {
    for (std::size_t next = 0; next < d; ++next) freq[next] += counts_[row * d + next];
  }
  return freq;
}

double MarkovChainModel::transition_probability(int current, int next) const {
  const std::size_t d = config_.vocab;
  assert(next >= 0 && static_cast<std::size_t>(next) < d);
  const std::size_t row = current < 0 ? d : static_cast<std::size_t>(current);
  assert(row <= d);
  const double numer = counts_[row * d + static_cast<std::size_t>(next)] + config_.smoothing;
  const double denom = row_totals_[row] + config_.smoothing * static_cast<double>(d);
  return numer / denom;
}

std::vector<float> MarkovChainModel::next_distribution(int current) const {
  const std::size_t d = config_.vocab;
  const std::size_t row = current < 0 ? d : static_cast<std::size_t>(current);
  assert(row <= d);
  const double denom = row_totals_[row] + config_.smoothing * static_cast<double>(d);
  std::vector<float> dist(d);
  for (std::size_t next = 0; next < d; ++next) {
    dist[next] = static_cast<float>((counts_[row * d + next] + config_.smoothing) / denom);
  }
  return dist;
}

int MarkovChainModel::most_likely_next(int current) const {
  const std::size_t d = config_.vocab;
  const std::size_t row = current < 0 ? d : static_cast<std::size_t>(current);
  const auto begin = counts_.begin() + static_cast<std::ptrdiff_t>(row * d);
  return static_cast<int>(std::max_element(begin, begin + static_cast<std::ptrdiff_t>(d)) - begin);
}

nn::NextActionModel::SessionScore MarkovChainModel::score_session(
    std::span<const int> actions) const {
  nn::NextActionModel::SessionScore score;
  if (actions.size() < 2) return score;
  std::size_t correct = 0;
  for (std::size_t i = 0; i + 1 < actions.size(); ++i) {
    const double p = transition_probability(actions[i], actions[i + 1]);
    score.likelihoods.push_back(p);
    score.losses.push_back(-std::log(std::max(p, 1e-12)));
    if (most_likely_next(actions[i]) == actions[i + 1]) ++correct;
  }
  score.accuracy =
      static_cast<double>(correct) / static_cast<double>(score.likelihoods.size());
  return score;
}

MarkovChainModel::EvalStats MarkovChainModel::evaluate(
    std::span<const std::span<const int>> sessions) const {
  EvalStats stats;
  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (const auto& session : sessions) {
    const auto score = score_session(session);
    for (double l : score.losses) loss_sum += l;
    correct += static_cast<std::size_t>(
        std::llround(score.accuracy * static_cast<double>(score.losses.size())));
    stats.predictions += score.losses.size();
  }
  if (stats.predictions > 0) {
    stats.loss = loss_sum / static_cast<double>(stats.predictions);
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(stats.predictions);
  }
  return stats;
}

void MarkovChainModel::save(BinaryWriter& w) const {
  w.write_magic(kMarkovMagic, kMarkovVersion);
  w.write<std::uint64_t>(config_.vocab);
  w.write<double>(config_.smoothing);
  w.write_vector(std::span<const double>(counts_));
  w.write_vector(std::span<const double>(row_totals_));
}

MarkovChainModel MarkovChainModel::load(BinaryReader& r) {
  r.read_magic(kMarkovMagic);
  MarkovConfig config;
  config.vocab = static_cast<std::size_t>(r.read<std::uint64_t>());
  config.smoothing = r.read<double>();
  MarkovChainModel model(config);
  model.counts_ = r.read_vector<double>();
  model.row_totals_ = r.read_vector<double>();
  if (model.counts_.size() != (config.vocab + 1) * config.vocab ||
      model.row_totals_.size() != config.vocab + 1) {
    throw SerializeError("markov archive shape mismatch");
  }
  return model;
}

}  // namespace misuse::lm

// Filesystem-backed, versioned model registry — the training/serving
// hand-off point of the misuse-detection pipeline. Retraining "can be
// repeated at any moment" (the paper's drift note); this is where the
// retrained archives go, and where serving picks them up without a
// restart.
//
// Layout (everything under one root directory):
//
//   <root>/
//     CURRENT          one line, "v<N>" — the active version. Replaced
//                      atomically (tmp+fsync+rename); the rename IS the
//                      promote commit point.
//     v<N>/
//       detector.bin   the MisuseDetector archive, bit-for-bit as
//                      published
//       meta.json      VersionMetadata (registry/metadata.hpp)
//
// Crash safety: publish() never touches CURRENT, so a crash mid-publish
// leaves the previous active version serving; a version directory only
// *exists* for readers once its meta.json landed (scans ignore dirs
// without a parseable meta.json, and every file is written atomically).
// promote() writes the candidate's metadata first and moves CURRENT
// last — the pointer flip is the only step that changes what serving
// sees.
//
// GC: gc() removes retired, unpinned versions beyond a keep budget. The
// active version (CURRENT), the canary, staging versions, and pinned
// versions are never candidates, regardless of what their state string
// claims — the predicate consults CURRENT directly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "registry/metadata.hpp"

namespace misuse::registry {

/// Lifecycle violations (promoting a retired version, rolling back with
/// no parent, ...) and I/O failures surface as this.
class RegistryError : public std::runtime_error {
 public:
  explicit RegistryError(const std::string& message) : std::runtime_error(message) {}
};

class ModelRegistry {
 public:
  /// Opens (creating if needed) the registry at `root`.
  explicit ModelRegistry(std::string root);

  const std::string& root() const { return root_; }

  // -- Publishing ----------------------------------------------------------

  /// Copies the detector archive at `archive_path` into the registry as
  /// a new staging version and returns its number. The archive is loaded
  /// once to validate it and to record its vocabulary fingerprint and
  /// shape in the metadata; corrupt archives are rejected here, not at
  /// serving time. Never touches CURRENT.
  std::uint64_t publish(const std::string& archive_path, const std::string& note = "");

  /// publish() with an explicit parent lineage stamp: `parent` records
  /// which version the archive was derived from (the continuous-learning
  /// trainer stamps the active version it fine-tuned). The parent must
  /// exist; it becomes the candidate's rollback target the moment the
  /// candidate reaches active, without waiting for the promote-time
  /// inference (which only knows "whatever was active just before").
  std::uint64_t publish(const std::string& archive_path, const std::string& note,
                        std::uint64_t parent);

  // -- Introspection -------------------------------------------------------

  /// Every version with a parseable meta.json, ascending by number.
  std::vector<VersionMetadata> list() const;
  std::optional<VersionMetadata> metadata(std::uint64_t version) const;

  /// The parent lineage chain starting at `version` (inclusive), oldest
  /// ancestor last: v7 -> v5 -> v2. Stops at a version with no parent, at
  /// a gc'd (missing) parent, or on a cycle (hand-edited metadata); the
  /// chain never throws for a missing *ancestor*, only for a missing
  /// `version` itself.
  std::vector<VersionMetadata> lineage(std::uint64_t version) const;
  /// The version CURRENT points at (authoritative), if any.
  std::optional<std::uint64_t> current() const;
  /// The unique canary version, if one exists.
  std::optional<std::uint64_t> canary() const;

  /// One consistent look at what the registry is serving, from a single
  /// directory scan — what a poller (hot-swap reloader, /statusz) wants,
  /// instead of three scans that can interleave with a promote.
  struct Status {
    std::optional<std::uint64_t> current;  // what CURRENT points at
    std::optional<std::uint64_t> canary;   // the soaking candidate, if any
    std::size_t versions = 0;              // published versions on disk
    std::uint64_t latest = 0;              // highest published number (0 = none)
  };
  Status status() const;

  std::string version_dir(std::uint64_t version) const;
  std::string archive_path(std::uint64_t version) const;

  // -- Lifecycle -----------------------------------------------------------

  /// staging -> canary (at most one canary at a time), or
  /// canary -> active (CURRENT flips; the previous active retires).
  /// Promote twice to skip the canary soak; promoting an active or
  /// retired version throws (use rollback for the latter).
  void promote(std::uint64_t version);

  /// Re-activates the active version's parent. Throws when there is no
  /// active version or it records no parent.
  void rollback();
  /// Re-activates `version` explicitly (must exist; may be retired).
  void rollback_to(std::uint64_t version);

  /// Retires a staging or canary version — the demote path the promotion
  /// policy takes when a candidate fails its guardrails. Retiring an
  /// already-retired version is a no-op; retiring the active version
  /// throws (use rollback to move off it first).
  void retire(std::uint64_t version);

  /// Pinned versions survive gc() regardless of state.
  void pin(std::uint64_t version, bool pinned);

  /// Removes retired, unpinned, non-CURRENT versions, keeping the
  /// `keep_retired` newest retired ones as rollback depth. A version that
  /// is the recorded `parent` of any live (staging/canary/active) version
  /// is also kept regardless of the budget: it is a rollback target —
  /// rollback() re-activates the active version's parent, and a failed
  /// canary falls back to its own — and collecting it would turn a bad
  /// promote into an unrecoverable one. Returns the versions removed.
  std::vector<std::uint64_t> gc(std::size_t keep_retired = 2);

  // -- Loading -------------------------------------------------------------

  /// Loads a version's archive, verifying the loaded vocabulary
  /// fingerprint against the published metadata — a mismatch (archive
  /// replaced or rotted underneath the registry) is a hard, descriptive
  /// error, never a silently wrong model.
  std::shared_ptr<const core::MisuseDetector> load(std::uint64_t version) const;

 private:
  void write_metadata(const VersionMetadata& meta) const;
  VersionMetadata require_metadata(std::uint64_t version) const;
  /// Any version whose state claims active but which CURRENT does not
  /// point at (a crash between metadata write and pointer flip, or after
  /// the flip and before the old active retired) is demoted to retired.
  void reconcile_active(std::uint64_t now_active);

  std::string root_;
};

}  // namespace misuse::registry

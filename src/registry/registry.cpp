#include "registry/registry.hpp"

#include <algorithm>
#include <ctime>
#include <filesystem>
#include <sstream>

#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/fsio.hpp"
#include "util/logging.hpp"

namespace misuse::registry {

namespace fs = std::filesystem;

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << v;
  return out.str();
}

std::string trim(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' || s.back() == ' ')) s.pop_back();
  return s;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw RegistryError("registry root must not be empty");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) throw RegistryError("cannot create registry root '" + root_ + "': " + ec.message());
}

std::string ModelRegistry::version_dir(std::uint64_t version) const {
  return root_ + "/" + version_name(version);
}

std::string ModelRegistry::archive_path(std::uint64_t version) const {
  return version_dir(version) + "/detector.bin";
}

std::optional<std::uint64_t> ModelRegistry::current() const {
  const auto contents = read_file(root_ + "/CURRENT");
  if (!contents) return std::nullopt;
  return parse_version_name(trim(*contents));
}

std::optional<std::uint64_t> ModelRegistry::canary() const {
  for (const auto& meta : list()) {
    if (meta.state == VersionState::kCanary) return meta.version;
  }
  return std::nullopt;
}

ModelRegistry::Status ModelRegistry::status() const {
  Status out;
  out.current = current();
  for (const auto& meta : list()) {
    ++out.versions;
    out.latest = std::max(out.latest, meta.version);
    if (meta.state == VersionState::kCanary) out.canary = meta.version;
  }
  return out;
}

std::vector<VersionMetadata> ModelRegistry::list() const {
  std::vector<VersionMetadata> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const auto version = parse_version_name(entry.path().filename().string());
    if (!version) continue;
    // A directory without a parseable meta.json is an unfinished publish
    // (the metadata write is the last step) — invisible to readers.
    if (auto meta = metadata(*version)) out.push_back(std::move(*meta));
  }
  std::sort(out.begin(), out.end(),
            [](const VersionMetadata& a, const VersionMetadata& b) { return a.version < b.version; });
  return out;
}

std::optional<VersionMetadata> ModelRegistry::metadata(std::uint64_t version) const {
  const auto contents = read_file(version_dir(version) + "/meta.json");
  if (!contents) return std::nullopt;
  auto meta = parse_metadata(*contents);
  // The directory name is authoritative for the number; a mismatching
  // body means the file was copied around by hand — reject it.
  if (meta && meta->version != version) return std::nullopt;
  return meta;
}

VersionMetadata ModelRegistry::require_metadata(std::uint64_t version) const {
  auto meta = metadata(version);
  if (!meta) {
    throw RegistryError("registry '" + root_ + "': no such version " + version_name(version));
  }
  return std::move(*meta);
}

void ModelRegistry::write_metadata(const VersionMetadata& meta) const {
  if (!write_file_atomic(version_dir(meta.version) + "/meta.json", render_metadata(meta))) {
    throw RegistryError("registry '" + root_ + "': cannot write metadata for " +
                        version_name(meta.version));
  }
}

std::uint64_t ModelRegistry::publish(const std::string& archive_path_in,
                                     const std::string& note) {
  return publish(archive_path_in, note, 0);
}

std::uint64_t ModelRegistry::publish(const std::string& archive_path_in, const std::string& note,
                                     std::uint64_t parent) {
  if (parent != 0 && !metadata(parent)) {
    throw RegistryError("publish: lineage parent " + version_name(parent) + " does not exist");
  }
  // Validate before admitting: a corrupt archive fails here, at publish,
  // with the path+section context from load_file — not at 3am in prod.
  core::MisuseDetector detector = [&] {
    try {
      return core::MisuseDetector::load_file(archive_path_in);
    } catch (const SerializeError& e) {
      throw RegistryError(std::string("publish rejected: ") + e.what());
    }
  }();
  const auto bytes = read_file(archive_path_in);
  if (!bytes) throw RegistryError("publish: cannot read archive '" + archive_path_in + "'");

  std::uint64_t next = current().value_or(0);
  for (const auto& meta : list()) next = std::max(next, meta.version);
  ++next;

  std::error_code ec;
  fs::create_directories(version_dir(next), ec);
  if (ec) {
    throw RegistryError("publish: cannot create " + version_dir(next) + ": " + ec.message());
  }
  if (MISUSEDET_FAILPOINT("registry.publish.archive") ||
      !write_file_atomic(archive_path(next), *bytes)) {
    throw RegistryError("publish: cannot write archive for " + version_name(next));
  }

  VersionMetadata meta;
  meta.version = next;
  meta.state = VersionState::kStaging;
  meta.parent = parent;
  meta.vocab_hash = detector.vocab().fingerprint();
  meta.archive_crc = crc32(*bytes);
  meta.archive_bytes = bytes->size();
  meta.clusters = detector.cluster_count();
  meta.vocab_size = detector.vocab().size();
  meta.created_unix = static_cast<std::int64_t>(std::time(nullptr));
  meta.note = note;
  // The metadata write makes the version visible; until it lands, scans
  // skip the directory, so a crash anywhere above publishes nothing.
  if (MISUSEDET_FAILPOINT("registry.publish.meta")) {
    throw RegistryError("publish: cannot write metadata for " + version_name(next));
  }
  write_metadata(meta);
  log_info() << "registry: published " << version_name(next) << " (" << meta.clusters
             << " clusters, vocab " << meta.vocab_size << ", fingerprint 0x"
             << hex64(meta.vocab_hash) << ")";
  return next;
}

void ModelRegistry::reconcile_active(std::uint64_t now_active) {
  for (const auto& meta : list()) {
    if (meta.version == now_active || meta.state != VersionState::kActive) continue;
    VersionMetadata demoted = meta;
    demoted.state = VersionState::kRetired;
    write_metadata(demoted);
  }
}

void ModelRegistry::promote(std::uint64_t version) {
  VersionMetadata meta = require_metadata(version);
  switch (meta.state) {
    case VersionState::kStaging: {
      const auto existing = canary();
      if (existing && *existing != version) {
        throw RegistryError("promote: " + version_name(*existing) +
                            " is already the canary; promote or retire it first");
      }
      meta.state = VersionState::kCanary;
      write_metadata(meta);
      log_info() << "registry: " << version_name(version) << " -> canary";
      return;
    }
    case VersionState::kCanary: {
      const auto previous = current();
      // A publish-time lineage stamp (fine-tuned candidates) is
      // authoritative; only infer the parent from the outgoing active
      // version when the publisher recorded none.
      if (meta.parent == 0 && previous && *previous != version) meta.parent = *previous;
      meta.state = VersionState::kActive;
      write_metadata(meta);
      // The CURRENT flip is the commit point: a crash before it leaves
      // the previous version serving (the active-claiming metadata above
      // is reconciled away on the next successful promote).
      if (MISUSEDET_FAILPOINT("registry.promote.current") ||
          !write_file_atomic(root_ + "/CURRENT", version_name(version) + "\n")) {
        throw RegistryError("promote: cannot update CURRENT pointer");
      }
      reconcile_active(version);
      log_info() << "registry: " << version_name(version) << " -> active (was "
                 << (previous ? version_name(*previous) : "none") << ")";
      return;
    }
    case VersionState::kActive:
      throw RegistryError("promote: " + version_name(version) + " is already active");
    case VersionState::kRetired:
      throw RegistryError("promote: " + version_name(version) +
                          " is retired; use rollback to re-activate it");
  }
}

void ModelRegistry::rollback() {
  const auto cur = current();
  if (!cur) throw RegistryError("rollback: no active version");
  const VersionMetadata meta = require_metadata(*cur);
  if (meta.parent == 0) {
    throw RegistryError("rollback: " + version_name(*cur) + " records no parent version");
  }
  rollback_to(meta.parent);
}

void ModelRegistry::rollback_to(std::uint64_t version) {
  VersionMetadata meta = require_metadata(version);
  const auto previous = current();
  if (previous && *previous == version) {
    reconcile_active(version);
    return;  // already active — idempotent
  }
  meta.state = VersionState::kActive;
  write_metadata(meta);
  if (MISUSEDET_FAILPOINT("registry.promote.current") ||
      !write_file_atomic(root_ + "/CURRENT", version_name(version) + "\n")) {
    throw RegistryError("rollback: cannot update CURRENT pointer");
  }
  reconcile_active(version);
  log_info() << "registry: rolled back to " << version_name(version) << " (was "
             << (previous ? version_name(*previous) : "none") << ")";
}

void ModelRegistry::retire(std::uint64_t version) {
  VersionMetadata meta = require_metadata(version);
  const auto cur = current();
  if ((cur && *cur == version) || meta.state == VersionState::kActive) {
    throw RegistryError("retire: " + version_name(version) +
                        " is active; rollback to another version first");
  }
  if (meta.state == VersionState::kRetired) return;  // idempotent
  meta.state = VersionState::kRetired;
  write_metadata(meta);
  log_info() << "registry: retired " << version_name(version);
}

std::vector<VersionMetadata> ModelRegistry::lineage(std::uint64_t version) const {
  std::vector<VersionMetadata> chain;
  chain.push_back(require_metadata(version));
  std::vector<std::uint64_t> visited{version};
  while (chain.back().parent != 0) {
    const std::uint64_t parent = chain.back().parent;
    if (std::find(visited.begin(), visited.end(), parent) != visited.end()) break;  // cycle
    auto meta = metadata(parent);
    if (!meta) break;  // gc'd ancestor — the chain ends where history does
    visited.push_back(parent);
    chain.push_back(std::move(*meta));
  }
  return chain;
}

void ModelRegistry::pin(std::uint64_t version, bool pinned) {
  VersionMetadata meta = require_metadata(version);
  meta.pinned = pinned;
  write_metadata(meta);
}

std::vector<std::uint64_t> ModelRegistry::gc(std::size_t keep_retired) {
  const auto cur = current();
  const auto all = list();
  // The recorded parent of any live version is a rollback target:
  // rollback() re-activates the active version's parent, and a canary
  // that fails its soak falls back to its own. Removing one would leave a
  // dangling lineage pointer exactly when it is needed most.
  std::vector<std::uint64_t> rollback_targets;
  for (const auto& meta : all) {
    const bool live = meta.state != VersionState::kRetired || (cur && *cur == meta.version);
    if (live && meta.parent != 0) rollback_targets.push_back(meta.parent);
  }
  std::vector<VersionMetadata> retired;
  for (auto meta : all) {
    // The predicate consults CURRENT directly: even a metadata file that
    // wrongly claims "retired" for the active version cannot make GC
    // remove what serving points at. Canary/staging/pinned never qualify,
    // and neither does a live version's rollback target.
    if (meta.state != VersionState::kRetired) continue;
    if (meta.pinned) continue;
    if (cur && *cur == meta.version) continue;
    if (std::find(rollback_targets.begin(), rollback_targets.end(), meta.version) !=
        rollback_targets.end()) {
      continue;
    }
    retired.push_back(std::move(meta));
  }
  // Newest retired versions are the rollback depth — keep them.
  std::sort(retired.begin(), retired.end(),
            [](const VersionMetadata& a, const VersionMetadata& b) { return a.version > b.version; });
  std::vector<std::uint64_t> removed;
  for (std::size_t i = keep_retired; i < retired.size(); ++i) {
    std::error_code ec;
    fs::remove_all(version_dir(retired[i].version), ec);
    if (!ec) removed.push_back(retired[i].version);
  }
  std::sort(removed.begin(), removed.end());
  if (!removed.empty()) log_info() << "registry: gc removed " << removed.size() << " versions";
  return removed;
}

std::shared_ptr<const core::MisuseDetector> ModelRegistry::load(std::uint64_t version) const {
  const VersionMetadata meta = require_metadata(version);
  core::MisuseDetector detector = [&] {
    try {
      return core::MisuseDetector::load_file(archive_path(version));
    } catch (const SerializeError& e) {
      throw RegistryError(std::string("load: ") + e.what());
    }
  }();
  const std::uint64_t fingerprint = detector.vocab().fingerprint();
  if (fingerprint != meta.vocab_hash) {
    // Hard error: a vocabulary that drifted from the published metadata
    // means the archive was replaced or rotted after publish — scoring
    // with it would silently misinterpret every action id.
    throw RegistryError("registry " + version_name(version) +
                        ": archive vocabulary fingerprint 0x" + hex64(fingerprint) +
                        " does not match published metadata 0x" + hex64(meta.vocab_hash) +
                        " (archive replaced or corrupted after publish)");
  }
  return std::make_shared<core::MisuseDetector>(std::move(detector));
}

}  // namespace misuse::registry

// misusedet_registry: operator CLI over the model registry.
//
//   misusedet_registry publish  --root=DIR ARCHIVE [--note=TEXT]
//                               [--quantize=int8|fp16 [--max-flip-rate=X]]
//   misusedet_registry list     --root=DIR
//   misusedet_registry show     --root=DIR VERSION
//   misusedet_registry promote  --root=DIR VERSION
//   misusedet_registry rollback --root=DIR [VERSION]
//   misusedet_registry pin      --root=DIR VERSION
//   misusedet_registry unpin    --root=DIR VERSION
//   misusedet_registry gc       --root=DIR [--keep-retired=N]
//
// VERSION is "v3" or plain "3". Exit code 0 on success, 1 on any error
// (message on stderr). See README "Model lifecycle" for the publish ->
// canary -> promote -> rollback walkthrough.
#include <cstdio>
#include <ctime>
#include <exception>
#include <fstream>
#include <string>

#include "core/detector.hpp"
#include "core/quant_gate.hpp"
#include "nn/infer/quant.hpp"
#include "registry/registry.hpp"
#include "util/cli.hpp"
#include "util/serialize.hpp"

namespace {

using misuse::registry::ModelRegistry;
using misuse::registry::RegistryError;
using misuse::registry::VersionMetadata;
using misuse::registry::version_name;
using misuse::registry::version_state_name;

[[noreturn]] void usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s COMMAND --root=DIR [args]\n"
               "commands:\n"
               "  publish ARCHIVE [--note=TEXT]   add a detector archive as a staging version\n"
               "          [--quantize=int8|fp16]   rewrite with quantized inference weights;\n"
               "          [--max-flip-rate=X]      refused unless the accuracy gate passes\n"
               "                                   (verdict flips <= X, default 0.01)\n"
               "  list [--json]                   all versions with state and provenance\n"
               "                                  (--json: one meta.json line per version)\n"
               "  show VERSION [--json]           one version's metadata + its parent\n"
               "                                  lineage chain\n"
               "  promote VERSION                 staging->canary / canary->active\n"
               "  rollback [VERSION]              re-activate the parent (or VERSION)\n"
               "  pin VERSION / unpin VERSION     shield from / expose to gc\n"
               "  gc [--keep-retired=N]           remove old retired versions (default N=2)\n",
               program);
  std::exit(1);
}

std::uint64_t parse_version_arg(const std::string& arg) {
  auto v = misuse::registry::parse_version_name(arg);
  if (!v) v = misuse::registry::parse_version_name("v" + arg);
  if (!v) throw RegistryError("not a version: '" + arg + "' (expected v<N> or <N>)");
  return *v;
}

void print_version(const VersionMetadata& meta, std::uint64_t current, std::uint64_t canary) {
  char stamp[32] = "-";
  if (meta.created_unix > 0) {
    const std::time_t t = static_cast<std::time_t>(meta.created_unix);
    std::tm tm{};
    if (gmtime_r(&t, &tm) != nullptr) std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%MZ", &tm);
  }
  const std::string name = version_name(meta.version);
  const std::string state(version_state_name(meta.state));
  const std::string note = meta.note.empty() ? "" : "  # " + meta.note;
  std::printf("%-6s %-8s %-17s %8llu bytes  clusters=%llu vocab=%llu%s%s%s%s\n", name.c_str(),
              state.c_str(), stamp, static_cast<unsigned long long>(meta.archive_bytes),
              static_cast<unsigned long long>(meta.clusters),
              static_cast<unsigned long long>(meta.vocab_size), meta.pinned ? " [pinned]" : "",
              meta.version == current ? " [CURRENT]" : "", meta.version == canary ? " [canary]" : "",
              note.c_str());
}

int run(int argc, char** argv) {
  const misuse::CliArgs args(argc, argv);
  const auto& positional = args.positional();
  if (positional.empty()) usage(argv[0]);
  const std::string& command = positional[0];
  const std::string root = args.str("root");
  if (root.empty()) {
    std::fprintf(stderr, "error: --root=DIR is required\n");
    return 1;
  }
  ModelRegistry registry(root);

  if (command == "publish") {
    if (positional.size() != 2) usage(argv[0]);
    std::string archive = positional[1];
    std::string quantized_tmp;
    if (args.has("quantize")) {
      const auto kind = misuse::nn::infer::parse_quant_kind(args.str("quantize"));
      if (!kind || *kind == misuse::nn::infer::QuantKind::kNone) {
        throw RegistryError("unknown --quantize kind '" + args.str("quantize") +
                            "' (int8 | fp16)");
      }
      // Rewrite the archive with quantized weight sections, then reload
      // that rewrite and measure the accuracy gate on what would actually
      // serve — verdict flips and loss deltas against the float weights.
      const auto detector = misuse::core::MisuseDetector::load_file(archive);
      quantized_tmp = archive + ".quantized.tmp";
      {
        std::ofstream out(quantized_tmp, std::ios::binary);
        if (!out) throw RegistryError("cannot write " + quantized_tmp);
        misuse::BinaryWriter writer(out);
        misuse::core::DetectorSaveOptions options;
        options.quant = *kind;
        detector.save(writer, options);
      }
      const auto reloaded = misuse::core::MisuseDetector::load_file(quantized_tmp);
      misuse::core::QuantGateConfig gate;
      gate.max_flip_rate = args.real("max-flip-rate", 0.01);
      const auto result = misuse::core::measure_quant_gate(reloaded, gate);
      std::fprintf(stderr,
                   "quantize %s: %llu sessions, %llu steps, %llu verdict flips "
                   "(rate %.5f, cap %.5f), max loss delta %.5f (cap %.5f)\n",
                   misuse::nn::infer::quant_kind_name(*kind),
                   static_cast<unsigned long long>(result.sessions),
                   static_cast<unsigned long long>(result.steps),
                   static_cast<unsigned long long>(result.verdict_flips), result.flip_rate,
                   gate.max_flip_rate, result.max_loss_delta, gate.max_loss_delta);
      if (!result.pass) {
        std::remove(quantized_tmp.c_str());
        throw RegistryError("quantization accuracy gate failed; refusing to publish");
      }
      archive = quantized_tmp;
    }
    const std::uint64_t version = registry.publish(archive, args.str("note"));
    if (!quantized_tmp.empty()) std::remove(quantized_tmp.c_str());
    std::printf("%s\n", version_name(version).c_str());
    return 0;
  }
  if (command == "list") {
    if (args.flag("json")) {
      // NDJSON: the exact meta.json bodies (render_metadata is already
      // one flat JSON line per version) — what learnd and scripts parse
      // instead of scraping the human table.
      for (const auto& meta : registry.list()) {
        std::fputs(misuse::registry::render_metadata(meta).c_str(), stdout);
      }
      return 0;
    }
    const auto current = registry.current().value_or(0);
    const auto canary = registry.canary().value_or(0);
    for (const auto& meta : registry.list()) print_version(meta, current, canary);
    return 0;
  }
  if (command == "show") {
    if (positional.size() != 2) usage(argv[0]);
    const auto version = parse_version_arg(positional[1]);
    const auto chain = registry.lineage(version);  // throws when version is missing
    if (args.flag("json")) {
      for (const auto& meta : chain) {
        std::fputs(misuse::registry::render_metadata(meta).c_str(), stdout);
      }
      return 0;
    }
    const auto current = registry.current().value_or(0);
    const auto canary = registry.canary().value_or(0);
    for (const auto& meta : chain) print_version(meta, current, canary);
    std::string lineage;
    for (const auto& meta : chain) {
      if (!lineage.empty()) lineage += " -> ";
      lineage += version_name(meta.version);
    }
    // A recorded parent past the end of the chain was gc'd (possible for
    // retired-only ancestry) — say so instead of silently truncating.
    if (chain.back().parent != 0) lineage += " -> " + version_name(chain.back().parent) + " (gone)";
    std::printf("lineage: %s\n", lineage.c_str());
    return 0;
  }
  if (command == "promote") {
    if (positional.size() != 2) usage(argv[0]);
    registry.promote(parse_version_arg(positional[1]));
    return 0;
  }
  if (command == "rollback") {
    if (positional.size() > 2) usage(argv[0]);
    if (positional.size() == 2) {
      registry.rollback_to(parse_version_arg(positional[1]));
    } else {
      registry.rollback();
    }
    std::printf("%s\n", version_name(registry.current().value_or(0)).c_str());
    return 0;
  }
  if (command == "pin" || command == "unpin") {
    if (positional.size() != 2) usage(argv[0]);
    registry.pin(parse_version_arg(positional[1]), command == "pin");
    return 0;
  }
  if (command == "gc") {
    const auto keep = static_cast<std::size_t>(args.integer("keep-retired", 2));
    for (const std::uint64_t version : registry.gc(keep)) {
      std::printf("removed %s\n", version_name(version).c_str());
    }
    return 0;
  }
  usage(argv[0]);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

#include "registry/metadata.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "util/json.hpp"
#include "util/line_io.hpp"

namespace misuse::registry {

namespace {

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), digits[v & 0xf]);
    v >>= 4;
  } while (v != 0);
  return out;
}

std::optional<std::uint64_t> parse_hex(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::optional<std::uint64_t> get_u64(const std::vector<JsonField>& fields, std::string_view key) {
  const auto v = get_number(fields, key);
  if (!v || *v < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

}  // namespace

std::string_view version_state_name(VersionState state) {
  switch (state) {
    case VersionState::kStaging: return "staging";
    case VersionState::kCanary: return "canary";
    case VersionState::kActive: return "active";
    case VersionState::kRetired: return "retired";
  }
  return "unknown";
}

std::optional<VersionState> parse_version_state(std::string_view name) {
  if (name == "staging") return VersionState::kStaging;
  if (name == "canary") return VersionState::kCanary;
  if (name == "active") return VersionState::kActive;
  if (name == "retired") return VersionState::kRetired;
  return std::nullopt;
}

std::string version_name(std::uint64_t version) { return "v" + std::to_string(version); }

std::optional<std::uint64_t> parse_version_name(std::string_view name) {
  if (name.size() < 2 || name.size() > 21 || name[0] != 'v') return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : name.substr(1)) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string render_metadata(const VersionMetadata& meta) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("version", meta.version);
    json.member("state", version_state_name(meta.state));
    json.member("parent", meta.parent);
    json.member("vocab_hash", to_hex(meta.vocab_hash));
    json.member("archive_crc", to_hex(meta.archive_crc));
    json.member("archive_bytes", meta.archive_bytes);
    json.member("clusters", meta.clusters);
    json.member("vocab_size", meta.vocab_size);
    json.member("pinned", meta.pinned);
    json.member("created_unix", static_cast<long long>(meta.created_unix));
    json.member("note", meta.note);
    json.end_object();
  }
  out << '\n';
  return out.str();
}

std::optional<VersionMetadata> parse_metadata(std::string_view json) {
  // Trim the trailing newline render_metadata appends.
  while (!json.empty() && (json.back() == '\n' || json.back() == '\r')) json.remove_suffix(1);
  std::vector<JsonField> fields;
  std::string error;
  if (!parse_flat_json(json, fields, error)) return std::nullopt;

  VersionMetadata meta;
  const auto version = get_u64(fields, "version");
  const auto state_name = get_string(fields, "state");
  const auto vocab_hash = get_string(fields, "vocab_hash");
  const auto archive_crc = get_string(fields, "archive_crc");
  if (!version || !state_name || !vocab_hash || !archive_crc) return std::nullopt;
  const auto state = parse_version_state(*state_name);
  const auto hash_value = parse_hex(*vocab_hash);
  const auto crc_value = parse_hex(*archive_crc);
  if (!state || !hash_value || !crc_value || *crc_value > 0xffffffffULL) return std::nullopt;

  meta.version = *version;
  meta.state = *state;
  meta.vocab_hash = *hash_value;
  meta.archive_crc = static_cast<std::uint32_t>(*crc_value);
  meta.parent = get_u64(fields, "parent").value_or(0);
  meta.archive_bytes = get_u64(fields, "archive_bytes").value_or(0);
  meta.clusters = get_u64(fields, "clusters").value_or(0);
  meta.vocab_size = get_u64(fields, "vocab_size").value_or(0);
  const JsonField* pinned = find_field(fields, "pinned");
  meta.pinned = pinned != nullptr && !pinned->is_string && pinned->value == "true";
  meta.created_unix =
      static_cast<std::int64_t>(get_number(fields, "created_unix").value_or(0.0));
  meta.note = get_string(fields, "note").value_or("");
  return meta;
}

}  // namespace misuse::registry

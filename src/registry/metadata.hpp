// Per-version metadata of the model registry (src/registry/registry.hpp).
// Each registry/<version>/ directory carries a meta.json beside the
// detector archive: one flat JSON object describing where the version
// came from (parent, note, creation time), what it contains (vocabulary
// fingerprint, archive CRC/size, cluster count), and where it stands in
// the lifecycle (staging -> canary -> active -> retired, plus a pin bit
// that shields it from GC). The vocabulary fingerprint is the
// compatibility key: serving compares it across versions to decide
// whether open sessions can ride through a hot-swap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace misuse::registry {

/// Lifecycle states. The CURRENT pointer file — not this field — is the
/// authority on which version is active; the state string is the
/// human/GC-facing record and is reconciled against CURRENT on promote.
enum class VersionState {
  kStaging,  // published, not yet serving anything
  kCanary,   // candidate under shadow/canary evaluation (at most one)
  kActive,   // the version CURRENT points at
  kRetired,  // formerly active; GC may remove it unless pinned
};

std::string_view version_state_name(VersionState state);
std::optional<VersionState> parse_version_state(std::string_view name);

struct VersionMetadata {
  std::uint64_t version = 0;  // numeric id; directory is "v<version>"
  VersionState state = VersionState::kStaging;
  /// The version that was active when this one was promoted over it
  /// (rollback target); 0 = none.
  std::uint64_t parent = 0;
  /// ActionVocab::fingerprint() of the archived detector's vocabulary.
  std::uint64_t vocab_hash = 0;
  /// CRC32 of the archive file's bytes, and its size, as published.
  std::uint32_t archive_crc = 0;
  std::uint64_t archive_bytes = 0;
  std::uint64_t clusters = 0;
  std::uint64_t vocab_size = 0;
  /// Pinned versions are never garbage-collected.
  bool pinned = false;
  /// Publish time, seconds since the epoch.
  std::int64_t created_unix = 0;
  /// Free-form operator note ("retrained on June data").
  std::string note;
};

/// "v3" <-> 3. parse accepts exactly 'v' + decimal digits.
std::string version_name(std::uint64_t version);
std::optional<std::uint64_t> parse_version_name(std::string_view name);

/// One-line flat JSON (newline-terminated). 64-bit hashes are encoded as
/// hex *strings* — JSON numbers round-trip through double and would
/// silently lose the low bits.
std::string render_metadata(const VersionMetadata& meta);
std::optional<VersionMetadata> parse_metadata(std::string_view json);

}  // namespace misuse::registry

// Text log reader/writer. The portal's audit log is modeled as one line
// per session:
//
//   <session_id> TAB <user> TAB <start_minute> TAB act1,act2,act3,...
//
// with '#'-prefixed comment lines. This mirrors how the DiSIEM use case
// exports "sessions containing sequences of actions" and lets users feed
// their own logs into the pipeline without recompiling.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sessions/store.hpp"

namespace misuse {

class LogParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes every session in the store (action names resolved through the
/// store's vocabulary).
void write_session_log(const SessionStore& store, std::ostream& out);
void write_session_log_file(const SessionStore& store, const std::string& path);

/// Parses a log, interning unseen action names into `store`'s vocabulary.
/// Malformed lines raise LogParseError with the line number.
void read_session_log(std::istream& in, SessionStore& store);
SessionStore read_session_log_file(const std::string& path);

}  // namespace misuse

#include "sessions/sessionizer.hpp"

#include <algorithm>
#include <cassert>

namespace misuse {

SessionStore sessionize(std::vector<Event> events, const ActionVocab& vocab,
                        const SessionizerConfig& config) {
  SessionStore store(vocab);
  if (events.empty()) return store;

  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.user != b.user) return a.user < b.user;
    return a.minute < b.minute;
  });

  std::uint64_t next_id = 1;
  Session current;
  bool open = false;
  std::uint64_t last_minute = 0;

  const auto close_session = [&]() {
    if (open && !current.actions.empty()) {
      store.add(std::move(current));
    }
    current = Session{};
    open = false;
  };
  const auto open_session = [&](const Event& e) {
    current = Session{};
    current.id = next_id++;
    current.user = e.user;
    current.start_minute = e.minute;
    open = true;
  };

  for (const Event& e : events) {
    assert(e.action >= 0 && static_cast<std::size_t>(e.action) < vocab.size());
    const bool user_changed = open && current.user != e.user;
    const bool gap_exceeded = open && config.idle_gap_minutes > 0 &&
                              e.minute > last_minute + config.idle_gap_minutes;
    const bool is_login = config.login_action >= 0 && e.action == config.login_action;

    if (user_changed || gap_exceeded || (is_login && open)) close_session();
    if (!open) {
      open_session(e);
      if (is_login && !config.keep_markers) {
        last_minute = e.minute;
        continue;  // marker consumed, session stays open
      }
    }

    const bool is_logout = config.logout_action >= 0 && e.action == config.logout_action;
    if (!is_logout || config.keep_markers) current.actions.push_back(e.action);
    last_minute = e.minute;
    if (is_logout) close_session();
  }
  close_session();
  return store;
}

}  // namespace misuse

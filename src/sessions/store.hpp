// SessionStore: the historical dataset H = {s_1, ..., s_m} plus the
// shared action vocabulary; provides the paper's preprocessing steps
// (minimum-length filter, 70/15/15 splits) and dataset statistics
// (Fig. 3).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sessions/session.hpp"
#include "sessions/vocab.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace misuse {

/// Index-based split of a dataset into train/valid/test.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> valid;
  std::vector<std::size_t> test;

  std::size_t total() const { return train.size() + valid.size() + test.size(); }
};

class SessionStore {
 public:
  SessionStore() = default;
  explicit SessionStore(ActionVocab vocab) : vocab_(std::move(vocab)) {}

  ActionVocab& vocab() { return vocab_; }
  const ActionVocab& vocab() const { return vocab_; }

  void add(Session session);
  std::size_t size() const { return sessions_.size(); }
  bool empty() const { return sessions_.empty(); }
  const Session& at(std::size_t i) const { return sessions_.at(i); }
  const std::vector<Session>& all() const { return sessions_; }

  /// Number of distinct users appearing in the store.
  std::size_t distinct_users() const;

  /// Session lengths as doubles (for stats/histograms).
  std::vector<double> lengths() const;
  Summary length_summary() const;

  /// Drops sessions with fewer than `min_actions` actions (the paper
  /// removes sessions of length < 2, §IV-A). Returns number removed.
  std::size_t filter_short_sessions(std::size_t min_actions);

  /// Random 70/15/15 split (paper proportions) over the given indices;
  /// `indices` defaults to the whole store when empty.
  Split split_70_15_15(Rng& rng, std::vector<std::size_t> indices = {}) const;
  Split split(Rng& rng, double train_frac, double valid_frac,
              std::vector<std::size_t> indices = {}) const;

 private:
  ActionVocab vocab_;
  std::vector<Session> sessions_;
};

}  // namespace misuse

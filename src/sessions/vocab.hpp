// Action vocabulary: bidirectional mapping between action names
// ("ActionSearchUser", "ActionDeleteUser", ...) and dense integer ids.
// The id space is the dimension d of the one-hot encoding fed to the
// LSTM and of the OC-SVM histogram features.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/serialize.hpp"

namespace misuse {

class ActionVocab {
 public:
  ActionVocab() = default;

  /// Returns the id of `name`, interning it if new.
  int intern(std::string_view name);

  /// Id lookup without interning.
  std::optional<int> find(std::string_view name) const;

  /// Name of an id; requires 0 <= id < size().
  const std::string& name(int id) const;

  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  const std::vector<std::string>& names() const { return names_; }

  /// Stable 64-bit FNV-1a fingerprint over the names *in id order* (names
  /// are separated unambiguously, so the hash pins both the action set and
  /// the id assignment). Two vocabularies with equal fingerprints encode
  /// actions identically — the compatibility check the model registry and
  /// the serving hot-swap rely on.
  std::uint64_t fingerprint() const;

  void save(BinaryWriter& w) const;
  static ActionVocab load(BinaryReader& r);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace misuse

#include "sessions/log_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace misuse {

namespace {
constexpr std::string_view kHeader = "# misusedet session log v1";

template <typename T>
T parse_number(std::string_view s, std::size_t line_no, const char* what) {
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw LogParseError("line " + std::to_string(line_no) + ": bad " + what + " '" +
                        std::string(s) + "'");
  }
  return value;
}
}  // namespace

void write_session_log(const SessionStore& store, std::ostream& out) {
  out << kHeader << '\n';
  for (const auto& s : store.all()) {
    out << s.id << '\t' << s.user << '\t' << s.start_minute << '\t';
    for (std::size_t i = 0; i < s.actions.size(); ++i) {
      if (i > 0) out << ',';
      out << store.vocab().name(s.actions[i]);
    }
    out << '\n';
  }
}

void write_session_log_file(const SessionStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw LogParseError("cannot open for writing: " + path);
  write_session_log(store, out);
}

void read_session_log(std::istream& in, SessionStore& store) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty() || trim(line).front() == '#') continue;
    // Strip only the line terminator: a trailing tab is significant (it
    // carries an empty actions field).
    std::string_view body = line;
    while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) body.remove_suffix(1);
    const auto fields = split(body, '\t');
    if (fields.size() != 4) {
      throw LogParseError("line " + std::to_string(line_no) + ": expected 4 tab-separated fields, got " +
                          std::to_string(fields.size()));
    }
    Session s;
    s.id = parse_number<std::uint64_t>(fields[0], line_no, "session id");
    s.user = parse_number<std::uint32_t>(fields[1], line_no, "user");
    s.start_minute = parse_number<std::uint64_t>(fields[2], line_no, "start minute");
    if (!trim(fields[3]).empty()) {
      for (const auto& name : split(fields[3], ',')) {
        const auto action = trim(name);
        if (action.empty()) {
          throw LogParseError("line " + std::to_string(line_no) + ": empty action name");
        }
        s.actions.push_back(store.vocab().intern(action));
      }
    }
    store.add(std::move(s));
  }
}

SessionStore read_session_log_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw LogParseError("cannot open for reading: " + path);
  SessionStore store;
  read_session_log(in, store);
  return store;
}

}  // namespace misuse

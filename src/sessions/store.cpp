#include "sessions/store.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace misuse {

void SessionStore::add(Session session) {
#ifndef NDEBUG
  for (int a : session.actions) {
    assert(a >= 0 && static_cast<std::size_t>(a) < vocab_.size());
  }
#endif
  sessions_.push_back(std::move(session));
}

std::size_t SessionStore::distinct_users() const {
  std::unordered_set<std::uint32_t> users;
  for (const auto& s : sessions_) users.insert(s.user);
  return users.size();
}

std::vector<double> SessionStore::lengths() const {
  std::vector<double> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(static_cast<double>(s.length()));
  return out;
}

Summary SessionStore::length_summary() const {
  const auto ls = lengths();
  return summarize(ls);
}

std::size_t SessionStore::filter_short_sessions(std::size_t min_actions) {
  const std::size_t before = sessions_.size();
  std::erase_if(sessions_, [min_actions](const Session& s) { return s.length() < min_actions; });
  return before - sessions_.size();
}

Split SessionStore::split_70_15_15(Rng& rng, std::vector<std::size_t> indices) const {
  return split(rng, 0.70, 0.15, std::move(indices));
}

Split SessionStore::split(Rng& rng, double train_frac, double valid_frac,
                          std::vector<std::size_t> indices) const {
  assert(train_frac > 0.0 && valid_frac >= 0.0 && train_frac + valid_frac <= 1.0);
  if (indices.empty()) {
    indices.resize(sessions_.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  }
  rng.shuffle(indices);
  const auto n = indices.size();
  const auto n_train = static_cast<std::size_t>(static_cast<double>(n) * train_frac);
  const auto n_valid = static_cast<std::size_t>(static_cast<double>(n) * valid_frac);
  Split split;
  split.train.assign(indices.begin(), indices.begin() + static_cast<std::ptrdiff_t>(n_train));
  split.valid.assign(indices.begin() + static_cast<std::ptrdiff_t>(n_train),
                     indices.begin() + static_cast<std::ptrdiff_t>(n_train + n_valid));
  split.test.assign(indices.begin() + static_cast<std::ptrdiff_t>(n_train + n_valid),
                    indices.end());
  return split;
}

}  // namespace misuse

#include "sessions/vocab.hpp"

#include <cassert>

namespace misuse {

int ActionVocab::intern(std::string_view name) {
  const auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<int> ActionVocab::find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& ActionVocab::name(int id) const {
  assert(id >= 0 && static_cast<std::size_t>(id) < names_.size());
  return names_[static_cast<std::size_t>(id)];
}

std::uint64_t ActionVocab::fingerprint() const {
  // FNV-1a over every name in id order, with a separator byte folded in
  // after each name so {"ab","c"} and {"a","bc"} hash differently.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (const std::string& name : names_) {
    for (const char c : name) mix(static_cast<unsigned char>(c));
    mix(0x1f);  // unit separator, same framing idea as session_key
  }
  return h;
}

void ActionVocab::save(BinaryWriter& w) const { w.write_string_vector(names_); }

ActionVocab ActionVocab::load(BinaryReader& r) {
  ActionVocab v;
  v.names_ = r.read_string_vector();
  v.ids_.reserve(v.names_.size());
  for (std::size_t i = 0; i < v.names_.size(); ++i) {
    v.ids_.emplace(v.names_[i], static_cast<int>(i));
  }
  return v;
}

}  // namespace misuse

// A session is the paper's unit of analysis: the ordered tuple of actions
// a user performed between log-in and log-out of the administrative
// portal, plus the metadata the log records (user, start time).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace misuse {

struct Session {
  std::uint64_t id = 0;
  std::uint32_t user = 0;          // anonymized user index
  std::uint64_t start_minute = 0;  // minutes since start of recording
  std::vector<int> actions;        // action ids into an ActionVocab

  /// Ground-truth archetype from the synthetic generator (-1 when
  /// unknown, e.g. parsed from a real log). Never shown to the pipeline;
  /// used only for evaluation oracles.
  int archetype = -1;
  /// True when the generator injected this session as a misuse (only
  /// meaningful for synthetic data; the paper's dataset had no labels).
  bool injected_misuse = false;

  std::size_t length() const { return actions.size(); }
  std::span<const int> view() const { return actions; }
};

}  // namespace misuse

// Sessionization of a raw event stream. The paper assumes "interactions
// can be separated into sessions (e.g., all actions between a log-in and
// a log-out of the system are a session)"; real audit logs, however,
// arrive as flat (user, timestamp, action) events. This substrate turns
// such a stream into the SessionStore the pipeline consumes, splitting
// per user on explicit login/logout markers and/or inactivity gaps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sessions/store.hpp"

namespace misuse {

/// One raw audit event.
struct Event {
  std::uint32_t user = 0;
  std::uint64_t minute = 0;  // absolute timestamp in minutes
  int action = 0;            // action id in the target vocabulary
};

struct SessionizerConfig {
  /// Inactivity gap (minutes) that closes the current session; 0 disables
  /// gap-based splitting.
  std::uint64_t idle_gap_minutes = 30;
  /// Action id that opens a session (e.g. "ActionLogin"); -1 disables
  /// marker-based splitting.
  int login_action = -1;
  /// Action id that closes a session (e.g. "ActionLogout"); -1 disables.
  int logout_action = -1;
  /// Include the login/logout markers in the produced sessions.
  bool keep_markers = true;
};

/// Splits events into sessions. Events may arrive in any order; they are
/// sorted by (user, minute) with a stable sort so same-minute events keep
/// stream order. Session ids are assigned sequentially from 1; the given
/// vocabulary provides the store's action names.
SessionStore sessionize(std::vector<Event> events, const ActionVocab& vocab,
                        const SessionizerConfig& config);

}  // namespace misuse

#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace misuse::nn {
namespace {

std::vector<std::vector<int>> make_tokens(std::initializer_list<std::initializer_list<int>> rows) {
  std::vector<std::vector<int>> out;
  for (const auto& r : rows) out.emplace_back(r);
  return out;
}

TEST(Lstm, ForwardShapes) {
  Rng rng(1);
  Lstm lstm(5, 3, rng);
  lstm.forward(make_tokens({{0, 1}, {2, 3}, {4, 0}}));
  EXPECT_EQ(lstm.steps(), 3u);
  EXPECT_EQ(lstm.batch(), 2u);
  EXPECT_EQ(lstm.hidden_at(0).rows(), 2u);
  EXPECT_EQ(lstm.hidden_at(0).cols(), 3u);
}

TEST(Lstm, DeterministicForward) {
  Rng rng1(7), rng2(7);
  Lstm a(4, 6, rng1), b(4, 6, rng2);
  const auto tokens = make_tokens({{1}, {2}, {3}});
  a.forward(tokens);
  b.forward(tokens);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(a.hidden_at(t) == b.hidden_at(t));
  }
}

TEST(Lstm, HiddenOutputsBounded) {
  Rng rng(2);
  Lstm lstm(8, 16, rng);
  std::vector<std::vector<int>> tokens(50, std::vector<int>{3});
  lstm.forward(tokens);
  // h = o * tanh(c), both factors in (-1, 1) => |h| < 1.
  for (std::size_t t = 0; t < lstm.steps(); ++t) {
    for (float v : lstm.hidden_at(t).flat()) {
      ASSERT_LT(std::abs(v), 1.0f);
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Lstm, PadTokenMatchesZeroInputContribution) {
  // A pad step must only apply bias + recurrent weights. Verify by
  // comparing a fresh LSTM fed a pad vs a real token: outputs differ.
  Rng rng(3);
  Lstm lstm(4, 5, rng);
  lstm.forward(make_tokens({{kPadToken}}));
  const Matrix h_pad = lstm.hidden_at(0);
  lstm.forward(make_tokens({{2}}));
  const Matrix h_tok = lstm.hidden_at(0);
  bool differs = false;
  for (std::size_t i = 0; i < h_pad.size(); ++i) {
    differs |= (h_pad.flat()[i] != h_tok.flat()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Lstm, LeadingPadsDelayButDoNotBlockDynamics) {
  // With left padding the state still evolves through biases; verify the
  // padded prefix produces identical states across different batch rows
  // (pads are indistinguishable).
  Rng rng(4);
  Lstm lstm(6, 4, rng);
  lstm.forward(make_tokens({{kPadToken, kPadToken}, {kPadToken, kPadToken}, {1, 5}}));
  const Matrix& h1 = lstm.hidden_at(1);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(h1(0, j), h1(1, j));
  const Matrix& h2 = lstm.hidden_at(2);
  bool differs = false;
  for (std::size_t j = 0; j < 4; ++j) differs |= (h2(0, j) != h2(1, j));
  EXPECT_TRUE(differs);
}

TEST(Lstm, StreamingStepMatchesBatchedForward) {
  Rng rng(5);
  Lstm lstm(7, 9, rng);
  const std::vector<int> sequence = {1, 4, 2, 6, 0, 3};

  std::vector<std::vector<int>> tokens;
  for (int a : sequence) tokens.push_back({a});
  lstm.forward(tokens);

  LstmState state(1, 9);
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    lstm.step({sequence[t]}, state);
    for (std::size_t j = 0; j < 9; ++j) {
      ASSERT_NEAR(state.h(0, j), lstm.hidden_at(t)(0, j), 1e-6f) << "t=" << t << " j=" << j;
    }
  }
}

TEST(Lstm, BatchRowsAreIndependent) {
  // Each batch row must evolve independently: feeding (s1, s2) batched
  // equals feeding each alone.
  Rng rng(6);
  Lstm lstm(5, 4, rng);
  const auto batched = make_tokens({{1, 3}, {2, 0}, {4, 4}});
  lstm.forward(batched);
  Matrix h_last = lstm.hidden_at(2);

  lstm.forward(make_tokens({{1}, {2}, {4}}));
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(lstm.hidden_at(2)(0, j), h_last(0, j), 1e-6f);
  lstm.forward(make_tokens({{3}, {0}, {4}}));
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(lstm.hidden_at(2)(0, j), h_last(1, j), 1e-6f);
}

TEST(Lstm, BackwardProducesFiniteGrads) {
  Rng rng(8);
  Lstm lstm(6, 5, rng);
  const auto tokens = make_tokens({{0, 1}, {2, 3}, {4, 5}});
  lstm.forward(tokens);
  std::vector<Matrix> d_hidden(3, Matrix(2, 5, 0.1f));
  zero_grads(lstm.params());
  lstm.backward(d_hidden);
  for (auto* p : lstm.params()) {
    float abs_sum = 0.0f;
    for (float g : p->grad.flat()) {
      ASSERT_TRUE(std::isfinite(g));
      abs_sum += std::abs(g);
    }
    EXPECT_GT(abs_sum, 0.0f) << p->name << " received no gradient";
  }
}

TEST(Lstm, PadStepsReceiveNoInputWeightGradient) {
  Rng rng(9);
  Lstm lstm(4, 3, rng);
  lstm.forward(make_tokens({{kPadToken}, {kPadToken}}));
  std::vector<Matrix> d_hidden(2, Matrix(1, 3, 1.0f));
  zero_grads(lstm.params());
  lstm.backward(d_hidden);
  // Wx rows can only be touched by non-pad tokens.
  for (float g : lstm.params()[0]->grad.flat()) EXPECT_EQ(g, 0.0f);
  // But recurrent weights and bias still learn.
  float b_sum = 0.0f;
  for (float g : lstm.params()[2]->grad.flat()) b_sum += std::abs(g);
  EXPECT_GT(b_sum, 0.0f);
}

TEST(Lstm, ForgetGateBiasInitializedToOne) {
  Rng rng(10);
  Lstm lstm(4, 4, rng);
  const auto* bias = lstm.params()[2];
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(bias->value(0, j), 0.0f);          // input gate
    EXPECT_EQ(bias->value(0, 4 + j), 1.0f);      // forget gate
    EXPECT_EQ(bias->value(0, 8 + j), 0.0f);      // candidate
    EXPECT_EQ(bias->value(0, 12 + j), 0.0f);     // output gate
  }
}

TEST(Lstm, SaveLoadPreservesBehavior) {
  Rng rng(11);
  Lstm lstm(6, 7, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  lstm.save(w);
  BinaryReader r(buf);
  Lstm loaded = Lstm::load(r);

  const auto tokens = make_tokens({{2}, {5}, {1}});
  lstm.forward(tokens);
  loaded.forward(tokens);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(lstm.hidden_at(t) == loaded.hidden_at(t)) << "t=" << t;
  }
}

class LstmSizeSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LstmSizeSweep, ForwardBackwardRunCleanly) {
  const auto [vocab, hidden] = GetParam();
  Rng rng(vocab * 31 + hidden);
  Lstm lstm(vocab, hidden, rng);
  std::vector<std::vector<int>> tokens(4);
  for (auto& row : tokens) {
    row = {static_cast<int>(rng.uniform_index(vocab)), static_cast<int>(rng.uniform_index(vocab))};
  }
  lstm.forward(tokens);
  std::vector<Matrix> d_hidden(4, Matrix(2, hidden, 0.01f));
  zero_grads(lstm.params());
  lstm.backward(d_hidden);
  for (auto* p : lstm.params()) {
    for (float g : p->grad.flat()) ASSERT_TRUE(std::isfinite(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LstmSizeSweep,
                         ::testing::Values(std::make_pair(2u, 1u), std::make_pair(3u, 8u),
                                           std::make_pair(16u, 4u), std::make_pair(64u, 32u)));

}  // namespace
}  // namespace misuse::nn

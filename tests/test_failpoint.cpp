// The fault-injection framework (util/failpoint.hpp): policy semantics,
// spec parsing, determinism of the probabilistic policy, and the
// compile-out contract. Tests skip when failpoints are compiled out
// (default Release build) — the CI fault-injection job builds with
// -DMISUSEDET_FAILPOINTS=ON so they always run there.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/failpoint.hpp"

namespace misuse::failpoints {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiled_in()) GTEST_SKIP() << "failpoints compiled out";
    clear();
  }
  void TearDown() override {
    if (compiled_in()) clear();
  }
};

TEST_F(FailpointTest, UnconfiguredSiteNeverFires) {
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(MISUSEDET_FAILPOINT("test.unset"));
  EXPECT_EQ(triggered("test.unset"), 0u);
}

TEST_F(FailpointTest, AlwaysFires) {
  ASSERT_TRUE(set("test.always", "always"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(MISUSEDET_FAILPOINT("test.always"));
  EXPECT_EQ(hits("test.always"), 10u);
  EXPECT_EQ(triggered("test.always"), 10u);
}

TEST_F(FailpointTest, OffNeverFires) {
  ASSERT_TRUE(set("test.off", "off"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(MISUSEDET_FAILPOINT("test.off"));
  EXPECT_EQ(hits("test.off"), 10u);
  EXPECT_EQ(triggered("test.off"), 0u);
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
  ASSERT_TRUE(set("test.nth", "nth:3"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(MISUSEDET_FAILPOINT("test.nth"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
}

TEST_F(FailpointTest, EveryFiresPeriodically) {
  ASSERT_TRUE(set("test.every", "every:2"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(MISUSEDET_FAILPOINT("test.every"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FailpointTest, ProbIsDeterministicPerHitIndex) {
  // prob decides per hit index through Rng::stream(seed, hit), so two
  // passes over the same site produce the same firing pattern.
  ASSERT_TRUE(set("test.prob", "prob:0.5:42"));
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(MISUSEDET_FAILPOINT("test.prob"));
  clear();
  ASSERT_TRUE(set("test.prob", "prob:0.5:42"));
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(MISUSEDET_FAILPOINT("test.prob"));
  EXPECT_EQ(first, second);
  // And p=0.5 over 64 draws should fire at least once and not always.
  const auto count = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, 64u);
}

TEST_F(FailpointTest, ConfigureParsesMultiSiteSpec) {
  configure("test.a=always;test.b=nth:2;test.c");
  EXPECT_TRUE(MISUSEDET_FAILPOINT("test.a"));
  EXPECT_FALSE(MISUSEDET_FAILPOINT("test.b"));
  EXPECT_TRUE(MISUSEDET_FAILPOINT("test.b"));
  EXPECT_TRUE(MISUSEDET_FAILPOINT("test.c"));  // bare site means "always"
}

TEST_F(FailpointTest, MalformedPolicyIsRejected) {
  EXPECT_FALSE(set("test.bad", "sometimes"));
  EXPECT_FALSE(set("test.bad", "nth:zero"));
  EXPECT_FALSE(set("test.bad", "prob:notanumber"));
  EXPECT_FALSE(MISUSEDET_FAILPOINT("test.bad"));
}

TEST_F(FailpointTest, ClearDisarmsEverything) {
  ASSERT_TRUE(set("test.clear", "always"));
  EXPECT_TRUE(MISUSEDET_FAILPOINT("test.clear"));
  clear();
  EXPECT_FALSE(MISUSEDET_FAILPOINT("test.clear"));
}

TEST(Failpoint, MacroIsConstantFalseWhenCompiledOut) {
  if (compiled_in()) GTEST_SKIP() << "failpoints compiled in";
  EXPECT_FALSE(MISUSEDET_FAILPOINT("test.any"));
}

}  // namespace
}  // namespace misuse::failpoints

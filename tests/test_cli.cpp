#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace misuse {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const auto args = make({"--sessions=500", "--lr=0.01", "--name=run1"});
  EXPECT_EQ(args.integer("sessions", 0), 500);
  EXPECT_DOUBLE_EQ(args.real("lr", 0.0), 0.01);
  EXPECT_EQ(args.str("name"), "run1");
}

TEST(Cli, SpaceSyntax) {
  const auto args = make({"--sessions", "500", "--name", "run2"});
  EXPECT_EQ(args.integer("sessions", 0), 500);
  EXPECT_EQ(args.str("name"), "run2");
}

TEST(Cli, BareBooleanFlag) {
  const auto args = make({"--verbose", "--paper-scale"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_TRUE(args.flag("paper-scale"));
  EXPECT_FALSE(args.flag("missing"));
}

TEST(Cli, NoPrefixDisablesFlag) {
  const auto args = make({"--no-color"});
  EXPECT_FALSE(args.flag("color", true));
}

TEST(Cli, ExplicitFalseValue) {
  const auto args = make({"--color=false"});
  EXPECT_FALSE(args.flag("color", true));
}

TEST(Cli, TruthyValues) {
  EXPECT_TRUE(make({"--a=1"}).flag("a"));
  EXPECT_TRUE(make({"--a=true"}).flag("a"));
  EXPECT_TRUE(make({"--a=yes"}).flag("a"));
  EXPECT_FALSE(make({"--a=0"}).flag("a"));
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.integer("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.real("x", 2.5), 2.5);
  EXPECT_EQ(args.str("s", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  const auto args = make({"input.log", "--mode=fast", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.log");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Cli, BooleanFlagBeforeAnotherFlag) {
  const auto args = make({"--verbose", "--n", "3"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_EQ(args.integer("n", 0), 3);
}

TEST(Cli, HasDetectsPresence) {
  const auto args = make({"--x=1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST(Cli, KeysListsAllFlags) {
  const auto args = make({"--b=2", "--a=1"});
  const auto keys = args.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // std::map orders keys
  EXPECT_EQ(keys[1], "b");
}

TEST(Cli, ProgramName) {
  const auto args = make({});
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, NegativeNumbers) {
  const auto args = make({"--offset=-5", "--scale=-1.5"});
  EXPECT_EQ(args.integer("offset", 0), -5);
  EXPECT_DOUBLE_EQ(args.real("scale", 0.0), -1.5);
}

}  // namespace
}  // namespace misuse

#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/observability.hpp"

namespace misuse {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const auto args = make({"--sessions=500", "--lr=0.01", "--name=run1"});
  EXPECT_EQ(args.integer("sessions", 0), 500);
  EXPECT_DOUBLE_EQ(args.real("lr", 0.0), 0.01);
  EXPECT_EQ(args.str("name"), "run1");
}

TEST(Cli, SpaceSyntax) {
  const auto args = make({"--sessions", "500", "--name", "run2"});
  EXPECT_EQ(args.integer("sessions", 0), 500);
  EXPECT_EQ(args.str("name"), "run2");
}

TEST(Cli, BareBooleanFlag) {
  const auto args = make({"--verbose", "--paper-scale"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_TRUE(args.flag("paper-scale"));
  EXPECT_FALSE(args.flag("missing"));
}

TEST(Cli, NoPrefixDisablesFlag) {
  const auto args = make({"--no-color"});
  EXPECT_FALSE(args.flag("color", true));
}

TEST(Cli, ExplicitFalseValue) {
  const auto args = make({"--color=false"});
  EXPECT_FALSE(args.flag("color", true));
}

TEST(Cli, TruthyValues) {
  EXPECT_TRUE(make({"--a=1"}).flag("a"));
  EXPECT_TRUE(make({"--a=true"}).flag("a"));
  EXPECT_TRUE(make({"--a=yes"}).flag("a"));
  EXPECT_FALSE(make({"--a=0"}).flag("a"));
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.integer("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.real("x", 2.5), 2.5);
  EXPECT_EQ(args.str("s", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  const auto args = make({"input.log", "--mode=fast", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.log");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Cli, BooleanFlagBeforeAnotherFlag) {
  const auto args = make({"--verbose", "--n", "3"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_EQ(args.integer("n", 0), 3);
}

TEST(Cli, HasDetectsPresence) {
  const auto args = make({"--x=1"});
  EXPECT_TRUE(args.has("x"));
  EXPECT_FALSE(args.has("y"));
}

TEST(Cli, KeysListsAllFlags) {
  const auto args = make({"--b=2", "--a=1"});
  const auto keys = args.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // std::map orders keys
  EXPECT_EQ(keys[1], "b");
}

TEST(Cli, ProgramName) {
  const auto args = make({});
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, NegativeNumbers) {
  const auto args = make({"--offset=-5", "--scale=-1.5"});
  EXPECT_EQ(args.integer("offset", 0), -5);
  EXPECT_DOUBLE_EQ(args.real("scale", 0.0), -1.5);
}

// --- ExperimentConfig observability flags ------------------------------

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    if (current != nullptr) saved_ = current;
  }
  ~EnvGuard() {
    if (saved_.empty()) {
      unsetenv(name_);
    } else {
      setenv(name_, saved_.c_str(), 1);
    }
  }

 private:
  const char* name_;
  std::string saved_;
};

TEST(ExperimentConfigCli, MetricsOutFlagIsParsed) {
  EnvGuard guard("MISUSEDET_METRICS");
  unsetenv("MISUSEDET_METRICS");
  const auto config = core::ExperimentConfig::from_cli(make({"--metrics-out=m.json"}));
  EXPECT_EQ(config.metrics_out, "m.json");
  const auto bare = core::ExperimentConfig::from_cli(make({}));
  EXPECT_EQ(bare.metrics_out, "");
}

TEST(ExperimentConfigCli, MetricsOutDefaultsToEnvAndFlagWins) {
  EnvGuard guard("MISUSEDET_METRICS");
  setenv("MISUSEDET_METRICS", "env.json", 1);
  const auto from_env = core::ExperimentConfig::from_cli(make({}));
  EXPECT_EQ(from_env.metrics_out, "env.json");
  const auto from_flag = core::ExperimentConfig::from_cli(make({"--metrics-out=flag.json"}));
  EXPECT_EQ(from_flag.metrics_out, "flag.json");
}

TEST(ExperimentConfigCli, MetricsOutDoesNotChangeFingerprint) {
  EnvGuard guard("MISUSEDET_METRICS");
  unsetenv("MISUSEDET_METRICS");
  const auto plain = core::ExperimentConfig::from_cli(make({"--sessions=500"}));
  const auto with_metrics =
      core::ExperimentConfig::from_cli(make({"--sessions=500", "--metrics-out=m.json"}));
  // Observability never invalidates cached detectors (same rule as
  // --threads): identical pipeline configs hash identically.
  EXPECT_EQ(plain.fingerprint(), with_metrics.fingerprint());
  const auto different = core::ExperimentConfig::from_cli(make({"--sessions=600"}));
  EXPECT_NE(plain.fingerprint(), different.fingerprint());
}

// Minimal recursive-descent JSON checker: accepts exactly the grammar the
// snapshot writer emits (objects, arrays, strings without escapes worth
// validating here, numbers, booleans, null).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip escaped char
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(MetricsSnapshot, ValidatorSanity) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, "x"], "b": {"c": true}})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": )").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": 1,})").valid());
  EXPECT_FALSE(JsonChecker("{} trailing").valid());
}

TEST(MetricsSnapshot, WritesValidJsonWithCanonicalPanel) {
  core::register_core_metrics();
  std::ostringstream out;
  core::write_metrics_snapshot(out);
  const std::string doc = out.str();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc.substr(0, 400);
  // The snapshot always carries the full instrument panel, run or not.
  EXPECT_NE(doc.find("\"monitor.observe_seconds\""), std::string::npos);
  EXPECT_NE(doc.find("\"monitor.alarms\""), std::string::npos);
  EXPECT_NE(doc.find("\"lda.ensemble\""), std::string::npos);
  EXPECT_NE(doc.find("\"ocsvm.train\""), std::string::npos);
  EXPECT_NE(doc.find("\"lm.train\""), std::string::npos);
  EXPECT_NE(doc.find("\"pool.tasks_executed\""), std::string::npos);
}

TEST(MetricsSnapshot, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "misusedet_metrics_test.json";
  ASSERT_TRUE(core::write_metrics_snapshot_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(JsonChecker(content.str()).valid());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace misuse

#include <gtest/gtest.h>

#include <cmath>

#include "core/drift.hpp"
#include "core/scoring.hpp"
#include "synth/portal.hpp"

namespace misuse::core {
namespace {

// --- softmax_weights ------------------------------------------------------

TEST(SoftmaxWeights, SumsToOne) {
  const std::vector<double> scores = {0.01, -0.02, 0.005};
  const auto w = softmax_weights(scores, 100.0);
  double sum = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SoftmaxWeights, HighBetaApproachesArgmax) {
  const std::vector<double> scores = {0.01, 0.03, 0.02};
  const auto w = softmax_weights(scores, 1e4);
  EXPECT_GT(w[1], 0.99);
}

TEST(SoftmaxWeights, ZeroBetaIsUniform) {
  const std::vector<double> scores = {5.0, -3.0, 0.0};
  const auto w = softmax_weights(scores, 0.0);
  for (double v : w) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(SoftmaxWeights, InvariantToScoreShift) {
  const std::vector<double> a = {0.1, 0.2, 0.3};
  const std::vector<double> b = {10.1, 10.2, 10.3};
  const auto wa = softmax_weights(a, 50.0);
  const auto wb = softmax_weights(b, 50.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(wa[i], wb[i], 1e-12);
}

// --- WeightedEnsembleScorer (on a small trained pipeline) ------------------

class ScoringFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 500;
    pc.users = 60;
    pc.action_count = 80;
    pc.seed = 33;
    portal_ = new synth::Portal(pc);
    store_ = new SessionStore(portal_->generate());
    DetectorConfig config;
    config.ensemble.topic_counts = {6};
    config.ensemble.iterations = 30;
    config.expert.target_clusters = 5;
    config.expert.min_cluster_sessions = 10;
    config.lm.hidden = 12;
    config.lm.learning_rate = 0.01f;
    config.lm.epochs = 15;
    config.lm.patience = 0;
    config.lm.batching.batch_size = 8;
    config.lm.batching.window = 32;
    config.assigner.svm.max_training_points = 200;
    config.seed = 3;
    detector_ = new MisuseDetector(MisuseDetector::train(*store_, config));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    delete portal_;
  }
  static synth::Portal* portal_;
  static SessionStore* store_;
  static MisuseDetector* detector_;
};
synth::Portal* ScoringFixture::portal_ = nullptr;
SessionStore* ScoringFixture::store_ = nullptr;
MisuseDetector* ScoringFixture::detector_ = nullptr;

TEST_F(ScoringFixture, MixtureWeightsFormDistribution) {
  const WeightedEnsembleScorer scorer(*detector_, {});
  const auto w = scorer.mixture_weights(store_->at(0).view());
  ASSERT_EQ(w.size(), detector_->cluster_count());
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(ScoringFixture, WeightedScoreDimensionsMatchArgmaxScore) {
  const WeightedEnsembleScorer scorer(*detector_, {});
  const Session& s = store_->at(10);
  const auto weighted = scorer.score_session(s.view());
  const auto routed = detector_->predict(s.view()).score;
  EXPECT_EQ(weighted.likelihoods.size(), routed.likelihoods.size());
  for (double p : weighted.likelihoods) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-6);
  }
}

TEST_F(ScoringFixture, HugeBetaRecoversArgmaxRouting) {
  // With beta -> infinity the mixture collapses onto the argmax cluster,
  // so the weighted score must match the routed score.
  const WeightedEnsembleScorer scorer(*detector_, {.beta = 1e9});
  const Session& s = store_->at(20);
  const auto weighted = scorer.score_session(s.view());
  const auto routed = detector_->predict(s.view()).score;
  ASSERT_EQ(weighted.likelihoods.size(), routed.likelihoods.size());
  for (std::size_t i = 0; i < weighted.likelihoods.size(); ++i) {
    EXPECT_NEAR(weighted.likelihoods[i], routed.likelihoods[i], 1e-5);
  }
}

TEST_F(ScoringFixture, WeightedScoreSeparatesRandomSessions) {
  const WeightedEnsembleScorer scorer(*detector_, {});
  const SessionStore random = portal_->generate_random_sessions(30, 55);
  double real_avg = 0.0, random_avg = 0.0;
  int n_real = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto score = scorer.score_session(store_->at(i).view());
    if (score.likelihoods.empty()) continue;
    real_avg += score.avg_likelihood();
    ++n_real;
  }
  for (const auto& s : random.all()) {
    random_avg += scorer.score_session(s.view()).avg_likelihood();
  }
  real_avg /= n_real;
  random_avg /= 30.0;
  EXPECT_GT(real_avg, 2.0 * random_avg);
}

// --- DriftMonitor ----------------------------------------------------------

SessionStore tiny_store(std::size_t vocab, std::initializer_list<std::vector<int>> sessions) {
  ActionVocab v;
  for (std::size_t i = 0; i < vocab; ++i) v.intern("A" + std::to_string(i));
  SessionStore store(std::move(v));
  std::uint64_t id = 0;
  for (const auto& actions : sessions) {
    Session s;
    s.id = ++id;
    s.actions = actions;
    store.add(std::move(s));
  }
  return store;
}

TEST(JensenShannon, ZeroForIdenticalDistributions) {
  const std::vector<double> a = {10.0, 20.0, 30.0};
  EXPECT_NEAR(jensen_shannon(a, a, 0.5), 0.0, 1e-12);
}

TEST(JensenShannon, ScaleInvariant) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 20.0, 30.0};
  EXPECT_NEAR(jensen_shannon(a, b, 1e-9), 0.0, 1e-6);
}

TEST(JensenShannon, BoundedByLn2) {
  const std::vector<double> a = {100.0, 0.0};
  const std::vector<double> b = {0.0, 100.0};
  const double js = jensen_shannon(a, b, 1e-6);
  EXPECT_GT(js, 0.5);
  EXPECT_LE(js, std::log(2.0) + 1e-9);
}

TEST(JensenShannon, Symmetric) {
  const std::vector<double> a = {5.0, 1.0, 2.0};
  const std::vector<double> b = {1.0, 4.0, 3.0};
  EXPECT_NEAR(jensen_shannon(a, b, 0.5), jensen_shannon(b, a, 0.5), 1e-12);
}

TEST(DriftMonitor, QuietUntilWindowFills) {
  const auto training = tiny_store(4, {{0, 1}, {1, 0}, {0, 1}});
  DriftConfig config;
  config.window_sessions = 40;
  DriftMonitor monitor(training, config);
  // Fewer than window/4 sessions: no judgment yet.
  for (int i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(monitor.observe(std::vector<int>{3, 3, 3}), 0.0);
  }
  EXPECT_FALSE(monitor.drift_detected());
}

TEST(DriftMonitor, NoDriftOnMatchingTraffic) {
  const auto training = tiny_store(4, {{0, 1, 0, 1}, {1, 0, 1, 0}});
  DriftConfig config;
  config.window_sessions = 20;
  config.threshold = 0.05;
  DriftMonitor monitor(training, config);
  for (int i = 0; i < 30; ++i) monitor.observe(std::vector<int>{0, 1, 0, 1});
  EXPECT_FALSE(monitor.drift_detected());
  // Not exactly zero: the smoothing mass weighs differently against the
  // small training corpus than against the larger window.
  EXPECT_LT(monitor.current_divergence(), 0.03);
}

TEST(DriftMonitor, DetectsDistributionShift) {
  const auto training = tiny_store(4, {{0, 1, 0, 1}, {1, 0, 1, 0}});
  DriftConfig config;
  config.window_sessions = 20;
  config.threshold = 0.05;
  DriftMonitor monitor(training, config);
  // Production traffic moves entirely to actions 2/3.
  for (int i = 0; i < 30; ++i) monitor.observe(std::vector<int>{2, 3, 2, 3});
  EXPECT_TRUE(monitor.drift_detected());
  EXPECT_GT(monitor.current_divergence(), 0.2);
}

TEST(DriftMonitor, SlidingWindowForgetsOldTraffic) {
  const auto training = tiny_store(4, {{0, 1, 0, 1}});
  DriftConfig config;
  config.window_sessions = 10;
  DriftMonitor monitor(training, config);
  for (int i = 0; i < 15; ++i) monitor.observe(std::vector<int>{2, 3});  // drifted
  EXPECT_TRUE(monitor.drift_detected());
  for (int i = 0; i < 15; ++i) monitor.observe(std::vector<int>{0, 1});  // back to normal
  EXPECT_FALSE(monitor.drift_detected());
  EXPECT_EQ(monitor.window_fill(), 10u);
}

}  // namespace
}  // namespace misuse::core

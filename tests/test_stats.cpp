#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace misuse {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-9);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs = {1.0, 3.0, 5.0};
  EXPECT_NEAR(stddev(xs) * stddev(xs), variance(xs), 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileIgnoresInputOrder) {
  const std::vector<double> a = {5.0, 1.0, 9.0, 3.0};
  const std::vector<double> b = {9.0, 3.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(percentile(a, 75.0), percentile(b, 75.0));
}

TEST(Stats, SummaryFieldsConsistent) {
  Rng rng(1);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.uniform(0.0, 100.0);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p98);
  EXPECT_LE(s.p98, s.max);
  EXPECT_NEAR(s.mean, 50.0, 3.0);
}

TEST(Stats, HistogramCountsSumToTotal) {
  const std::vector<double> xs = {0.5, 1.5, 2.5, 3.5, 2.4, 2.6};
  const Histogram h = make_histogram(xs, 0.0, 4.0, 4);
  EXPECT_EQ(h.total(), xs.size());
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 3u);
  EXPECT_EQ(h.counts[3], 1u);
}

TEST(Stats, HistogramClampsOutOfRange) {
  const std::vector<double> xs = {-10.0, 100.0};
  const Histogram h = make_histogram(xs, 0.0, 10.0, 5);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(Stats, HistogramBinEdges) {
  const Histogram h = make_histogram(std::vector<double>{}, 0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Stats, RenderHistogramMentionsCounts) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const Histogram h = make_histogram(xs, 0.0, 2.0, 2);
  const std::string rendered = render_histogram(h, 10);
  EXPECT_NE(rendered.find("3"), std::string::npos);
  EXPECT_NE(rendered.find("##########"), std::string::npos);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAntiCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

class PercentileMonotoneSweep : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneSweep, PercentileIsMonotoneInP) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.normal(0.0, 10.0);
  double prev = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    ASSERT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace misuse

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace misuse {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, JoinEmpty) {
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("ActionSearchUser", "Action"));
  EXPECT_FALSE(starts_with("Act", "Action"));
  EXPECT_TRUE(ends_with("ActionSearchUser", "User"));
  EXPECT_FALSE(ends_with("User", "SearchUser"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-45000), "-45,000");
}

}  // namespace
}  // namespace misuse

#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace misuse {
namespace {

// Naive reference implementation for property checks.
Matrix ref_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) {
        acc += static_cast<double>(a(i, p)) * b(p, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  m.init_gaussian(rng, 1.0f);
  return m;
}

void expect_near(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.flat()[i], b.flat()[i], tol) << "at flat index " << i;
  }
}

TEST(Ops, GemmSmallKnownValues) {
  const auto a = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  const auto b = Matrix::from_rows(2, 2, {5, 6, 7, 8});
  Matrix c(2, 2);
  gemm(1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, GemmBetaAccumulates) {
  const auto a = Matrix::from_rows(1, 1, {2});
  const auto b = Matrix::from_rows(1, 1, {3});
  Matrix c(1, 1, 10.0f);
  gemm(1.0f, a, b, 1.0f, c);
  EXPECT_FLOAT_EQ(c(0, 0), 16.0f);
  gemm(2.0f, a, b, 0.5f, c);
  EXPECT_FLOAT_EQ(c(0, 0), 20.0f);
}

class GemmShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapeSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 10007 + k * 101 + n);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  gemm(1.0f, a, b, 0.0f, c);
  expect_near(c, ref_gemm(a, b), 1e-3f);
}

TEST_P(GemmShapeSweep, TransposeVariantsAgreeWithExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 13 + n * 17);
  // gemm_at_b: A stored (k x m), result = A^T * B.
  const Matrix a_km = random_matrix(k, m, rng);
  const Matrix b_kn = random_matrix(k, n, rng);
  Matrix c1(m, n);
  gemm_at_b(1.0f, a_km, b_kn, 0.0f, c1);
  expect_near(c1, ref_gemm(a_km.transposed(), b_kn), 1e-3f);

  // gemm_a_bt: B stored (n x k), result = A * B^T.
  const Matrix a_mk = random_matrix(m, k, rng);
  const Matrix b_nk = random_matrix(n, k, rng);
  Matrix c2(m, n);
  gemm_a_bt(1.0f, a_mk, b_nk, 0.0f, c2);
  expect_near(c2, ref_gemm(a_mk, b_nk.transposed()), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeSweep,
                         ::testing::Values(std::make_tuple(1u, 1u, 1u),
                                           std::make_tuple(2u, 3u, 4u),
                                           std::make_tuple(5u, 1u, 7u),
                                           std::make_tuple(8u, 8u, 8u),
                                           std::make_tuple(13u, 7u, 3u),
                                           std::make_tuple(32u, 16u, 24u)));

// Bit-exact comparison (0 ULP): the parallel kernels must replay the
// serial accumulation order per element, not merely approximate it.
void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat()[i], b.flat()[i]) << "at flat index " << i;
  }
}

class ParallelGemm : public ::testing::Test {
 protected:
  void SetUp() override { set_global_threads(4); }
  void TearDown() override { set_global_threads(1); }
};

TEST_F(ParallelGemm, OddShapesMatchSerialToZeroUlp) {
  // 1 x N, N x 1, and sizes that are not a multiple of any block size.
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {1, 64, 33}, {65, 1, 7}, {33, 7, 1}, {1, 1, 129},
      {17, 31, 13}, {129, 65, 3}, {30, 100, 50},
  };
  for (const auto& [m, k, n] : shapes) {
    Rng rng(m * 31 + k * 7 + n);
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    Matrix serial(m, n), parallel(m, n);
    gemm(1.0f, a, b, 0.0f, serial, GemmPolicy::kSerial);
    gemm(1.0f, a, b, 0.0f, parallel, GemmPolicy::kParallel);
    expect_bit_identical(serial, parallel);
  }
}

TEST_F(ParallelGemm, AlphaBetaAccumulationMatchesSerial) {
  Rng rng(99);
  const Matrix a = random_matrix(37, 19, rng);
  const Matrix b = random_matrix(19, 23, rng);
  for (const float alpha : {0.0f, 1.0f, -2.5f}) {
    for (const float beta : {0.0f, 1.0f, 0.5f}) {
      Matrix serial = random_matrix(37, 23, rng);
      Matrix parallel = serial;  // same starting C so beta mixes identically
      gemm(alpha, a, b, beta, serial, GemmPolicy::kSerial);
      gemm(alpha, a, b, beta, parallel, GemmPolicy::kParallel);
      expect_bit_identical(serial, parallel);
    }
  }
}

TEST_F(ParallelGemm, TransposeVariantsMatchSerialToZeroUlp) {
  Rng rng(7);
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {1, 33, 9}, {41, 1, 6}, {27, 13, 1}, {50, 34, 29},
  };
  for (const auto& [m, k, n] : shapes) {
    {
      const Matrix a_km = random_matrix(k, m, rng);
      const Matrix b_kn = random_matrix(k, n, rng);
      Matrix serial = random_matrix(m, n, rng);
      Matrix parallel = serial;
      gemm_at_b(1.5f, a_km, b_kn, 0.5f, serial, GemmPolicy::kSerial);
      gemm_at_b(1.5f, a_km, b_kn, 0.5f, parallel, GemmPolicy::kParallel);
      expect_bit_identical(serial, parallel);
    }
    {
      const Matrix a_mk = random_matrix(m, k, rng);
      const Matrix b_nk = random_matrix(n, k, rng);
      Matrix serial = random_matrix(m, n, rng);
      Matrix parallel = serial;
      gemm_a_bt(-0.5f, a_mk, b_nk, 1.0f, serial, GemmPolicy::kSerial);
      gemm_a_bt(-0.5f, a_mk, b_nk, 1.0f, parallel, GemmPolicy::kParallel);
      expect_bit_identical(serial, parallel);
    }
  }
}

TEST_F(ParallelGemm, AutoPolicyCrossesThresholdBitIdentically) {
  // Large enough that kAuto takes the parallel path (2*m*n*k above the
  // threshold): results must still match the forced-serial kernel.
  const std::size_t m = 96, k = 80, n = 96;
  ASSERT_GE(2 * m * n * k, gemm_parallel_threshold());
  Rng rng(123);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  Matrix serial(m, n), auto_path(m, n);
  gemm(1.0f, a, b, 0.0f, serial, GemmPolicy::kSerial);
  gemm(1.0f, a, b, 0.0f, auto_path, GemmPolicy::kAuto);
  expect_bit_identical(serial, auto_path);
}

TEST(Ops, AxpyAccumulates) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(Ops, ScaleMultiplies) {
  std::vector<float> x = {2, -4};
  scale(x, 0.5f);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(Ops, AddRowBroadcast) {
  Matrix m(2, 2, 1.0f);
  const std::vector<float> bias = {10.0f, 20.0f};
  add_row_broadcast(m, bias);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 21.0f);
}

TEST(Ops, SumRows) {
  const auto m = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  std::vector<float> out(3);
  sum_rows(m, out);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
  EXPECT_FLOAT_EQ(out[2], 9.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Matrix m = random_matrix(6, 11, rng);
  softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (float v : m.row(r)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  auto a = Matrix::from_rows(1, 3, {1, 2, 3});
  auto b = Matrix::from_rows(1, 3, {101, 102, 103});
  softmax_rows(a);
  softmax_rows(b);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(a(0, j), b(0, j), 1e-6f);
}

TEST(Ops, SoftmaxHandlesLargeLogitsWithoutOverflow) {
  auto m = Matrix::from_rows(1, 2, {10000.0f, 9999.0f});
  softmax_rows(m);
  EXPECT_TRUE(std::isfinite(m(0, 0)));
  EXPECT_GT(m(0, 0), m(0, 1));
}

TEST(Ops, LogSoftmaxMatchesSoftmaxLog) {
  auto logits = Matrix::from_rows(1, 4, {0.5f, -1.0f, 2.0f, 0.0f});
  std::vector<float> ls(4);
  log_softmax(logits.row(0), ls);
  Matrix sm = logits;
  softmax_rows(sm);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(ls[j], std::log(sm(0, j)), 1e-5f);
}

TEST(Ops, ArgmaxFindsFirstMaximum) {
  const std::vector<float> xs = {1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(argmax(xs), 1u);
}

TEST(Ops, DotAndNorm) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
  EXPECT_FLOAT_EQ(squared_norm(a), 14.0f);
}

TEST(Ops, ElementwiseNonlinearities) {
  std::vector<float> t = {0.0f, 100.0f, -100.0f};
  tanh_inplace(t);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_NEAR(t[1], 1.0f, 1e-6f);
  EXPECT_NEAR(t[2], -1.0f, 1e-6f);

  std::vector<float> s = {0.0f, 100.0f, -100.0f};
  sigmoid_inplace(s);
  EXPECT_FLOAT_EQ(s[0], 0.5f);
  EXPECT_NEAR(s[1], 1.0f, 1e-6f);
  EXPECT_NEAR(s[2], 0.0f, 1e-6f);
}

}  // namespace
}  // namespace misuse

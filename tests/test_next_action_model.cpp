#include "nn/next_action_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace misuse::nn {
namespace {

// Deterministic cyclic grammar 0 -> 1 -> 2 -> ... -> v-1 -> 0: perfectly
// learnable, so a correct implementation must reach ~100% accuracy.
SequenceBatch cycle_batch(std::size_t vocab, std::size_t t_steps, std::size_t batch_size) {
  SequenceBatch b;
  b.tokens.resize(t_steps);
  b.targets.resize(t_steps);
  for (std::size_t t = 0; t < t_steps; ++t) {
    b.tokens[t].resize(batch_size);
    b.targets[t].resize(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      const int cur = static_cast<int>((t + i) % vocab);
      b.tokens[t][i] = cur;
      b.targets[t][i] = static_cast<int>((cur + 1) % vocab);
    }
  }
  return b;
}

TEST(NextActionModel, TargetCountHonorsIgnore) {
  SequenceBatch b = cycle_batch(4, 3, 2);
  EXPECT_EQ(b.target_count(), 6u);
  b.targets[0][0] = kIgnoreTarget;
  EXPECT_EQ(b.target_count(), 5u);
}

TEST(NextActionModel, ParameterCountMatchesArchitecture) {
  Rng rng(1);
  ModelConfig config{.vocab = 10, .hidden = 8, .dropout = 0.4f};
  NextActionModel model(config, rng);
  // LSTM: 10*32 + 8*32 + 32; Dense: 8*10 + 10.
  EXPECT_EQ(model.parameter_count(), 10u * 32 + 8 * 32 + 32 + 8 * 10 + 10);
}

TEST(NextActionModel, LearnsDeterministicCycle) {
  Rng rng(2);
  ModelConfig config{.vocab = 5, .hidden = 16, .dropout = 0.0f};
  NextActionModel model(config, rng);
  Adam adam(0.01f);
  const SequenceBatch batch = cycle_batch(5, 10, 5);
  for (int epoch = 0; epoch < 150; ++epoch) {
    model.train_batch(batch, adam, rng);
  }
  const XentResult eval = model.evaluate(batch);
  EXPECT_GT(eval.accuracy(), 0.99);
  EXPECT_LT(eval.mean_loss(), 0.1);
}

TEST(NextActionModel, TrainingReducesLoss) {
  Rng rng(3);
  ModelConfig config{.vocab = 6, .hidden = 12, .dropout = 0.2f};
  NextActionModel model(config, rng);
  Adam adam(0.005f);
  const SequenceBatch batch = cycle_batch(6, 8, 4);
  const double initial = model.evaluate(batch).mean_loss();
  for (int i = 0; i < 80; ++i) model.train_batch(batch, adam, rng);
  const double trained = model.evaluate(batch).mean_loss();
  EXPECT_LT(trained, initial * 0.5);
}

TEST(NextActionModel, InitialLossNearUniform) {
  Rng rng(4);
  ModelConfig config{.vocab = 50, .hidden = 8, .dropout = 0.0f};
  NextActionModel model(config, rng);
  const SequenceBatch batch = cycle_batch(50, 5, 3);
  // An untrained model should be near the uniform-prediction loss log(d).
  EXPECT_NEAR(model.evaluate(batch).mean_loss(), std::log(50.0), 0.5);
}

TEST(NextActionModel, GradClippingBoundsReportedNorm) {
  Rng rng(5);
  ModelConfig config{.vocab = 8, .hidden = 8, .dropout = 0.0f};
  NextActionModel model(config, rng);
  Sgd sgd(0.1f);
  const SequenceBatch batch = cycle_batch(8, 6, 4);
  const auto stats = model.train_batch(batch, sgd, rng, /*clip_norm=*/0.001f);
  EXPECT_GT(stats.grad_norm, 0.0f);  // pre-clip norm reported
  EXPECT_EQ(stats.targets, batch.target_count());
}

TEST(NextActionModel, StepReturnsDistribution) {
  Rng rng(6);
  ModelConfig config{.vocab = 7, .hidden = 4, .dropout = 0.4f};
  NextActionModel model(config, rng);
  ModelState state = model.make_state();
  const auto probs = model.step(state, 3);
  ASSERT_EQ(probs.size(), 7u);
  double sum = 0.0;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(NextActionModel, StreamingMatchesBatchedEvaluation) {
  Rng rng(7);
  ModelConfig config{.vocab = 6, .hidden = 10, .dropout = 0.0f};
  NextActionModel model(config, rng);
  const std::vector<int> session = {0, 3, 1, 5, 2, 4};

  // Batched: one batch row, full-session targets.
  SequenceBatch batch;
  for (std::size_t i = 0; i + 1 < session.size(); ++i) {
    batch.tokens.push_back({session[i]});
    batch.targets.push_back({session[i + 1]});
  }
  const auto batched = model.target_likelihoods(batch);

  // Streaming via score_session.
  const auto score = model.score_session(session);
  ASSERT_EQ(batched.size(), score.likelihoods.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_NEAR(batched[i], score.likelihoods[i], 1e-5);
  }
}

TEST(NextActionModel, ScoreSessionTooShortIsEmpty) {
  Rng rng(8);
  ModelConfig config{.vocab = 5, .hidden = 4, .dropout = 0.0f};
  NextActionModel model(config, rng);
  EXPECT_TRUE(model.score_session(std::vector<int>{2}).likelihoods.empty());
  EXPECT_TRUE(model.score_session(std::vector<int>{}).likelihoods.empty());
}

TEST(NextActionModel, SessionScoreAggregates) {
  NextActionModel::SessionScore s;
  s.likelihoods = {0.5, 0.25};
  s.losses = {-std::log(0.5), -std::log(0.25)};
  EXPECT_NEAR(s.avg_likelihood(), 0.375, 1e-12);
  EXPECT_NEAR(s.avg_loss(), (std::log(2.0) + std::log(4.0)) / 2.0, 1e-12);
  EXPECT_NEAR(s.perplexity(), std::exp(s.avg_loss()), 1e-12);
}

TEST(NextActionModel, TrainedModelScoresGrammarAboveRandom) {
  Rng rng(9);
  ModelConfig config{.vocab = 5, .hidden = 16, .dropout = 0.0f};
  NextActionModel model(config, rng);
  Adam adam(0.01f);
  const SequenceBatch batch = cycle_batch(5, 10, 5);
  for (int i = 0; i < 120; ++i) model.train_batch(batch, adam, rng);

  const std::vector<int> grammatical = {0, 1, 2, 3, 4, 0, 1, 2};
  const std::vector<int> scrambled = {0, 0, 3, 1, 4, 2, 2, 0};
  const double p_good = model.score_session(grammatical).avg_likelihood();
  const double p_bad = model.score_session(scrambled).avg_likelihood();
  EXPECT_GT(p_good, 0.8);
  EXPECT_GT(p_good, p_bad * 2);
}

TEST(NextActionModel, SaveLoadRoundTripsPredictionsExactly) {
  Rng rng(10);
  ModelConfig config{.vocab = 9, .hidden = 6, .dropout = 0.4f};
  NextActionModel model(config, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  model.save(w);
  BinaryReader r(buf);
  NextActionModel loaded = NextActionModel::load(r);

  const std::vector<int> session = {1, 7, 3, 0, 8, 2};
  const auto a = model.score_session(session);
  const auto b = loaded.score_session(session);
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size());
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_EQ(a.likelihoods[i], b.likelihoods[i]);
  }
  EXPECT_EQ(loaded.config().hidden, 6u);
  EXPECT_FLOAT_EQ(loaded.config().dropout, 0.4f);
}

TEST(NextActionModel, LoadRejectsGarbage) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write_magic(0x12121212u, 1);
  BinaryReader r(buf);
  EXPECT_THROW(NextActionModel::load(r), SerializeError);
}

TEST(NextActionModel, StackedParameterCount) {
  Rng rng(11);
  ModelConfig config{.vocab = 10, .hidden = 8, .layers = 2, .dropout = 0.0f};
  NextActionModel model(config, rng);
  // Layer 0: 10*32 + 8*32 + 32; layer 1: 8*32 + 8*32 + 32; head: 8*10+10.
  EXPECT_EQ(model.parameter_count(),
            (10u * 32 + 8 * 32 + 32) + (8u * 32 + 8 * 32 + 32) + (8u * 10 + 10));
}

TEST(NextActionModel, StackedModelLearnsCycle) {
  Rng rng(12);
  ModelConfig config{.vocab = 5, .hidden = 12, .layers = 2, .dropout = 0.0f};
  NextActionModel model(config, rng);
  Adam adam(0.01f);
  const SequenceBatch batch = cycle_batch(5, 10, 5);
  for (int epoch = 0; epoch < 200; ++epoch) model.train_batch(batch, adam, rng);
  EXPECT_GT(model.evaluate(batch).accuracy(), 0.95);
}

TEST(NextActionModel, StackedStreamingMatchesBatched) {
  Rng rng(13);
  ModelConfig config{.vocab = 6, .hidden = 7, .layers = 3, .dropout = 0.0f};
  NextActionModel model(config, rng);
  const std::vector<int> session = {0, 3, 1, 5, 2, 4};
  SequenceBatch batch;
  for (std::size_t i = 0; i + 1 < session.size(); ++i) {
    batch.tokens.push_back({session[i]});
    batch.targets.push_back({session[i + 1]});
  }
  const auto batched = model.target_likelihoods(batch);
  const auto score = model.score_session(session);
  ASSERT_EQ(batched.size(), score.likelihoods.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_NEAR(batched[i], score.likelihoods[i], 1e-5);
  }
}

TEST(NextActionModel, StackedSaveLoadRoundTrip) {
  Rng rng(14);
  ModelConfig config{.vocab = 7, .hidden = 5, .layers = 2, .dropout = 0.3f};
  NextActionModel model(config, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  model.save(w);
  BinaryReader r(buf);
  NextActionModel loaded = NextActionModel::load(r);
  EXPECT_EQ(loaded.config().layers, 2u);
  const std::vector<int> session = {1, 6, 3, 0, 5};
  const auto a = model.score_session(session);
  const auto b = loaded.score_session(session);
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size());
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_EQ(a.likelihoods[i], b.likelihoods[i]);
  }
}

TEST(NextActionModel, EmbeddingModelLearnsCycle) {
  Rng rng(15);
  ModelConfig config{.vocab = 5, .hidden = 12, .embedding_dim = 4, .dropout = 0.0f};
  NextActionModel model(config, rng);
  Adam adam(0.01f);
  const SequenceBatch batch = cycle_batch(5, 10, 5);
  for (int epoch = 0; epoch < 200; ++epoch) model.train_batch(batch, adam, rng);
  EXPECT_GT(model.evaluate(batch).accuracy(), 0.95);
}

TEST(NextActionModel, EmbeddingParameterCount) {
  Rng rng(16);
  ModelConfig config{.vocab = 20, .hidden = 8, .embedding_dim = 4, .dropout = 0.0f};
  NextActionModel model(config, rng);
  // Embedding 20*4; LSTM (4 -> 8): 4*32 + 8*32 + 32; head 8*20 + 20.
  EXPECT_EQ(model.parameter_count(), 20u * 4 + (4u * 32 + 8 * 32 + 32) + (8u * 20 + 20));
}

TEST(NextActionModel, EmbeddingStreamingMatchesBatched) {
  Rng rng(17);
  ModelConfig config{.vocab = 6, .hidden = 7, .layers = 2, .embedding_dim = 3, .dropout = 0.0f};
  NextActionModel model(config, rng);
  const std::vector<int> session = {0, 3, 1, 5, 2, 4};
  SequenceBatch batch;
  for (std::size_t i = 0; i + 1 < session.size(); ++i) {
    batch.tokens.push_back({session[i]});
    batch.targets.push_back({session[i + 1]});
  }
  const auto batched = model.target_likelihoods(batch);
  const auto score = model.score_session(session);
  ASSERT_EQ(batched.size(), score.likelihoods.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_NEAR(batched[i], score.likelihoods[i], 1e-5);
  }
}

TEST(NextActionModel, EmbeddingSaveLoadRoundTrip) {
  Rng rng(18);
  ModelConfig config{.vocab = 9, .hidden = 5, .embedding_dim = 4, .dropout = 0.2f};
  NextActionModel model(config, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  model.save(w);
  BinaryReader r(buf);
  NextActionModel loaded = NextActionModel::load(r);
  EXPECT_EQ(loaded.config().embedding_dim, 4u);
  const std::vector<int> session = {1, 7, 3, 0, 8};
  const auto a = model.score_session(session);
  const auto b = loaded.score_session(session);
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size());
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_EQ(a.likelihoods[i], b.likelihoods[i]);
  }
}

class ModelDropoutSweep : public ::testing::TestWithParam<float> {};

TEST_P(ModelDropoutSweep, TrainsWithoutNumericalIssues) {
  Rng rng(42);
  ModelConfig config{.vocab = 6, .hidden = 8, .dropout = GetParam()};
  NextActionModel model(config, rng);
  Adam adam(0.005f);
  const SequenceBatch batch = cycle_batch(6, 6, 3);
  for (int i = 0; i < 30; ++i) {
    const auto stats = model.train_batch(batch, adam, rng);
    ASSERT_TRUE(std::isfinite(stats.loss));
    ASSERT_TRUE(std::isfinite(stats.grad_norm));
  }
}

INSTANTIATE_TEST_SUITE_P(DropoutRates, ModelDropoutSweep,
                         ::testing::Values(0.0f, 0.2f, 0.4f, 0.6f));

}  // namespace
}  // namespace misuse::nn

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace misuse {
namespace {

TEST(ThreadPool, ConstructionAndTeardown) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }
  // 0 resolves to some positive hardware-derived count.
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitRunsInlineOnSerialPool) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  auto f = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(f.get());
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 10013;  // prime: never a multiple of the grain
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(3, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    EXPECT_EQ(hits[0].load(), 0);
    EXPECT_EQ(hits[2].load(), 0);
    for (std::size_t i = 3; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ParallelForEmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(9, 2, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Several indices throw; the rethrown message must deterministically be
  // the lowest one's, independent of which worker ran first.
  for (int repeat = 0; repeat < 5; ++repeat) {
    try {
      pool.parallel_for(0, 2000, [&](std::size_t i) {
        if (i == 117 || i == 1500 || i == 1999) {
          throw std::runtime_error("boom@" + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom@117");
    }
  }
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  // Saturate the pool with tasks that themselves submit and wait; inner
  // submissions from worker threads run inline, so this cannot deadlock
  // even with every worker busy.
  std::vector<std::future<int>> outers;
  for (int t = 0; t < 8; ++t) {
    outers.push_back(pool.submit([&pool, t] {
      auto inner = pool.submit([t] { return t * 10; });
      auto innermost = pool.submit([&pool] { return pool.submit([] { return 1; }).get(); });
      return inner.get() + innermost.get();
    }));
  }
  for (int t = 0; t < 8; ++t) EXPECT_EQ(outers[static_cast<std::size_t>(t)].get(), t * 10 + 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.parallel_for(0, 64, [&](std::size_t i) {
    pool.parallel_for(0, 64, [&](std::size_t j) { hits[i * 64 + j].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_TRUE(pool.submit([&pool] { return pool.on_worker_thread(); }).get());
  ThreadPool other(2);
  EXPECT_FALSE(other.submit([&pool] { return pool.on_worker_thread(); }).get());
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  // Index-ordered merge: accumulate per-index products into slots, then
  // reduce serially — the contract every pipeline stage follows.
  constexpr std::size_t kN = 5000;
  std::vector<double> slots(kN);
  ThreadPool pool(4);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    slots[i] = static_cast<double>(i) * 0.5;
  });
  const double parallel_sum = std::accumulate(slots.begin(), slots.end(), 0.0);
  double serial_sum = 0.0;
  for (std::size_t i = 0; i < kN; ++i) serial_sum += static_cast<double>(i) * 0.5;
  EXPECT_EQ(parallel_sum, serial_sum);
}

TEST(GlobalPool, SetGlobalThreadsResizes) {
  set_global_threads(3);
  EXPECT_EQ(global_thread_count(), 3u);
  ThreadPool* before = &global_pool();
  set_global_threads(3);  // same size: must be a no-op, not a rebuild
  EXPECT_EQ(&global_pool(), before);
  set_global_threads(1);
  EXPECT_EQ(global_thread_count(), 1u);
}

}  // namespace
}  // namespace misuse
